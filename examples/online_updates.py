"""Online index maintenance under a live write stream (§6).

Builds the Q2 BFHM/ISL/IJLMR indices, then applies TPC-H refresh sets
(new orders + deletions) through the mutation interceptors while running
queries in between.  Demonstrates:

* that every algorithm keeps returning the exact top-k as data changes;
* the insertion/tombstone record mechanism and the eager write-back's
  bounded query-time overhead (< 10%, per §7.2);
* the offline write-back sweep.

Run with::

    python examples/online_updates.py
"""

from __future__ import annotations

from repro import LC_PROFILE, Platform, RankJoinEngine, WriteBackPolicy
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin
from repro.maintenance.interceptor import MaintainedRelation
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch import generate, load_tpch, q2
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.updates import generate_refresh_sets


def main() -> None:
    platform = Platform(LC_PROFILE)
    data = generate(micro_scale=0.5, seed=3)
    load_tpch(platform.store, data)
    engine = RankJoinEngine(platform)

    query = q2(10)
    print(f"query under test: {query.description}")

    bfhm = BFHMRankJoin(platform, write_back=WriteBackPolicy.EAGER)
    algorithms = {"bfhm": bfhm, "isl": ISLRankJoin(platform),
                  "ijlmr": IJLMRRankJoin(platform)}
    for name, algorithm in algorithms.items():
        algorithm.prepare(query)
        engine.register(name, algorithm)

    relations = {
        "orders": MaintainedRelation(
            platform, orders_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=bfhm.update_manager,
        ),
        "lineitem": MaintainedRelation(
            platform, lineitem_by_order_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=bfhm.update_manager,
        ),
    }

    baseline = engine.execute(query, algorithm="bfhm")
    print(f"\nbaseline BFHM query: {baseline.metrics.sim_time_s:.3f}s, "
          f"top score {baseline.tuples[0].score:.4f}")

    for round_number, refresh in enumerate(
        generate_refresh_sets(data, count=3), start=1
    ):
        # the batched write path: one shared timestamp and one put_batch
        # per table per refresh half, instead of one RPC per record
        relations["orders"].insert_batch(
            [(order["orderkey"], order) for order in refresh.insert_orders]
        )
        relations["lineitem"].insert_batch(
            [(item["rowkey"], item) for item in refresh.insert_lineitems]
        )
        relations["orders"].delete_batch(refresh.delete_orders)
        relations["lineitem"].delete_batch(refresh.delete_lineitems)
        print(f"\nrefresh set {round_number}: +{refresh.insert_count} "
              f"inserts, -{refresh.delete_count} deletes")

        truth = naive_rank_join(
            load_relation(platform.store, query.left),
            load_relation(platform.store, query.right),
            query.function, query.k,
        )
        for name in algorithms:
            result = engine.execute(query, algorithm=name)
            status = "exact" if result.recall_against(truth) == 1.0 else "WRONG"
            print(f"  {name:>6}: {status}, {result.metrics.sim_time_s:.3f}s")
        loaded = engine.execute(query, algorithm="bfhm")
        overhead = loaded.metrics.sim_time_s / baseline.metrics.sim_time_s - 1
        print(f"  BFHM eager write-back overhead vs baseline: {overhead:+.1%} "
              f"(replays so far: {bfhm.update_manager.replays}, "
              f"write-backs: {bfhm.update_manager.writebacks})")

    swept = bfhm.update_manager.offline_sweep(query.left.signature)
    swept += bfhm.update_manager.offline_sweep(query.right.signature)
    print(f"\noffline sweep folded {swept} remaining bucket(s) back into blobs")


if __name__ == "__main__":
    main()
