"""A 3-way rank join through the full stack: parse, EXPLAIN, execute.

§3 of the paper notes its frameworks extend to multi-way joins; here the
*whole pipeline* speaks that extension.  One SQL string with three
relations flows through the parser into the n-ary ``RankJoinQuery``, the
planner prices all three n-way strategies (coordinator ISL, the
index-free HRJN pipeline, and the left-deep BFHM cascade — with per-stage
cost lines), and ``algorithm="auto"`` runs the winner.

Run with::

    PYTHONPATH=src python examples/multiway_explain.py
"""

from __future__ import annotations

from repro import EC2_PROFILE, Platform, RankJoinEngine
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch

THREE_WAY_SQL = (
    "SELECT * FROM part P, lineitem L1, lineitem L2 "
    "WHERE P.partkey = L1.partkey AND L1.partkey = L2.partkey "
    "ORDER BY P.retailprice + L1.extendedprice + L2.discount "
    "STOP AFTER 5"
)


def main() -> None:
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=0.2, seed=11))
    engine = RankJoinEngine(platform)

    print("=== EXPLAIN (no execution) ===\n")
    plan = engine.explain(THREE_WAY_SQL)
    print(plan.render())

    cascade = plan.estimate("bfhm-cascade")
    stage_lines = sorted(
        (component, seconds)
        for component, seconds in cascade.breakdown.items()
        if component[0] == "s" and component[1].isdigit()
    )
    print("\n=== BFHM cascade, stage by stage ===\n")
    for component, seconds in stage_lines:
        print(f"  {component:<22} {seconds * 1000:10.1f} ms")

    print("\n=== algorithm='auto' execution ===\n")
    result = engine.sql(THREE_WAY_SQL)
    print(f"planner chose {engine.last_plan.chosen!r} -> ran {result.algorithm}")
    for rank, t in enumerate(result.tuples, start=1):
        print(f"  {rank}. keys={t.keys} join={t.join_value} "
              f"score={t.score:.4f}")
    print(f"\nsimulated {result.metrics.sim_time_s:.2f}s, "
          f"{result.metrics.network_bytes:,} network bytes, "
          f"{result.metrics.kv_reads} KV reads")


if __name__ == "__main__":
    main()
