"""The paper's second motivating scenario (§1): full-text search.

"Imagine a collection of posting lists over a large text corpus ... each
list entry consisting of (at least) the document identifier and the
document's relevance score with regard to the keyword.  Then, finding the
most relevant documents for two (or more) keywords consists of a rank-join
over the corresponding posting lists, where the document ID is the join
attribute and the relevance of each document to the search phrase is
computed using a function over the individual relevance scores."

This example stores one posting-list table per keyword (each entry: doc id
+ TF-IDF-flavoured relevance), then answers the conjunctive query
``"database" AND "cloud"`` with ISL and BFHM — comparing how much of the
posting lists each one touches.

Run with::

    python examples/full_text_search.py
"""

from __future__ import annotations

import random

from repro import EC2_PROFILE, Platform, RankJoinEngine, RankJoinQuery, RelationBinding
from repro.common.serialization import encode_float, encode_str
from repro.store.client import Put

CORPUS_DOCS = 2000
#: fraction of the corpus containing each keyword
DENSITY = {"database": 0.25, "cloud": 0.2}


def posting_list(platform: Platform, keyword: str, seed: int) -> int:
    """Write the posting list of ``keyword`` as its own table (§1: "it is
    only reasonable to assume that each list is stored in a separate table
    in a key-value store")."""
    rng = random.Random(seed)
    htable = platform.store.create_table(f"postings_{keyword}", {"d"})
    entries = 0
    for doc in range(CORPUS_DOCS):
        if rng.random() > DENSITY[keyword]:
            continue
        doc_id = f"doc{doc:06d}"
        relevance = round(min(1.0, rng.expovariate(4.0)), 6)  # skewed scores
        htable.put(
            Put(f"{keyword}-{doc_id}")
            .add("d", "doc", encode_str(doc_id))
            .add("d", "relevance", encode_float(max(relevance, 1e-6)))
        )
        entries += 1
    htable.flush()
    return entries


def main() -> None:
    platform = Platform(EC2_PROFILE)
    sizes = {
        keyword: posting_list(platform, keyword, seed=hash(keyword) % 1000)
        for keyword in ("database", "cloud")
    }
    print("posting lists:", ", ".join(f"{k}: {n} entries"
                                      for k, n in sizes.items()))

    query = RankJoinQuery.of(
        RelationBinding("postings_database", join_column="doc",
                        score_column="relevance", alias="KW1"),
        RelationBinding("postings_cloud", join_column="doc",
                        score_column="relevance", alias="KW2"),
        "sum",  # additive relevance, as in standard conjunctive retrieval
        k=10,
    )

    engine = RankJoinEngine(platform)
    print('\nquery: top-10 documents for "database" AND "cloud"\n')

    total_entries = sum(sizes.values())
    for name in ("isl", "bfhm"):
        result = engine.execute(query, algorithm=name)
        touched = result.metrics.kv_reads
        print(f"{result.algorithm:>5}: {len(result.tuples)} docs, "
              f"touched {touched:,} of {total_entries:,} posting entries "
              f"({touched / total_entries:.1%}), "
              f"{result.metrics.network_bytes:,} bytes, "
              f"{result.metrics.sim_time_s:.3f}s simulated")

    result = engine.execute(query, algorithm="bfhm")
    print("\nbest matches:")
    for rank, t in enumerate(result.tuples, start=1):
        print(f"  {rank}. {t.join_value}  combined relevance {t.score:.4f}")


if __name__ == "__main__":
    main()
