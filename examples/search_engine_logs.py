"""The paper's first motivating scenario (§1): per-day search-engine logs.

"Take for example a collection of per-day search engine logs, consisting of
phrases and their frequency of appearance in user inputs, with a separate
table or file per day.  Now imagine we wish to find the k most popular
phrases appearing in several of these days.  This would be formulated as a
rank-join query, where the phrase text is the join attribute, and the total
popularity of each phrase is computed as an aggregate over the per-day
frequencies."

This example builds two day-tables of phrase frequencies (Zipf-like
popularity), indexes them with BFHM, and finds the phrases most popular on
*both* days without ever materializing the full join.

Run with::

    python examples/search_engine_logs.py
"""

from __future__ import annotations

import random

from repro import LC_PROFILE, Platform, RankJoinEngine, RankJoinQuery, RelationBinding
from repro.common.serialization import encode_float, encode_str
from repro.store.client import Put

HEAD_PHRASES = [
    "weather tomorrow", "breaking news", "cheap flights", "pizza near me",
    "how to tie a tie", "movie times", "currency converter", "translate",
    "stock prices", "football scores", "recipe pasta", "bus schedule",
    "lottery numbers", "tv guide", "horoscope", "traffic update",
    "unit conversion", "world map", "calorie counter", "password generator",
]

_TOPICS = ("news", "weather", "flights", "recipes", "scores", "maps",
           "prices", "reviews", "lyrics", "jobs")
_MODIFIERS = ("best", "cheap", "local", "today", "free", "top", "near me",
              "2014", "how to", "live")

#: a long Zipf tail of machine-generated phrases (full daily log)
PHRASES = HEAD_PHRASES + [
    f"{modifier} {topic} {i}"
    for i in range(75)
    for topic in _TOPICS
    for modifier in _MODIFIERS[:2]
]


def log_table_for_day(platform: Platform, day: str, seed: int) -> None:
    """One day's log: every phrase with a normalized query frequency."""
    rng = random.Random(seed)
    htable = platform.store.create_table(day, {"d"})
    for rank, phrase in enumerate(PHRASES):
        # Zipf-flavoured popularity with per-day jitter
        base = 1.0 / (rank + 1)
        frequency = min(1.0, base * rng.uniform(0.6, 1.4))
        row_key = f"{day}-{rank:04d}"
        htable.put(
            Put(row_key)
            .add("d", "phrase", encode_str(phrase))
            .add("d", "freq", encode_float(round(frequency, 6)))
        )
    htable.flush()


def main() -> None:
    platform = Platform(LC_PROFILE)
    log_table_for_day(platform, "log_2014_03_01", seed=1)
    log_table_for_day(platform, "log_2014_03_02", seed=2)

    query = RankJoinQuery.of(
        RelationBinding("log_2014_03_01", join_column="phrase",
                        score_column="freq", alias="D1"),
        RelationBinding("log_2014_03_02", join_column="phrase",
                        score_column="freq", alias="D2"),
        "sum",  # total popularity = sum of per-day frequencies
        k=5,
    )

    engine = RankJoinEngine(platform)
    print("building BFHM indices over the two day-tables ...")
    for report in engine.algorithm("bfhm").prepare(query):
        print(f"  {report.signature}: {report.index_bytes:,} bytes, "
              f"{report.build_time_s:.2f}s simulated build")

    result = engine.execute(query, algorithm="bfhm")
    print(f"\ntop-{query.k} phrases across both days "
          f"(BFHM; {result.metrics.kv_reads} KV reads, "
          f"{result.metrics.network_bytes:,} bytes):")
    store = platform.store.backing("log_2014_03_01")
    for rank, t in enumerate(result.tuples, start=1):
        phrase = store.read_row(t.left_key).value("d", "phrase").decode()
        print(f"  {rank}. {phrase!r:28} combined popularity {t.score:.3f} "
              f"({t.left_score:.3f} + {t.right_score:.3f})")

    # contrast with the naive full-join cost through Hive
    hive = engine.execute(query, algorithm="hive")
    print(f"\nsame answer via Hive-style full join: "
          f"{hive.metrics.kv_reads} KV reads, "
          f"{hive.metrics.network_bytes:,} bytes, "
          f"{hive.metrics.sim_time_s:.1f}s — "
          f"{hive.metrics.network_bytes / max(1, result.metrics.network_bytes):.0f}x "
          "the bandwidth of BFHM")
    assert [round(t.score, 9) for t in hive.tuples] == [
        round(t.score, 9) for t in result.tuples
    ]


if __name__ == "__main__":
    main()
