"""The cost-based planner: EXPLAIN, algorithm="auto", and objectives.

Loads a miniature TPC-H dataset, builds the indices, then shows

1. an EXPLAIN report — every algorithm priced, nothing executed;
2. ``algorithm="auto"`` executing the planner's pick and the actual bill
   landing close to the estimate;
3. how the winner changes with the optimization objective (time vs.
   dollars) and with the environment (EC2 vs. lab-cluster profile);
4. statistics invalidation: online inserts make the next plan re-gather.

Run with::

    python examples/explain_plan.py
"""

from __future__ import annotations

from repro import EC2_PROFILE, LC_PROFILE, Platform, RankJoinEngine
from repro.maintenance.interceptor import MaintainedRelation
from repro.tpch import generate, load_tpch, q1
from repro.tpch.loader import part_binding

SQL = (
    "SELECT * FROM part P, lineitem L WHERE P.partkey = L.partkey "
    "ORDER BY P.retailprice * L.extendedprice STOP AFTER 10"
)


def build_engine(profile) -> RankJoinEngine:
    """A loaded engine with all four index kinds pre-built."""
    platform = Platform(profile)
    load_tpch(platform.store, generate(micro_scale=0.2, seed=11))
    engine = RankJoinEngine(platform)
    for name in ("ijlmr", "isl", "bfhm", "drjn"):
        engine.algorithm(name).prepare(q1(1))
    return engine


def main() -> None:
    """Walk the planner's features end to end."""
    engine = build_engine(EC2_PROFILE)

    print("=" * 74)
    print("1. EXPLAIN (no execution)")
    print("=" * 74)
    plan = engine.explain(SQL)
    print(plan.render())
    print()
    print("per-algorithm cost components:")
    from repro.query.explain import render_comparison

    print(render_comparison(plan))

    print()
    print("=" * 74)
    print("2. algorithm='auto' — run the winner, compare bill vs estimate")
    print("=" * 74)
    result = engine.sql(SQL)  # auto is the default
    estimate = engine.last_plan.best
    print(f"planner chose {result.algorithm}:")
    print(f"  estimated {estimate.time_s:8.3f} s   {estimate.network_bytes:>8,} B")
    print(f"  actual    {result.metrics.sim_time_s:8.3f} s   "
          f"{result.metrics.network_bytes:>8,} B")

    print()
    print("=" * 74)
    print("3. objectives and environments move the winner")
    print("=" * 74)
    for objective in ("time", "network", "dollars"):
        choice = engine.plan(q1(10), objective=objective).best
        print(f"  EC2, minimize {objective:<8} -> {choice.algorithm}")
    lc_engine = build_engine(LC_PROFILE)
    for k in (1, 100):
        choice = lc_engine.plan(q1(k)).best
        print(f"  LC,  k={k:<3} minimize time -> {choice.algorithm}")

    print()
    print("=" * 74)
    print("4. online updates invalidate cached statistics")
    print("=" * 74)
    before = engine.statistics.gather_count
    engine.plan(q1(10))
    print(f"  plans reuse cached stats (gather_count still {before})")
    maintained = MaintainedRelation(
        engine.platform, part_binding(),
        statistics_catalog=engine.statistics,
    )
    maintained.insert("P_hot", {"partkey": "P_hot", "retailprice": 0.999})
    engine.plan(q1(10))
    print(f"  after one insert: stats re-gathered "
          f"(gather_count {engine.statistics.gather_count})")


if __name__ == "__main__":
    main()
