"""N-way rank joins: phrases trending across a whole week (§1 + §3).

The paper's per-day log scenario generalizes past two days: "finding the
k most popular phrases appearing in several of these days" is an n-way
rank join on the phrase, with total popularity aggregated over all days.
§3 notes the algorithms extend to multi-way joins directly; this example
runs the n-way ISL rank join over five day-tables and compares its cost
with the naive full join.

Run with::

    python examples/multiway_trends.py
"""

from __future__ import annotations

import random

from repro import LC_PROFILE, Platform, RelationBinding
from repro.common.serialization import encode_float, encode_str
from repro.core.isl_multi import MultiRankJoinQuery, MultiWayISLRankJoin
from repro.relational.binding import load_relation
from repro.relational.multiway import full_join_multi, naive_rank_join_multi
from repro.store.client import Put

DAYS = ["mon", "tue", "wed", "thu", "fri"]
PHRASE_COUNT = 400


def load_week(platform: Platform) -> list[RelationBinding]:
    rng = random.Random(14)
    phrases = [f"phrase-{i:04d}" for i in range(PHRASE_COUNT)]
    bindings = []
    for day in DAYS:
        table = f"log_{day}"
        htable = platform.store.create_table(table, {"d"})
        for i, phrase in enumerate(phrases):
            if i >= 5 and rng.random() < 0.2:
                continue  # the long tail doesn't trend every day
            # a handful of phrases dominate every day while the tail stays
            # far below — the steep profile the n-way HRJN threshold needs:
            # with n inputs, S = (n-1 top scores) + the scan frontier, so
            # termination requires the frontier to fall well under the
            # k-th result's margin over the tops
            if i < 5:
                popularity = rng.uniform(0.9, 1.0)
            else:
                popularity = rng.uniform(0.01, 0.15)
            htable.put(
                Put(f"{day}-{i:05d}")
                .add("d", "phrase", encode_str(phrase))
                .add("d", "freq", encode_float(round(popularity, 6)))
            )
        htable.flush()
        bindings.append(
            RelationBinding(table, join_column="phrase", score_column="freq",
                            alias=day)
        )
    return bindings


def main() -> None:
    platform = Platform(LC_PROFILE)
    bindings = load_week(platform)
    query = MultiRankJoinQuery.of(bindings, "sum", k=5)

    algorithm = MultiWayISLRankJoin(platform, batch_rows=20)
    result = algorithm.execute(query)

    relations = [load_relation(platform.store, b) for b in bindings]
    truth = naive_rank_join_multi(relations, query.function, query.k)
    full_size = len(full_join_multi(relations, query.function))
    total_rows = sum(len(r) for r in relations)

    print(f"5-way rank join over {total_rows} log rows "
          f"(full join would materialize {full_size} combinations)\n")
    print(f"top-{query.k} phrases of the week (recall "
          f"{result.recall_against(truth):.0%}):")
    store = platform.store.backing(bindings[0].table)
    for rank, t in enumerate(result.tuples, start=1):
        print(f"  {rank}. {t.join_value}  weekly popularity {t.score:.3f} "
              f"(per-day: {', '.join(f'{s:.2f}' for s in t.scores)})")

    seen = sum(v for name, v in result.details.items()
               if name.startswith("tuples_seen_"))
    print(f"\nISL touched {result.metrics.kv_reads} KV pairs "
          f"({seen} tuples of {total_rows}; "
          f"{result.metrics.network_bytes:,} bytes, "
          f"{result.metrics.sim_time_s:.2f}s simulated)")


if __name__ == "__main__":
    main()
