"""Quickstart: top-k joins over TPC-H with every algorithm.

Loads a miniature TPC-H dataset into the simulated NoSQL store, runs the
paper's Q1 (``Part ⋈ Lineitem`` ranked by price product) with all six
algorithms, and prints each one's answers and bill (simulated time, network
bytes, KV read units / dollars).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EC2_PROFILE, Platform, RankJoinEngine
from repro.tpch import generate, load_tpch, q1

ALGORITHMS = ["hive", "pig", "ijlmr", "isl", "bfhm", "drjn"]


def main() -> None:
    platform = Platform(EC2_PROFILE)
    data = generate(micro_scale=0.3, seed=7)
    load_tpch(platform.store, data)
    print(f"loaded TPC-H micro dataset: {data.table_counts}")

    engine = RankJoinEngine(platform)
    query = q1(5)
    print(f"\nquery: {query.description}\n")

    print(f"{'algorithm':>10} {'time (s)':>12} {'net bytes':>12} "
          f"{'KV reads':>10} {'dollars':>10}")
    reference_scores = None
    for name in ALGORITHMS:
        result = engine.execute(query, algorithm=name)
        metrics = result.metrics
        print(f"{result.algorithm:>10} {metrics.sim_time_s:>12.3f} "
              f"{metrics.network_bytes:>12,} {metrics.kv_reads:>10,} "
              f"{metrics.dollars:>10.5f}")
        scores = [round(score, 9) for score in result.scores()]
        if reference_scores is None:
            reference_scores = scores
        assert scores == reference_scores, f"{name} disagrees on the top-k!"

    print("\ntop-5 join results (identical across algorithms):")
    result = engine.execute(query, algorithm="bfhm")
    for rank, t in enumerate(result.tuples, start=1):
        print(f"  {rank}. part={t.left_key} lineitem={t.right_key} "
              f"score={t.score:.4f}")

    print("\nSQL path gives the same answer:")
    sql = ("SELECT * FROM part P, lineitem L WHERE P.partkey = L.partkey "
           "ORDER BY P.retailprice * L.extendedprice STOP AFTER 5")
    via_sql = engine.sql(sql, algorithm="bfhm")
    print(f"  {sql}")
    print(f"  -> {[round(t.score, 4) for t in via_sql.tuples]}")

    print("\n... and with no algorithm given, the cost-based planner picks:")
    auto = engine.sql(sql)
    print(f"  planner chose {auto.algorithm} "
          f"(see examples/explain_plan.py for the full EXPLAIN tour)")


if __name__ == "__main__":
    main()
