"""Package marker: keeps pytest module names unique across test trees."""
