"""Shared fixtures.

``shared_setup`` is session-scoped: the TPC-H data, platform, and all four
index kinds are built once and reused by read-only algorithm tests (index
builds are the expensive part).  Tests that mutate data or indices build
their own platform via ``fresh_setup``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentSetup, build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch
from repro.tpch.queries import q1, q2

#: small but non-trivial: ~40 parts / ~300 orders / ~1200 lineitems
TEST_SCALE = 0.2
TEST_SEED = 42


def _make_setup() -> ExperimentSetup:
    return build_setup(EC2_PROFILE, micro_scale=TEST_SCALE, seed=TEST_SEED)


@pytest.fixture(autouse=True)
def lock_order_guard(request):
    """Runtime half of repro-lint's lock discipline (see RL1xx).

    Under the ``stress``/``chaos`` markers every lock created inside
    ``src/repro`` is traced, and the test fails if the run's lock
    acquisition-order graph has a cycle (a latent deadlock), even when
    the interleaving that would actually deadlock never fired.  The
    sanctioned hierarchy is documented in ``docs/ARCHITECTURE.md``.
    """
    if (
        request.node.get_closest_marker("stress") is None
        and request.node.get_closest_marker("chaos") is None
    ):
        yield
        return
    from repro.common.locktrace import LockTracer

    tracer = LockTracer().install()
    try:
        yield
    finally:
        tracer.uninstall()
    cycle = tracer.find_cycle()
    assert cycle is None, tracer.explain(cycle)


@pytest.fixture(scope="session")
def shared_setup() -> ExperimentSetup:
    """Loaded platform + engine shared by read-only tests."""
    setup = _make_setup()
    for name in ("ijlmr", "isl", "bfhm", "drjn"):
        setup.engine.algorithm(name).prepare(q1(1))
        setup.engine.algorithm(name).prepare(q2(1))
    return setup


@pytest.fixture()
def fresh_setup() -> ExperimentSetup:
    """Per-test platform for tests that mutate data or indices."""
    return _make_setup()


@pytest.fixture()
def empty_platform() -> Platform:
    """A bare platform with no data loaded."""
    return Platform(EC2_PROFILE)


@pytest.fixture()
def tiny_engine() -> RankJoinEngine:
    """A very small loaded engine (fast even for MR baselines)."""
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=0.05, seed=7))
    return RankJoinEngine(platform)
