"""Core value types."""

from repro.common.types import JoinTuple, ScoredRow, top_k_sorted


def make(score: float, lk: str = "l", rk: str = "r") -> JoinTuple:
    return JoinTuple(lk, rk, "v", score, score / 2, score / 2)


class TestScoredRow:
    def test_projected_strips_payload(self):
        row = ScoredRow("r1", "a", 0.5, {"comment": b"xxx"})
        projected = row.projected()
        assert projected.payload == {}
        assert (projected.row_key, projected.join_value, projected.score) == (
            "r1", "a", 0.5,
        )

    def test_projected_is_noop_without_payload(self):
        row = ScoredRow("r1", "a", 0.5)
        assert row.projected() is row


class TestJoinTuple:
    def test_sort_key_orders_by_score_desc(self):
        results = [make(0.2), make(0.9), make(0.5)]
        ordered = sorted(results, key=JoinTuple.sort_key)
        assert [t.score for t in ordered] == [0.9, 0.5, 0.2]

    def test_ties_broken_deterministically(self):
        a = make(0.5, "l1", "r1")
        b = make(0.5, "l0", "r9")
        assert sorted([a, b], key=JoinTuple.sort_key) == [b, a]

    def test_top_k_sorted(self):
        results = [make(s) for s in (0.1, 0.7, 0.4, 0.9)]
        top = top_k_sorted(results, 2)
        assert [t.score for t in top] == [0.9, 0.7]

    def test_top_k_with_fewer_results(self):
        assert len(top_k_sorted([make(0.3)], 5)) == 1
