"""Simulated HDFS."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimContext
from repro.errors import HDFSError
from repro.mapreduce.hdfs import SimHDFS


@pytest.fixture()
def hdfs():
    return SimHDFS(SimContext.with_profile(EC2_PROFILE), block_bytes=256)


class TestFiles:
    def test_write_read_roundtrip(self, hdfs):
        records = [["key", i] for i in range(20)]
        hdfs.write_file("f", records)
        assert list(hdfs.read_file("f")) == records

    def test_exists_delete(self, hdfs):
        hdfs.write_file("f", [[1]])
        assert hdfs.exists("f")
        hdfs.delete("f")
        assert not hdfs.exists("f")
        with pytest.raises(HDFSError):
            hdfs.delete("f")

    def test_delete_if_exists_is_idempotent(self, hdfs):
        hdfs.delete_if_exists("never-created")

    def test_duplicate_create_rejected(self, hdfs):
        hdfs.write_file("f", [[1]])
        with pytest.raises(HDFSError):
            hdfs.write_file("f", [[2]])

    def test_missing_file_read_rejected(self, hdfs):
        with pytest.raises(HDFSError):
            list(hdfs.read_file("ghost"))

    def test_list_files(self, hdfs):
        hdfs.write_file("b", [[1]])
        hdfs.write_file("a", [[1]])
        assert hdfs.list_files() == ["a", "b"]


class TestBlocks:
    def test_large_files_split_into_blocks(self, hdfs):
        records = [["x" * 50] for _ in range(40)]
        hdfs.write_file("big", records)
        blocks = hdfs.blocks("big")
        assert len(blocks) > 1
        assert sum(len(b.records) for b in blocks) == 40

    def test_blocks_spread_across_workers(self, hdfs):
        records = [["x" * 50] for _ in range(40)]
        hdfs.write_file("big", records)
        nodes = {b.node.node_id for b in hdfs.blocks("big")}
        assert len(nodes) > 1

    def test_file_size(self, hdfs):
        hdfs.write_file("f", [["abcd"]])
        assert hdfs.file_size("f") == sum(
            b.byte_size for b in hdfs.blocks("f")
        )


class TestReplicationCosts:
    def test_write_charges_replication_traffic(self, hdfs):
        before = hdfs.ctx.metrics.snapshot()
        written = hdfs.write_file("f", [["payload" * 10] for _ in range(10)])
        delta = hdfs.ctx.metrics.snapshot() - before
        # at least (replication - 1) copies of every byte cross the network
        assert delta.network_bytes >= written * (
            hdfs.ctx.cost_model.hdfs_replication - 1
        )
        assert delta.sim_time_s > 0

    def test_local_writer_saves_primary_copy(self, hdfs):
        records = [["data"]]
        hdfs.write_file("remote", records)  # writer unknown => primary ships
        remote_cost = hdfs.ctx.metrics.network_bytes
        hdfs.ctx.metrics.reset()
        # writing from the block's own node skips the primary transfer
        node = hdfs.ctx.cluster.workers[1]  # next round-robin target
        hdfs.write_file("local", records, writer_node=node)
        local_cost = hdfs.ctx.metrics.network_bytes
        assert local_cost <= remote_cost
