"""Golomb coding (the BFHM blob compressor)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.sketches.golomb import (
    decode_sorted_set,
    encode_sorted_set,
    golomb_decode,
    golomb_encode,
    optimal_golomb_parameter,
)


class TestRoundTrip:
    @given(st.lists(st.integers(min_value=0, max_value=100_000), max_size=200),
           st.integers(min_value=1, max_value=64))
    def test_any_parameter(self, values, parameter):
        payload, bits = golomb_encode(values, parameter)
        assert golomb_decode(payload, bits, len(values), parameter) == values

    def test_empty(self):
        payload, bits = golomb_encode([], 4)
        assert golomb_decode(payload, bits, 0, 4) == []

    def test_negative_rejected(self):
        with pytest.raises(BitstreamError):
            golomb_encode([-1], 4)

    def test_zero_parameter_rejected(self):
        with pytest.raises(BitstreamError):
            golomb_encode([1], 0)


class TestOptimalParameter:
    def test_degenerate_probabilities(self):
        assert optimal_golomb_parameter(0.0) == 1
        assert optimal_golomb_parameter(1.0) == 1

    def test_sparser_means_larger(self):
        assert optimal_golomb_parameter(0.001) > optimal_golomb_parameter(0.1)

    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    def test_positive(self, p):
        assert optimal_golomb_parameter(p) >= 1


class TestSortedSets:
    @given(st.sets(st.integers(min_value=0, max_value=9999), max_size=300))
    def test_roundtrip(self, members):
        positions = sorted(members)
        payload, bits, parameter = encode_sorted_set(positions, 10_000)
        assert decode_sorted_set(payload, bits, len(positions), parameter) == positions

    def test_unsorted_rejected(self):
        with pytest.raises(BitstreamError):
            encode_sorted_set([5, 3], 10)

    def test_compression_beats_raw_bitmap_for_sparse_sets(self):
        # 100 set bits in a million-bit universe: raw bitmap = 125_000 B
        positions = sorted(range(0, 1_000_000, 10_000))
        payload, _bits, _param = encode_sorted_set(positions, 1_000_000)
        assert len(payload) < 1000

    def test_duplicates_rejected_via_gap_underflow(self):
        # duplicate positions produce a -1 gap, which must be rejected
        with pytest.raises(BitstreamError):
            encode_sorted_set([3, 3], 10)
