"""Equi-width histograms (BFHM's first level)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketches.histogram import (
    EquiWidthHistogram,
    bucket_bounds,
    score_to_bucket,
)

unit_scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBucketMapping:
    def test_paper_numbering(self):
        # §5.1: "for scores in [0,1] and 10 buckets, the first bucket —
        # i.e., for score values in (0.9, 1.0] — will be stored under key 0"
        assert score_to_bucket(1.0, 10) == 0
        assert score_to_bucket(0.95, 10) == 0
        assert score_to_bucket(0.85, 10) == 1
        assert score_to_bucket(0.05, 10) == 9

    @given(unit_scores, st.integers(min_value=1, max_value=1000))
    def test_total_and_in_range(self, score, buckets):
        assert 0 <= score_to_bucket(score, buckets) < buckets

    @given(unit_scores, unit_scores, st.integers(min_value=1, max_value=100))
    def test_monotone_higher_score_lower_bucket(self, a, b, buckets):
        if a > b:
            assert score_to_bucket(a, buckets) <= score_to_bucket(b, buckets)

    @given(unit_scores, st.integers(min_value=1, max_value=100))
    def test_score_within_its_bucket_bounds(self, score, buckets):
        bucket = score_to_bucket(score, buckets)
        low, high = bucket_bounds(bucket, buckets)
        assert low - 1e-9 <= score <= high + 1e-9

    def test_out_of_domain_rejected(self):
        with pytest.raises(SketchError):
            score_to_bucket(1.5, 10)
        with pytest.raises(SketchError):
            score_to_bucket(-0.1, 10)

    def test_invalid_config_rejected(self):
        with pytest.raises(SketchError):
            score_to_bucket(0.5, 0)
        with pytest.raises(SketchError):
            bucket_bounds(10, 10)


class TestBucketBounds:
    def test_tiling(self):
        # consecutive buckets tile [0, 1] exactly
        edges = [bucket_bounds(b, 10) for b in range(10)]
        assert edges[0][1] == pytest.approx(1.0)
        assert edges[-1][0] == pytest.approx(0.0)
        for higher, lower in zip(edges[:-1], edges[1:]):
            assert lower[1] == pytest.approx(higher[0])


class TestEquiWidthHistogram:
    def test_observe_tracks_min_max_count(self):
        histogram = EquiWidthHistogram(10)
        for score in (0.93, 1.0, 0.95):
            histogram.add(score)
        stats = histogram.bucket(0)
        assert stats.count == 3
        assert stats.min_score == 0.93
        assert stats.max_score == 1.0

    def test_empty_bucket(self):
        histogram = EquiWidthHistogram(10)
        assert histogram.bucket(5).empty

    @given(st.lists(unit_scores, max_size=200))
    def test_total_count_preserved(self, scores):
        histogram = EquiWidthHistogram(16)
        for score in scores:
            histogram.add(score)
        assert histogram.total_count == len(scores)

    def test_non_empty_buckets_sorted(self):
        histogram = EquiWidthHistogram(10)
        histogram.add(0.05)
        histogram.add(0.95)
        assert histogram.non_empty_buckets() == [0, 9]
