"""Retry backoff: deterministic exponential waits charged to sim time.

Satellite for the async-maintenance PR: :class:`RetryPolicy` grows an
exponential-backoff schedule with deterministic, seedable jitter, and
:func:`with_retries` charges each wait to the metrics collector as
simulated latency.  The default policy must stay frozen — zero backoff,
zero cost — so every pre-existing caller behaves byte-identically.
"""

from __future__ import annotations

import pytest

from repro.maintenance.consistency import (
    MutationFailedError,
    RetryPolicy,
    with_retries,
)


class _FakeMetrics:
    def __init__(self) -> None:
        self.charged: "list[float]" = []

    def advance_time(self, seconds: float) -> None:
        self.charged.append(seconds)


class TestBackoffSchedule:
    def test_default_policy_is_frozen_zero_backoff(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 8
        assert all(policy.backoff_s(attempt) == 0.0 for attempt in range(8))

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            initial_backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.5
        )
        delays = [policy.backoff_s(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            initial_backoff_s=1.0, max_backoff_s=1.0, jitter_fraction=0.5
        )
        first = [policy.backoff_s(a) for a in range(6)]
        second = [policy.backoff_s(a) for a in range(6)]
        assert first == second  # pure function of (seed, attempt)
        assert all(0.5 <= delay <= 1.0 for delay in first)
        assert len(set(first)) > 1  # jitter actually de-synchronizes

    def test_jitter_seed_decorrelates_workers(self):
        base = RetryPolicy(initial_backoff_s=1.0, jitter_fraction=0.5)
        other = RetryPolicy(
            initial_backoff_s=1.0, jitter_fraction=0.5, jitter_seed=7
        )
        assert [base.backoff_s(a) for a in range(4)] != [
            other.backoff_s(a) for a in range(4)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"initial_backoff_s": -1.0},
            {"jitter_fraction": 1.5},
            {"jitter_fraction": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryCharging:
    def test_each_failed_attempt_charges_its_backoff(self):
        policy = RetryPolicy(
            max_attempts=4, initial_backoff_s=0.1, max_backoff_s=10.0
        )
        metrics = _FakeMetrics()
        attempts = []

        def mutation():
            attempts.append(len(attempts))
            if len(attempts) < 4:
                raise MutationFailedError("transient")
            return "ok"

        assert with_retries(mutation, policy, metrics=metrics) == "ok"
        assert metrics.charged == [policy.backoff_s(a) for a in range(3)]

    def test_final_attempt_charges_nothing(self):
        """The exhausted attempt raises instead of waiting: no wait is
        billed for a retry that never happens."""
        policy = RetryPolicy(max_attempts=3, initial_backoff_s=0.1)
        metrics = _FakeMetrics()
        with pytest.raises(MutationFailedError):
            with_retries(
                lambda: (_ for _ in ()).throw(MutationFailedError("x")),
                policy,
                metrics=metrics,
            )
        assert metrics.charged == [policy.backoff_s(0), policy.backoff_s(1)]

    def test_default_policy_charges_nothing(self):
        metrics = _FakeMetrics()
        flaky = {"calls": 0}

        def mutation():
            flaky["calls"] += 1
            if flaky["calls"] < 3:
                raise MutationFailedError("transient")
            return flaky["calls"]

        assert with_retries(mutation, RetryPolicy(), metrics=metrics) == 3
        assert metrics.charged == []

    def test_injector_failures_also_back_off(self):
        policy = RetryPolicy(max_attempts=3, initial_backoff_s=0.25)
        metrics = _FakeMetrics()
        result = with_retries(
            lambda: "done",
            policy,
            failure_injector=lambda attempt: attempt == 0,
            metrics=metrics,
        )
        assert result == "done"
        assert metrics.charged == [policy.backoff_s(0)]

    def test_no_metrics_still_works(self):
        policy = RetryPolicy(max_attempts=2, initial_backoff_s=0.1)
        assert with_retries(lambda: 42, policy) == 42
