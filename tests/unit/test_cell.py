"""Cells, version resolution, and row grouping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.store.cell import Cell, RowResult, group_rows, resolve_versions


def cell(row="r", family="d", qualifier="q", value=b"v", ts=1, delete=False):
    return Cell(row, family, qualifier, value, ts, delete)


class TestOrdering:
    def test_newest_version_first(self):
        old, new = cell(ts=1), cell(ts=2)
        assert sorted([old, new], key=Cell.sort_key) == [new, old]

    def test_row_then_family_then_qualifier(self):
        cells = [cell(row="b"), cell(row="a", family="e"), cell(row="a", family="d")]
        ordered = sorted(cells, key=Cell.sort_key)
        assert [(c.row, c.family) for c in ordered] == [
            ("a", "d"), ("a", "e"), ("b", "d"),
        ]

    def test_serialized_size(self):
        c = cell(row="rr", family="f", qualifier="qq", value=b"12345")
        assert c.serialized_size() == 2 + 1 + 2 + 5 + 9


class TestVersionResolution:
    def test_latest_version_wins(self):
        resolved = resolve_versions([cell(ts=1, value=b"old"), cell(ts=5, value=b"new")])
        assert len(resolved) == 1
        assert resolved[0].value == b"new"

    def test_tombstone_masks_older_versions(self):
        resolved = resolve_versions([
            cell(ts=1, value=b"old"),
            cell(ts=2, delete=True),
        ])
        assert resolved == []

    def test_tombstone_does_not_mask_newer_write(self):
        resolved = resolve_versions([
            cell(ts=2, delete=True),
            cell(ts=3, value=b"resurrected"),
        ])
        assert len(resolved) == 1
        assert resolved[0].value == b"resurrected"

    def test_tombstone_masks_equal_timestamp(self):
        resolved = resolve_versions([
            cell(ts=2, value=b"same-instant"),
            cell(ts=2, delete=True),
        ])
        assert resolved == []

    def test_columns_independent(self):
        resolved = resolve_versions([
            cell(qualifier="a", ts=1),
            cell(qualifier="b", ts=2, delete=True),
            cell(qualifier="b", ts=1),
        ])
        assert [c.qualifier for c in resolved] == ["a"]

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=20),
                              st.booleans()), max_size=20))
    def test_single_column_resolution_matches_model(self, mutations):
        cells = [
            cell(ts=ts, value=str(ts).encode(), delete=is_delete)
            for ts, is_delete in mutations
        ]
        resolved = resolve_versions(cells)
        # reference model: latest put strictly newer than every delete >= it
        deletes = [ts for ts, d in mutations if d]
        horizon = max(deletes, default=-1)
        live = [ts for ts, d in mutations if not d and ts > horizon]
        if live:
            assert len(resolved) == 1
            assert resolved[0].timestamp == max(live)
        else:
            assert resolved == []


class TestRowResult:
    def test_value_lookup(self):
        row = RowResult("r", [cell(qualifier="x", value=b"1")])
        assert row.value("d", "x") == b"1"
        assert row.value("d", "missing") is None

    def test_family_cells_and_families(self):
        row = RowResult("r", [cell(family="a"), cell(family="b")])
        assert len(row.family_cells("a")) == 1
        assert row.families() == {"a", "b"}

    def test_group_rows(self):
        cells = sorted(
            [cell(row="r1"), cell(row="r2", qualifier="a"),
             cell(row="r2", qualifier="b")],
            key=Cell.sort_key,
        )
        grouped = group_rows(cells)
        assert [r.row for r in grouped] == ["r1", "r2"]
        assert len(grouped[1]) == 2
