"""Byte encodings and size accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.serialization import (
    decode_float,
    decode_score_key,
    decode_str,
    encode_float,
    encode_score_key,
    encode_str,
    sizeof,
)


class TestRoundTrips:
    @given(st.text(max_size=200))
    def test_str_roundtrip(self, value):
        assert decode_str(encode_str(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        assert decode_float(encode_float(value)) == value

    def test_float_is_eight_bytes(self):
        assert len(encode_float(0.5)) == 8


class TestScoreKeys:
    """The ISL negated-score key (§4.2.2): ascending keys == descending
    scores, so HBase's forward-only scans walk scores downward."""

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_order_inversion(self, a, b):
        if a < b:
            assert encode_score_key(a) >= encode_score_key(b)
        elif a > b:
            assert encode_score_key(a) <= encode_score_key(b)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_roundtrip_is_lossless(self, score):
        assert decode_score_key(encode_score_key(score)) == score

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_order_inversion_beyond_unit_interval(self, a, b):
        # arbitrary score domains are supported (§1.1: only a total
        # ordering is required)
        if a < b:
            assert encode_score_key(a) > encode_score_key(b)

    def test_keys_are_fixed_width(self):
        assert len(encode_score_key(0.0)) == len(encode_score_key(1.0))

    def test_extremes(self):
        assert encode_score_key(1.0) < encode_score_key(0.0)


class TestSizeof:
    def test_primitives(self):
        assert sizeof(None) == 1
        assert sizeof(True) == 1
        assert sizeof(b"abcd") == 4
        assert sizeof("abcd") == 4
        assert sizeof(0.5) == 8
        assert sizeof(300) == 2

    def test_unicode_counts_encoded_bytes(self):
        assert sizeof("é") == 2

    def test_containers_recursive(self):
        assert sizeof([b"ab", b"cd"]) == 2 + 4
        assert sizeof({"k": b"vv"}) == 2 + 1 + 2
        assert sizeof(("ab", 0.5)) == 2 + 2 + 8

    def test_objects_with_serialized_size(self):
        class Blob:
            def serialized_size(self):
                return 99

        assert sizeof(Blob()) == 99

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            sizeof(object())
