"""Server-side filters."""

import pytest

from repro.common.serialization import encode_float
from repro.errors import FilterError
from repro.store.cell import Cell, RowResult
from repro.store.filters import (
    AndFilter,
    ColumnValueFilter,
    QualifierPrefixFilter,
    RowRangeFilter,
    ScoreThresholdFilter,
)


def row(key="r", cells=None):
    return RowResult(key, cells if cells is not None else
                     [Cell(key, "d", "q", b"v", 1)])


class TestRowRange:
    def test_bounds(self):
        f = RowRangeFilter("b", "d")
        assert not f.matches(row("a"))
        assert f.matches(row("b"))
        assert f.matches(row("c"))
        assert not f.matches(row("d"))

    def test_open_ends(self):
        assert RowRangeFilter(None, None).matches(row("anything"))

    def test_empty_range_rejected(self):
        with pytest.raises(FilterError):
            RowRangeFilter("z", "a")


class TestQualifierPrefix:
    def test_strips_non_matching_cells(self):
        cells = [Cell("r", "d", "keep_1", b"v", 1), Cell("r", "d", "drop", b"v", 1)]
        r = row(cells=cells)
        assert QualifierPrefixFilter("keep").matches(r)
        assert [c.qualifier for c in r.cells] == ["keep_1"]

    def test_no_match_rejects_row(self):
        assert not QualifierPrefixFilter("absent").matches(row())


class TestColumnValue:
    def test_equality(self):
        cells = [Cell("r", "d", "status", b"open", 1)]
        assert ColumnValueFilter("d", "status", b"open").matches(row(cells=cells))
        assert not ColumnValueFilter("d", "status", b"closed").matches(row(cells=cells))

    def test_missing_column_rejects(self):
        assert not ColumnValueFilter("d", "missing", b"x").matches(row())


class TestScoreThreshold:
    def _scored(self, value: float):
        return row(cells=[Cell("r", "d", "score", encode_float(value), 1)])

    def test_threshold_inclusive(self):
        f = ScoreThresholdFilter("d", "score", 0.5)
        assert f.matches(self._scored(0.5))
        assert f.matches(self._scored(0.9))
        assert not f.matches(self._scored(0.49))

    def test_missing_score_rejects(self):
        assert not ScoreThresholdFilter("d", "score", 0.5).matches(row())


class TestAnd:
    def test_conjunction(self):
        cells = [Cell("m", "d", "score", encode_float(0.9), 1)]
        both = AndFilter(RowRangeFilter("a", "z"),
                         ScoreThresholdFilter("d", "score", 0.5))
        assert both.matches(RowResult("m", cells))
        assert not AndFilter(RowRangeFilter("n", "z"),
                             ScoreThresholdFilter("d", "score", 0.5)
                             ).matches(RowResult("m", cells))

    def test_requires_filters(self):
        with pytest.raises(FilterError):
            AndFilter()
