"""The DRJN 2-D histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketches.histogram2d import DRJNHistogram


def build(pairs, partitions=8, buckets=10) -> DRJNHistogram:
    histogram = DRJNHistogram(partitions, buckets)
    for join_value, score in pairs:
        histogram.add(join_value, score)
    return histogram


class TestConstruction:
    def test_invalid_config(self):
        with pytest.raises(SketchError):
            DRJNHistogram(0, 10)
        with pytest.raises(SketchError):
            DRJNHistogram(10, 0)

    def test_add_routes_to_cells(self):
        histogram = DRJNHistogram(4, 10)
        partition, bucket = histogram.add("alpha", 0.95)
        assert bucket == 0
        assert histogram.score_row(0).cells[partition].count == 1

    def test_distinct_counting(self):
        histogram = build([("a", 0.5), ("a", 0.6), ("b", 0.5)], partitions=1)
        assert histogram.distinct_count(0) == 2

    def test_non_empty_buckets(self):
        histogram = build([("a", 0.95), ("b", 0.05)])
        assert histogram.non_empty_buckets() == [0, 9]


class TestJoinEstimation:
    def test_uniform_assumption_exact_for_single_value(self):
        left = build([("v", 0.95)] * 3, partitions=1)
        right = build([("v", 0.95)] * 4, partitions=1)
        # one distinct value: c1*c2/1 = 12
        assert left.estimate_join(right, 0, 0) == pytest.approx(12.0)

    def test_uniform_assumption_divides_by_distinct(self):
        left = build([("a", 0.95), ("b", 0.95)], partitions=1)
        right = build([("a", 0.95), ("b", 0.95)], partitions=1)
        # 2 tuples x 2 tuples over 2 distinct values = 2 expected pairs
        assert left.estimate_join(right, 0, 0) == pytest.approx(2.0)

    def test_disjoint_partitions_estimate_zero(self):
        left = build([("a", 0.95)], partitions=64)
        right = build([("zzz", 0.95)], partitions=64)
        if left.join_partition("a") != right.join_partition("zzz"):
            assert left.estimate_join(right, 0, 0) == 0.0

    def test_empty_bucket_estimates_zero(self):
        left = build([("a", 0.95)])
        right = build([("a", 0.05)])
        assert left.estimate_join(right, 0, 0) == 0.0

    @given(st.lists(st.tuples(st.sampled_from("abcdef"),
                              st.floats(min_value=0.01, max_value=1.0)),
                    min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_estimates_nonnegative(self, pairs):
        left = build(pairs)
        right = build(pairs)
        for bucket in left.non_empty_buckets():
            assert left.estimate_join(right, bucket, bucket) >= 0.0


class TestSizing:
    def test_serialized_size_grows_with_cells(self):
        small = build([("a", 0.95)])
        large = build([(f"v{i}", i / 100 + 0.005) for i in range(90)])
        assert large.serialized_size() > small.serialized_size()

    def test_index_is_tiny(self):
        # §7.2: DRJN's index is KB-scale where the others are GB-scale
        histogram = build(
            [(f"v{i % 50}", (i % 97 + 1) / 100) for i in range(5000)],
            partitions=64, buckets=100,
        )
        assert histogram.serialized_size() < 200_000
