"""The hybrid Golomb-compressed single-hash counting filter (BFHM bucket)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketches.hybrid import HybridBloomFilter

keys = st.text(min_size=1, max_size=12)


class TestBlobRoundTrip:
    @given(st.lists(keys, max_size=80))
    @settings(max_examples=50)
    def test_roundtrip_preserves_counters(self, items):
        hybrid = HybridBloomFilter(2048)
        for item in items:
            hybrid.insert(item)
        restored = HybridBloomFilter.from_blob(hybrid.to_blob())
        assert restored.counters == hybrid.counters
        assert restored.item_count == hybrid.item_count
        assert restored.bit_count == hybrid.bit_count

    def test_empty_filter_roundtrip(self):
        hybrid = HybridBloomFilter(256)
        restored = HybridBloomFilter.from_blob(hybrid.to_blob())
        assert restored.counters == {}

    def test_blob_is_compact(self):
        hybrid = HybridBloomFilter(1_000_000)
        for i in range(100):
            hybrid.insert(f"value-{i}")
        blob = hybrid.to_blob()
        # raw bitmap would be 125 kB; the blob is ~100 gaps + counters
        assert blob.serialized_size() < 2000


class TestIntersection:
    def test_common_positions(self):
        a = HybridBloomFilter(4096)
        b = HybridBloomFilter(4096)
        for value in ("x", "y", "z"):
            a.insert(value)
        for value in ("y", "z", "w"):
            b.insert(value)
        common = set(a.intersect_positions(b))
        assert a.position("y") in common
        assert a.position("z") in common
        # 'x' alone cannot appear unless it collides with b's members
        assert common <= {a.position(v) for v in ("x", "y", "z")}

    def test_disjoint_filters(self):
        a = HybridBloomFilter(1 << 20)
        b = HybridBloomFilter(1 << 20)
        a.insert("only-a")
        b.insert("only-b")
        assert a.intersect_positions(b) == []

    def test_size_mismatch_rejected(self):
        with pytest.raises(SketchError):
            HybridBloomFilter(64).intersect_positions(HybridBloomFilter(128))


class TestJoinCardinality:
    def test_exact_for_sparse_filters(self):
        a = HybridBloomFilter(1 << 16)
        b = HybridBloomFilter(1 << 16)
        for _ in range(3):
            a.insert("v")
        for _ in range(4):
            b.insert("v")
        estimate = a.join_cardinality(b)
        # α ≈ 1 for near-empty filters; true join size is 12
        assert estimate == pytest.approx(12, rel=0.01)

    def test_zero_when_disjoint(self):
        a = HybridBloomFilter(1 << 16)
        b = HybridBloomFilter(1 << 16)
        a.insert("p")
        b.insert("q")
        assert a.join_cardinality(b) == 0.0

    def test_alpha_discounts_crowded_filters(self):
        # same logical content; the crowded filter pair must estimate lower
        # than the raw counter product because α < 1
        a = HybridBloomFilter(64)
        b = HybridBloomFilter(64)
        for i in range(40):
            a.insert(f"a{i}")
            b.insert(f"b{i}")
        common = a.intersect_positions(b)
        if common:  # collisions are near-certain at this load
            raw = sum(a.counters[p] * b.counters[p] for p in common)
            assert a.join_cardinality(b) < raw
