"""Error hierarchy and the Platform facade."""

import pytest

from repro import errors
from repro.cluster.costmodel import LC_PROFILE
from repro.platform import Platform


class TestErrorHierarchy:
    @pytest.mark.parametrize("subclass", [
        errors.StoreError, errors.MapReduceError, errors.QueryError,
        errors.IndexError_, errors.SketchError,
    ])
    def test_all_roots_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_specific_errors_carry_context(self):
        error = errors.TableNotFoundError("missing")
        assert error.table_name == "missing"
        assert "missing" in str(error)

        error = errors.ColumnFamilyNotFoundError("t", "cf")
        assert (error.table_name, error.family) == ("t", "cf")

        error = errors.ParseError("bad token", position=17)
        assert error.position == 17
        assert "17" in str(error)

        error = errors.IndexNotBuiltError("bfhm:x")
        assert error.index_name == "bfhm:x"

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CounterUnderflowError("x")


class TestPlatform:
    def test_wiring(self):
        platform = Platform(LC_PROFILE)
        assert platform.cost_model is LC_PROFILE
        assert platform.store.ctx is platform.ctx
        assert platform.hdfs.ctx is platform.ctx
        assert platform.runner.store is platform.store
        assert len(platform.ctx.cluster.workers) == LC_PROFILE.worker_nodes

    def test_reset_metrics_keeps_data(self):
        platform = Platform(LC_PROFILE)
        htable = platform.store.create_table("t", {"d"})
        from repro.store.client import Get, Put

        htable.put(Put("r").add("d", "c", b"v"))
        platform.reset_metrics()
        assert platform.metrics.network_bytes == 0
        assert htable.get(Get("r")).value("d", "c") == b"v"

    def test_default_profile_is_ec2(self):
        from repro.cluster.costmodel import EC2_PROFILE

        assert Platform().cost_model is EC2_PROFILE
