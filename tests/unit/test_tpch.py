"""TPC-H generator, loader, and refresh sets."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.platform import Platform
from repro.relational.binding import load_relation
from repro.tpch.generator import generate
from repro.tpch.loader import (
    LINEITEM,
    ORDERS,
    PART,
    lineitem_by_part_binding,
    load_tpch,
    orders_binding,
    part_binding,
)
from repro.tpch.updates import generate_refresh_sets


class TestGenerator:
    def test_deterministic(self):
        a = generate(micro_scale=0.3, seed=11)
        b = generate(micro_scale=0.3, seed=11)
        assert a.parts == b.parts
        assert a.orders == b.orders
        assert a.lineitems == b.lineitems

    def test_seed_changes_data(self):
        a = generate(micro_scale=0.3, seed=1)
        b = generate(micro_scale=0.3, seed=2)
        assert a.lineitems != b.lineitems

    def test_scaling(self):
        small = generate(micro_scale=0.2)
        large = generate(micro_scale=1.0)
        assert len(large.parts) == pytest.approx(5 * len(small.parts), rel=0.2)
        assert len(large.lineitems) > 3 * len(small.lineitems)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate(micro_scale=0)

    def test_scores_in_unit_interval(self):
        data = generate(micro_scale=0.2)
        for part in data.parts:
            assert 0 < part["retailprice"] <= 1
        for order in data.orders:
            assert 0 < order["totalprice"] <= 1
        for item in data.lineitems:
            assert 0 < item["extendedprice"] <= 1

    def test_q2_scores_skewed_lower_than_q1(self):
        # the §7.2 distribution contrast: orders.totalprice (u^3) has far
        # fewer high-ranking tuples than part.retailprice (uniform)
        data = generate(micro_scale=1.0)
        part_high = sum(p["retailprice"] > 0.8 for p in data.parts) / len(data.parts)
        order_high = sum(o["totalprice"] > 0.8 for o in data.orders) / len(data.orders)
        assert order_high < part_high / 2

    def test_referential_integrity(self):
        data = generate(micro_scale=0.2)
        partkeys = {p["partkey"] for p in data.parts}
        orderkeys = {o["orderkey"] for o in data.orders}
        for item in data.lineitems:
            assert item["partkey"] in partkeys
            assert item["orderkey"] in orderkeys


class TestLoader:
    def test_tables_created_and_populated(self):
        platform = Platform(EC2_PROFILE)
        data = generate(micro_scale=0.1, seed=3)
        load_tpch(platform.store, data)
        for name, expected in [(PART, len(data.parts)),
                               (ORDERS, len(data.orders)),
                               (LINEITEM, len(data.lineitems))]:
            rows = list(platform.store.backing(name).all_rows())
            assert len(rows) == expected

    def test_tables_pre_split(self):
        platform = Platform(EC2_PROFILE)
        load_tpch(platform.store, generate(micro_scale=0.2, seed=3))
        assert len(platform.store.backing(LINEITEM).regions) > 1

    def test_bindings_decode(self):
        platform = Platform(EC2_PROFILE)
        data = generate(micro_scale=0.1, seed=3)
        load_tpch(platform.store, data)
        rows = load_relation(platform.store, part_binding())
        assert len(rows) == len(data.parts)
        assert all(0 < r.score <= 1 for r in rows)
        by_key = {r.row_key: r for r in rows}
        assert by_key[data.parts[0]["partkey"]].join_value == data.parts[0]["partkey"]

    def test_lineitem_binding_has_payload(self):
        platform = Platform(EC2_PROFILE)
        load_tpch(platform.store, generate(micro_scale=0.1, seed=3))
        rows = load_relation(platform.store, lineitem_by_part_binding())
        # 16 columns minus join minus score = wide payload (Hive ships it)
        assert len(rows[0].payload) >= 12


class TestRefreshSets:
    def test_sizing_follows_paper(self):
        data = generate(micro_scale=1.0, seed=5)
        sets = generate_refresh_sets(data, count=2)
        for refresh in sets:
            # ≈ 600·s insertions, ≈ 150·s deletions (§7.2)
            assert refresh.insert_count == pytest.approx(600, rel=0.15)
            assert refresh.delete_count == pytest.approx(150, rel=0.35)

    def test_deletes_reference_existing_orders(self):
        data = generate(micro_scale=0.5, seed=5)
        orderkeys = {o["orderkey"] for o in data.orders}
        refresh = generate_refresh_sets(data, count=1)[0]
        assert all(key in orderkeys for key in refresh.delete_orders)

    def test_consecutive_sets_do_not_redelete(self):
        data = generate(micro_scale=0.5, seed=5)
        sets = generate_refresh_sets(data, count=3)
        seen: set[str] = set()
        for refresh in sets:
            current = set(refresh.delete_orders)
            assert not (current & seen)
            seen |= current

    def test_inserted_lineitems_belong_to_inserted_orders(self):
        data = generate(micro_scale=0.5, seed=5)
        refresh = generate_refresh_sets(data, count=1)[0]
        new_orders = {o["orderkey"] for o in refresh.insert_orders}
        assert all(i["orderkey"] in new_orders for i in refresh.insert_lineitems)

    def test_key_sequences_advance(self):
        data = generate(micro_scale=0.5, seed=5)
        before = data.next_order_seq
        generate_refresh_sets(data, count=2)
        assert data.next_order_seq > before


class TestBindings:
    def test_signatures_unique_per_role(self):
        assert part_binding().signature != orders_binding().signature
        assert (lineitem_by_part_binding().signature
                != "lineitem__orderkey__extendedprice")
