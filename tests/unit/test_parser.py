"""The SQL-dialect parser (§1.1 syntax)."""

import pytest

from repro.common.functions import (
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
)
from repro.errors import ParseError
from repro.query.parser import parse_rank_join


class TestHappyPath:
    def test_q1_product(self):
        query = parse_rank_join(
            "SELECT * FROM part P, lineitem L WHERE P.partkey = L.partkey "
            "ORDER BY P.retailprice * L.extendedprice STOP AFTER 10"
        )
        assert query.k == 10
        assert isinstance(query.function, ProductFunction)
        assert query.left.table == "part"
        assert query.left.join_column == "partkey"
        assert query.left.score_column == "retailprice"
        assert query.right.table == "lineitem"
        assert query.right.score_column == "extendedprice"

    def test_q2_sum(self):
        query = parse_rank_join(
            "SELECT * FROM orders O, lineitem L WHERE O.orderkey = L.orderkey "
            "ORDER BY O.totalprice + L.extendedprice STOP AFTER 5"
        )
        assert isinstance(query.function, SumFunction)
        assert query.k == 5

    def test_weighted_sum(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY 0.7 * X.s + 0.3 * Y.s STOP AFTER 3"
        )
        assert isinstance(query.function, WeightedSumFunction)
        assert query.function.weights == (0.7, 0.3)

    def test_weighted_sum_reordered_expression(self):
        # expression references relations in the opposite order of FROM
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY 0.3 * Y.s + 0.7 * X.s STOP AFTER 3"
        )
        assert query.function.weights == (0.7, 0.3)  # aligned to (X, Y)

    def test_max_min(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY MAX(X.s, Y.s) STOP AFTER 1"
        )
        assert isinstance(query.function, MaxFunction)
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY min(X.s, Y.s) STOP AFTER 1"
        )
        assert isinstance(query.function, MinFunction)

    def test_explicit_select_list(self):
        query = parse_rank_join(
            "SELECT P.name, L.quantity FROM part P, lineitem L "
            "WHERE P.partkey = L.partkey "
            "ORDER BY P.retailprice * L.extendedprice STOP AFTER 2"
        )
        assert query.k == 2

    def test_tables_without_aliases(self):
        query = parse_rank_join(
            "SELECT * FROM part, lineitem WHERE part.partkey = lineitem.partkey "
            "ORDER BY part.retailprice * lineitem.extendedprice STOP AFTER 4"
        )
        assert query.left.table == "part"

    def test_case_insensitive_keywords(self):
        query = parse_rank_join(
            "select * from a X, b Y where X.j = Y.j "
            "order by X.s + Y.s stop after 7"
        )
        assert query.k == 7

    def test_parenthesized_atoms(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY (X.s) * (Y.s) STOP AFTER 2"
        )
        assert isinstance(query.function, ProductFunction)

    def test_custom_family(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y WHERE X.j = Y.j "
            "ORDER BY X.s + Y.s STOP AFTER 1",
            family="cf",
        )
        assert query.left.family == "cf"


class TestNWay:
    def test_three_way_sum(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y, c Z "
            "WHERE X.j = Y.j AND Y.j = Z.j "
            "ORDER BY X.s + Y.s + Z.s STOP AFTER 5"
        )
        assert query.arity == 3
        assert [b.table for b in query.inputs] == ["a", "b", "c"]
        assert all(b.join_column == "j" for b in query.inputs)
        assert isinstance(query.function, SumFunction)

    def test_four_way_product(self):
        query = parse_rank_join(
            "SELECT * FROM a W, b X, c Y, d Z "
            "WHERE W.j = X.j AND X.j = Y.j AND Y.j = Z.j "
            "ORDER BY W.s * X.s * Y.s * Z.s STOP AFTER 2"
        )
        assert query.arity == 4
        assert isinstance(query.function, ProductFunction)

    def test_join_conditions_connect_transitively(self):
        # Z connects to X directly, not through Y — still one class
        query = parse_rank_join(
            "SELECT * FROM a X, b Y, c Z "
            "WHERE X.j = Y.j AND X.j = Z.j "
            "ORDER BY X.s + Y.s + Z.s STOP AFTER 1"
        )
        assert query.arity == 3

    def test_weighted_sum_realigned_to_from_order(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y, c Z "
            "WHERE X.j = Y.j AND Y.j = Z.j "
            "ORDER BY 3 * Z.s + 2 * X.s + Y.s STOP AFTER 1"
        )
        assert query.function.weights == (2.0, 1.0, 3.0)  # (X, Y, Z)

    def test_nary_max(self):
        query = parse_rank_join(
            "SELECT * FROM a X, b Y, c Z "
            "WHERE X.j = Y.j AND Y.j = Z.j "
            "ORDER BY MAX(X.s, Y.s, Z.s) STOP AFTER 1"
        )
        assert isinstance(query.function, MaxFunction)
        assert query.arity == 3

    @pytest.mark.parametrize("text", [
        # join conditions leave Z disconnected
        "SELECT * FROM a X, b Y, c Z WHERE X.j = Y.j "
        "ORDER BY X.s + Y.s + Z.s STOP AFTER 1",
        # score expression misses Z
        "SELECT * FROM a X, b Y, c Z WHERE X.j = Y.j AND Y.j = Z.j "
        "ORDER BY X.s + Y.s STOP AFTER 1",
        # one alias joining on two different columns
        "SELECT * FROM a X, b Y, c Z WHERE X.j = Y.j AND X.q = Z.j "
        "ORDER BY X.s + Y.s + Z.s STOP AFTER 1",
        # unknown alias in the join chain
        "SELECT * FROM a X, b Y WHERE X.j = Y.j AND Q.j = X.j "
        "ORDER BY X.s + Y.s STOP AFTER 1",
    ])
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_rank_join(text)


class TestErrors:
    @pytest.mark.parametrize("text", [
        "FROM a, b WHERE a.j = b.j ORDER BY a.s + b.s STOP AFTER 1",
        "SELECT * FROM a WHERE a.j = a.j ORDER BY a.s + a.s STOP AFTER 1",
        "SELECT * FROM a X, b Y, c Z WHERE X.j = Y.j ORDER BY X.s + Y.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = X.j ORDER BY X.s + Y.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + X.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + Y.s STOP AFTER 0",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + Y.s STOP AFTER 1.5",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + Y.s",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + Y.s STOP AFTER 1 garbage",
        "SELECT * FROM a X, a X WHERE X.j = X.j ORDER BY X.s + X.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY X.s + Y.s + X.t STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY 2 * X.s * Y.s STOP AFTER 1",
        "SELECT * FROM a X, b Y WHERE X.j = Y.j ORDER BY MAX(X.s, X.t) STOP AFTER 1",
        "",
    ])
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_rank_join(text)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_rank_join("SELECT * FROM a ; DROP TABLE b")

    def test_error_carries_position(self):
        try:
            parse_rank_join("SELECT % FROM a")
        except ParseError as error:
            assert error.position is not None
