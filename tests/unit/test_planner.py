"""Unit tests: cost formulas, plan ranking, and statistics caching."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import EC2_PROFILE, LC_PROFILE
from repro.errors import PlanningError
from repro.query.planner import (
    CostEstimate,
    CostLedger,
    _golomb_blob_bytes,
    _join_selectivity,
    _profile,
    _simulate_bfhm,
    _simulate_hrjn,
)
from repro.query.statistics import (
    BFHMIndexStatistics,
    StatisticsCatalog,
    gather_statistics,
)
from repro.tpch.queries import q1, q2


class TestCostLedger:
    def test_rpc_charges_latency_plus_transfer(self):
        ledger = CostLedger(EC2_PROFILE)
        ledger.rpc("x", 64, 1000)
        assert ledger.network_bytes == 1064
        expected = EC2_PROFILE.rpc_latency_s + EC2_PROFILE.network_time(1064)
        assert ledger.time_s == pytest.approx(expected)
        assert ledger.breakdown["x"] == pytest.approx(expected)

    def test_server_read_sequential_vs_random(self):
        sequential = CostLedger(LC_PROFILE)
        sequential.server_read("x", 4096, 10, sequential=True)
        random = CostLedger(LC_PROFILE)
        random.server_read("x", 4096, 10, sequential=False)
        assert random.time_s - sequential.time_s == pytest.approx(
            LC_PROFILE.disk_random_read_s
        )
        assert sequential.kv_reads == random.kv_reads == 10

    def test_server_read_rows_seeks_per_row(self):
        """Reverse-mapping reads seek once per row, not once per call."""
        ledger = CostLedger(LC_PROFILE)
        ledger.server_read_rows("x", 50, 5000, 60)
        single = CostLedger(LC_PROFILE)
        single.server_read("x", 5000, 60, sequential=False)
        extra_seeks = 49 * LC_PROFILE.disk_random_read_s
        assert ledger.time_s == pytest.approx(single.time_s + extra_seeks)

    def test_components_accumulate_into_time(self):
        ledger = CostLedger(EC2_PROFILE)
        ledger.add_time("a", 1.0)
        ledger.add_time("b", 2.0)
        ledger.add_time("a", 0.5)
        assert ledger.time_s == pytest.approx(3.5)
        assert ledger.breakdown == {"a": 1.5, "b": 2.0}


class TestStatistics:
    def test_gather_counts_rows_and_join_values(self, shared_setup):
        query = q1(1)
        stats = gather_statistics(shared_setup.platform, query.left)
        assert stats.row_count == 40
        assert stats.distinct_join_values == 40
        assert stats.histogram.total_count == 40
        assert stats.total_row_bytes > 0

    def test_gather_sees_built_indexes(self, shared_setup):
        query = q1(1)
        stats = gather_statistics(shared_setup.platform, query.left)
        for kind in ("ijlmr", "isl", "bfhm", "drjn"):
            assert stats.index(kind).built, kind
        bfhm = stats.index("bfhm")
        assert isinstance(bfhm, BFHMIndexStatistics)
        assert bfhm.m_bits > 0
        assert bfhm.bucket_blobs  # per-bucket (count, bytes) facts
        assert bfhm.reverse_rows > 0

    def test_gather_captures_bucket_score_profile(self, shared_setup):
        """The cascade replay runs against actual per-bucket facts."""
        stats = gather_statistics(shared_setup.platform, q1(1).left)
        bfhm = stats.index("bfhm")
        assert bfhm.bucket_scores.keys() == bfhm.bucket_blobs.keys()
        profile = bfhm.bucket_profile()
        assert profile
        buckets = [bucket for bucket, _, _, _ in profile]
        assert buckets == sorted(buckets)  # descending score order
        assert sum(count for _, count, _, _ in profile) == stats.row_count
        for _, _, low, high in profile:
            assert 0.0 <= low <= high <= 1.0

    def test_gather_captures_join_profile(self, shared_setup):
        """The 2-D (score bucket × join partition) profile is mass- and
        distinct-preserving."""
        stats = gather_statistics(shared_setup.platform, q1(1).left)
        profile = stats.join_profile
        assert profile is not None
        total = sum(
            count
            for vector in profile.cells.values()
            for count, _ in vector.values()
        )
        assert total == stats.row_count
        assert (sum(profile.partition_distinct.values())
                >= stats.distinct_join_values)

    def test_gather_on_unindexed_relation(self, tiny_engine):
        stats = gather_statistics(tiny_engine.platform, q1(1).left)
        for kind in ("ijlmr", "isl", "bfhm", "drjn"):
            assert not stats.index(kind).built

    def test_gathering_is_unmetered(self, shared_setup):
        before = shared_setup.platform.metrics.snapshot()
        gather_statistics(shared_setup.platform, q2(1).right)
        delta = shared_setup.platform.metrics.snapshot() - before
        assert delta.sim_time_s == 0.0
        assert delta.kv_reads == 0

    def test_empty_relation_rejected(self, empty_platform):
        empty_platform.store.create_table("bare", {"d"})
        from repro.relational.binding import RelationBinding

        with pytest.raises(PlanningError):
            gather_statistics(
                empty_platform, RelationBinding("bare", "j", "s")
            )


class TestStatisticsCatalog:
    def test_stats_cached_per_signature(self, shared_setup):
        catalog = StatisticsCatalog(shared_setup.platform)
        first = catalog.stats_for(q1(1).left)
        second = catalog.stats_for(q1(5).left)  # same binding, different k
        assert first is second
        assert catalog.gather_count == 1

    def test_invalidate_drops_only_that_table(self, shared_setup):
        catalog = StatisticsCatalog(shared_setup.platform)
        catalog.stats_for(q1(1).left)     # part
        catalog.stats_for(q1(1).right)    # lineitem
        assert catalog.invalidate("part") == 1
        assert catalog.gather_count == 2
        catalog.stats_for(q1(1).right)    # still cached
        assert catalog.gather_count == 2
        catalog.stats_for(q1(1).left)     # regathered
        assert catalog.gather_count == 3

    def test_maintenance_invalidates_through_interceptor(self, fresh_setup):
        from repro.maintenance.interceptor import MaintainedRelation
        from repro.tpch.loader import orders_binding

        engine = fresh_setup.engine
        binding = orders_binding()
        engine.statistics.stats_for(binding)
        before = engine.statistics.stats_for(binding).row_count

        maintained = MaintainedRelation(
            fresh_setup.platform, binding,
            statistics_catalog=engine.statistics,
        )
        maintained.insert("O_new", {
            "orderkey": "O_new", "totalprice": 0.5, "custkey": "C1",
        })
        after = engine.statistics.stats_for(binding)
        assert after.row_count == before + 1


class TestSimulations:
    def _profiles(self, setup, query):
        left = gather_statistics(setup.platform, query.left)
        right = gather_statistics(setup.platform, query.right)
        return (_profile(left), _profile(right)), _join_selectivity(left, right)

    def test_hrjn_depth_grows_with_k(self, shared_setup):
        profiles, sel = self._profiles(shared_setup, q1(1))
        shallow, _ = _simulate_hrjn(profiles, q1(1).function, 1, (8, 16), sel)
        deep, _ = _simulate_hrjn(profiles, q1(1).function, 50, (8, 16), sel)
        assert sum(deep) > sum(shallow)

    def test_hrjn_depth_bounded_by_relation_size(self, shared_setup):
        profiles, sel = self._profiles(shared_setup, q1(1))
        consumed, _ = _simulate_hrjn(
            profiles, q1(1).function, 10 ** 9, (64, 64), sel
        )
        assert consumed[0] <= profiles[0].total
        assert consumed[1] <= profiles[1].total

    def test_bfhm_buckets_grow_with_k(self, shared_setup):
        profiles, sel = self._profiles(shared_setup, q1(1))
        small = _simulate_bfhm(profiles, q1(1).function, 1, 1000, sel)
        large = _simulate_bfhm(profiles, q1(1).function, 50, 1000, sel)
        assert large.buckets_fetched > small.buckets_fetched
        assert sum(large.reverse_rows) > sum(small.reverse_rows)

    def test_bfhm_simulation_replays_rounds(self, shared_setup):
        """The symbolic cascade reports per-round fetch/row increments
        that sum to the run totals."""
        profiles, sel = self._profiles(shared_setup, q2(1))
        sim = _simulate_bfhm(profiles, q2(1).function, 20, 1000, sel)
        assert sim.rounds and sim.rounds[0].round == 0
        assert sim.repair_rounds == len(sim.rounds) - 1
        assert sim.buckets_fetched == sum(
            len(entry.fetched[0]) + len(entry.fetched[1])
            for entry in sim.rounds
        )
        for side in (0, 1):
            assert sim.reverse_rows[side] == pytest.approx(
                sum(entry.reverse_rows[side] for entry in sim.rounds)
            )
        assert sim.purge_bound is None or sim.purge_bound > 0.0

    def test_golomb_estimate_grows_sublinearly_in_m(self):
        small = _golomb_blob_bytes(100, 1000)
        large = _golomb_blob_bytes(100, 100000)
        assert large > small
        assert large < small * 3  # log growth, not linear


class TestPlanner:
    def test_plan_ranks_all_factories(self, shared_setup):
        plan = shared_setup.engine.plan(q1(10))
        assert [e.algorithm for e in plan.estimates][0] in ("ISL", "BFHM")
        assert len(plan.estimates) == 6
        assert plan.objective == "time"
        times = [e.time_s for e in plan.estimates]
        assert times == sorted(times)

    def test_mr_baselines_priced_above_coordinators(self, shared_setup):
        """Job startup alone (12 s on EC2) dwarfs interactive budgets."""
        plan = shared_setup.engine.plan(q1(10))
        coordinator = min(plan.estimate("isl").time_s, plan.estimate("bfhm").time_s)
        for name in ("hive", "pig", "ijlmr", "drjn"):
            assert plan.estimate(name).time_s > coordinator, name

    def test_hive_worst_on_network(self, shared_setup):
        """No early projection: Hive ships complete rows everywhere."""
        plan = shared_setup.engine.plan(q1(10), objective="network")
        worst = plan.estimates[-1]
        assert worst.algorithm == "HIVE"

    def test_bfhm_cheapest_on_dollars(self, shared_setup):
        """Fig. 7(c)/(f): BFHM's surgical reads win the dollar metric."""
        plan = shared_setup.engine.plan(q1(10), objective="dollars")
        assert plan.chosen == "bfhm"

    def test_objective_changes_ranking_attribute(self, shared_setup):
        plan = shared_setup.engine.plan(q2(5), objective="network")
        nets = [e.network_bytes for e in plan.estimates]
        assert nets == sorted(nets)

    def test_unknown_objective_rejected(self, shared_setup):
        with pytest.raises(PlanningError):
            shared_setup.engine.plan(q1(1), objective="karma")

    def test_estimates_carry_breakdowns_and_notes(self, shared_setup):
        plan = shared_setup.engine.plan(q1(10))
        for estimate in plan.estimates:
            assert isinstance(estimate, CostEstimate)
            assert estimate.breakdown, estimate.algorithm
            assert estimate.time_s == pytest.approx(
                sum(estimate.breakdown.values())
            )
            assert estimate.notes

    def test_subset_of_algorithms(self, shared_setup):
        plan = shared_setup.engine.plan(q1(10), algorithms=["isl", "hive"])
        assert {e.algorithm for e in plan.estimates} == {"ISL", "HIVE"}
