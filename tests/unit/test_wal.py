"""Sequence-numbered WAL substrate: sequences, checkpoints, accounting.

:class:`~repro.store.wal.SequencedLog` is the durability substrate for
both the per-region cell log and the async-maintenance mutation log, so
its sequence/checkpoint invariants are load-bearing for crash recovery:
``entries_after(checkpoint)`` must be exactly the replay set, checkpoints
must be monotonic, and ``byte_size`` must stay exact under any
interleaving of appends, flushes, truncations, and family drops.
"""

from __future__ import annotations

import pytest

from repro.errors import WALError
from repro.store.cell import Cell
from repro.store.wal import SequencedLog, WriteAheadLog


def _cell(row, ts, family="d", value=b"v", delete=False):
    return Cell(row, family, "q", value, ts, delete)


class TestSequencedLog:
    def test_sequences_start_at_one_and_increase(self):
        log = SequencedLog()
        assert log.last_sequence == 0
        records = [log.append_payload(f"p{i}", 10) for i in range(5)]
        assert [r.sequence for r in records] == [1, 2, 3, 4, 5]
        assert log.last_sequence == 5
        assert log.byte_size == 50

    def test_sequences_survive_truncation(self):
        """Sequence numbers never repeat, even after the prefix is gone."""
        log = SequencedLog()
        for i in range(3):
            log.append_payload(i, 1)
        log.checkpoint(3)
        log.truncate_to()
        record = log.append_payload("next", 1)
        assert record.sequence == 4

    def test_checkpoint_defaults_to_whole_log(self):
        log = SequencedLog()
        for i in range(4):
            log.append_payload(i, 1)
        assert log.checkpoint() == 4
        assert log.checkpoint_sequence == 4

    def test_checkpoint_is_monotonic(self):
        log = SequencedLog()
        for i in range(4):
            log.append_payload(i, 1)
        log.checkpoint(3)
        with pytest.raises(WALError):
            log.checkpoint(2)
        assert log.checkpoint_sequence == 3

    def test_checkpoint_cannot_outrun_the_log(self):
        log = SequencedLog()
        log.append_payload("only", 1)
        with pytest.raises(WALError):
            log.checkpoint(2)

    def test_entries_after_is_the_replay_set(self):
        log = SequencedLog()
        for i in range(6):
            log.append_payload(f"p{i}", 1)
        log.checkpoint(4)
        replay = log.entries_after(log.checkpoint_sequence)
        assert [r.sequence for r in replay] == [5, 6]
        assert [r.payload for r in replay] == ["p4", "p5"]

    def test_truncate_to_reclaims_exactly_the_dropped_bytes(self):
        log = SequencedLog()
        sizes = [7, 11, 13, 17]
        for i, size in enumerate(sizes):
            log.append_payload(i, size)
        log.checkpoint(2)
        assert log.truncate_to() == 7 + 11
        assert log.byte_size == 13 + 17
        assert [r.sequence for r in log.records()] == [3, 4]

    def test_truncate_beyond_retained_is_safe(self):
        log = SequencedLog()
        log.append_payload("a", 5)
        log.checkpoint()
        log.truncate_to()
        assert log.truncate_to(99) == 0
        assert log.byte_size == 0


class TestWriteAheadLogAccounting:
    """Satellite: ``byte_size`` stays exact across interleaved
    append / flush / drop_family without ever rescanning the log."""

    def _exact_size(self, wal: WriteAheadLog) -> int:
        return sum(cell.serialized_size() for cell in wal.replay())

    def test_byte_size_exact_across_interleavings(self):
        wal = WriteAheadLog()
        script = [
            ("append", _cell("r1", 1, "d")),
            ("append", _cell("r2", 2, "x", b"longer-value")),
            ("flush", None),
            ("append", _cell("r3", 3, "d", b"abc")),
            ("drop", "x"),
            ("append", _cell("r4", 4, "x")),
            ("truncate", None),
            ("append", _cell("r5", 5, "d", b"zz", True)),
            ("drop", "d"),
            ("flush", None),
            ("truncate", None),
            ("append", _cell("r6", 6, "y")),
        ]
        for op, arg in script:
            if op == "append":
                wal.append(arg)
            elif op == "flush":
                wal.mark_flushed()
            elif op == "truncate":
                wal.truncate_flushed()
            else:
                wal.drop_family(arg)
            assert wal.byte_size == self._exact_size(wal), (op, arg)

    def test_drop_family_removes_only_that_family(self):
        wal = WriteAheadLog()
        wal.append(_cell("r1", 1, "d"))
        wal.append(_cell("r2", 2, "x"))
        wal.append(_cell("r3", 3, "d"))
        wal.drop_family("x")
        assert [c.row for c in wal.replay()] == ["r1", "r3"]
        assert wal.byte_size == self._exact_size(wal)

    def test_drop_family_preserves_flush_marker_semantics(self):
        """Dropping a family must not let truncate_flushed discard cells
        that were logged after the last flush."""
        wal = WriteAheadLog()
        wal.append(_cell("r1", 1, "d"))
        wal.append(_cell("r2", 2, "x"))
        wal.mark_flushed()
        wal.append(_cell("r3", 3, "d"))
        wal.drop_family("x")
        wal.truncate_flushed()
        assert [c.row for c in wal.replay()] == ["r3"]
        assert wal.byte_size == self._exact_size(wal)

    def test_mark_flushed_advances_checkpoint(self):
        wal = WriteAheadLog()
        wal.append(_cell("r1", 1))
        wal.append(_cell("r2", 2))
        wal.mark_flushed()
        assert wal.checkpoint_sequence == 2
        wal.truncate_flushed()
        wal.append(_cell("r3", 3))
        assert wal.last_sequence == 3
        assert [r.sequence for r in wal.entries_after(wal.checkpoint_sequence)] == [3]
