"""The MapReduce engine: phases, combiners, locality, accounting."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.errors import JobConfigurationError
from repro.mapreduce.job import (
    CollectOutput,
    HDFSInput,
    HDFSOutput,
    Job,
    TableInput,
    TableOutput,
    UnionTableInput,
)
from repro.platform import Platform
from repro.store.client import Put


@pytest.fixture()
def platform():
    platform = Platform(EC2_PROFILE)
    htable = platform.store.create_table("words", {"d"}, split_keys=["m"])
    docs = {
        "doc1": "the quick brown fox",
        "doc2": "the lazy dog",
        "zdoc3": "the quick dog",
    }
    for key, text in docs.items():
        htable.put(Put(key).add("d", "text", text.encode()))
    htable.flush()
    return platform


def wordcount_job(output=None) -> Job:
    def map_fn(_key, row, task):
        for word in row.value("d", "text").decode().split():
            task.emit(word, 1)
            task.bump("words_mapped")

    def reduce_fn(word, counts, task):
        task.emit(word, sum(counts))

    return Job(
        name="wordcount",
        input_source=TableInput.of("words", {"d"}),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        num_reducers=3,
        output=output or CollectOutput(),
    )


class TestWordCount:
    def test_correct_counts(self, platform):
        result = platform.runner.run(wordcount_job())
        counts = dict(result.collected)
        assert counts == {"the": 3, "quick": 2, "brown": 1, "fox": 1,
                          "lazy": 1, "dog": 2}

    def test_counters(self, platform):
        result = platform.runner.run(wordcount_job())
        assert result.counters["words_mapped"] == 10

    def test_task_counts(self, platform):
        result = platform.runner.run(wordcount_job())
        assert result.map_tasks >= 1  # one per non-empty region
        assert result.reduce_tasks >= 1

    def test_combiner_reduces_shuffle(self, platform):
        plain = platform.runner.run(wordcount_job())

        def combiner(word, counts, task):
            task.emit(word, sum(counts))

        job = wordcount_job()
        job.combiner_fn = combiner
        combined = platform.runner.run(job)
        assert dict(combined.collected) == dict(plain.collected)
        assert combined.shuffle_bytes <= plain.shuffle_bytes


class TestJobValidation:
    def test_zero_reducers_rejected(self, platform):
        with pytest.raises(JobConfigurationError):
            Job("bad", TableInput.of("words"), lambda *a: None, num_reducers=0)

    def test_combiner_without_reducer_rejected(self, platform):
        with pytest.raises(JobConfigurationError):
            Job("bad", TableInput.of("words"), lambda *a: None,
                combiner_fn=lambda *a: None)


class TestMapOnly:
    def test_map_only_table_output(self, platform):
        def map_fn(key, row, task):
            put = Put(key.upper())
            put.add("d", "copy", row.value("d", "text"))
            task.emit(put.row, put)

        platform.store.create_table("copies", {"d"})
        job = Job("copy", TableInput.of("words"), map_fn,
                  output=TableOutput("copies"))
        platform.runner.run(job)
        copies = list(platform.store.backing("copies").all_rows())
        assert len(copies) == 3
        assert copies[0].row == "DOC1"

    def test_map_finish_hook_and_state(self, platform):
        def map_fn(_key, _row, task):
            task.state["rows"] = task.state.get("rows", 0) + 1

        def map_finish(task):
            task.emit("rows_in_split", task.state["rows"])

        job = Job("finisher", TableInput.of("words"), map_fn,
                  map_finish_fn=map_finish)
        result = platform.runner.run(job)
        assert sum(v for _, v in result.collected) == 3


class TestInputs:
    def test_hdfs_input(self, platform):
        platform.hdfs.write_file("nums", [[i] for i in range(10)])

        def map_fn(_index, record, task):
            task.emit("sum", record[0])

        def reduce_fn(_key, values, task):
            task.emit("total", sum(values))

        job = Job("sum", HDFSInput("nums"), map_fn, reduce_fn, num_reducers=1)
        result = platform.runner.run(job)
        assert result.collected == [("total", 45)]

    def test_union_input_tags_sources(self, platform):
        other = platform.store.create_table("words2", {"d"})
        other.put(Put("x").add("d", "text", b"hello"))
        other.flush()

        def map_fn(_key, tagged, task):
            table_name, _row = tagged
            task.emit(table_name, 1)

        def reduce_fn(table_name, ones, task):
            task.emit(table_name, sum(ones))

        job = Job("tagcount", UnionTableInput.of("words", "words2"),
                  map_fn, reduce_fn, num_reducers=1)
        counts = dict(platform.runner.run(job).collected)
        assert counts == {"words": 3, "words2": 1}


class TestAccounting:
    def test_job_startup_dominates_empty_job(self, platform):
        before = platform.metrics.snapshot()
        platform.runner.run(wordcount_job())
        delta = platform.metrics.snapshot() - before
        assert delta.sim_time_s >= platform.cost_model.mr_job_startup_s

    def test_table_scan_charges_kv_reads(self, platform):
        before = platform.metrics.snapshot()
        platform.runner.run(wordcount_job())
        delta = platform.metrics.snapshot() - before
        assert delta.kv_reads == 3  # one cell per doc

    def test_hdfs_input_charges_no_kv_reads(self, platform):
        platform.hdfs.write_file("f", [[1], [2]])
        platform.reset_metrics()
        job = Job("noop", HDFSInput("f"), lambda *a: None)
        platform.runner.run(job)
        assert platform.metrics.kv_reads == 0

    def test_hdfs_output_written(self, platform):
        job = wordcount_job(output=HDFSOutput("out"))
        platform.runner.run(job)
        words = {record[0] for record in platform.hdfs.read_file("out")}
        assert "the" in words

    def test_reducer_memory_tracked(self, platform):
        platform.runner.run(wordcount_job())
        assert platform.metrics.counters.get("reducer_peak_bytes", 0) > 0
