"""The benchmark harness and report formatting."""

import pytest

from repro.bench.harness import SeriesPoint, build_setup, run_point, run_series
from repro.bench.reporting import format_recall, format_series, format_table
from repro.cluster.costmodel import EC2_PROFILE
from repro.tpch.queries import q1


@pytest.fixture(scope="module")
def setup():
    return build_setup(EC2_PROFILE, micro_scale=0.05, seed=3,
                       prebuild=["isl"], prebuild_query=q1(1))


class TestHarness:
    def test_build_setup_loads_and_prebuilds(self, setup):
        assert setup.platform.store.has_table("lineitem")
        assert setup.platform.store.has_table("isl_idx")
        assert setup.data.table_counts["part"] >= 2

    def test_ground_truth_sorted(self, setup):
        truth = setup.ground_truth(q1(5), 5)
        scores = [t.score for t in truth]
        assert scores == sorted(scores, reverse=True)

    def test_run_point(self, setup):
        point = run_point(setup, q1(3), "isl")
        assert point.algorithm == "ISL"
        assert point.k == 3
        assert point.recall == 1.0
        assert point.time_s > 0
        assert point.dollars == pytest.approx(point.kv_reads * 0.01 / 50)

    def test_run_series_shape(self, setup):
        series = run_series(setup, q1, [1, 5], ["isl"])
        assert list(series) == ["isl"]
        assert [p.k for p in series["isl"]] == [1, 5]

    def test_algorithm_kwargs_flow_through(self):
        custom = build_setup(EC2_PROFILE, micro_scale=0.05, seed=3,
                             isl={"batch_rows": 17})
        assert custom.engine.algorithm("isl").batch_rows == 17


class TestReporting:
    def _points(self):
        return {
            "isl": [SeriesPoint("ISL", 1, 0.5, 100, 10, 0.002, 1.0),
                    SeriesPoint("ISL", 10, 1.5, 300, 30, 0.006, 1.0)],
            "bfhm": [SeriesPoint("BFHM", 1, 0.2, 50, 5, 0.001, 1.0),
                     SeriesPoint("BFHM", 10, 0.9, 150, 15, 0.003, 0.9)],
        }

    def test_format_table_alignment(self):
        text = format_table("T", ["r1"], ["c1", "c2"], [["10", "2000"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "c1" in lines[1] and "c2" in lines[1]
        assert "2000" in lines[3]

    def test_format_series_rows_are_ks(self):
        text = format_series("panel", self._points(), lambda p: p.time_s)
        assert "k=1" in text and "k=10" in text
        assert "isl" in text and "bfhm" in text
        assert "0.5" in text

    def test_format_series_scientific_for_big_values(self):
        points = {"a": [SeriesPoint("A", 1, 123456.0, 0, 0, 0.0, 1.0)]}
        text = format_series("p", points, lambda p: p.time_s)
        assert "e+05" in text

    def test_format_recall_reports_minimum(self):
        text = format_recall(self._points())
        assert "isl: min recall 1.000" in text
        assert "bfhm: min recall 0.900" in text

    def test_zero_formatting(self):
        points = {"a": [SeriesPoint("A", 1, 0.0, 0, 0, 0.0, 1.0)]}
        text = format_series("p", points, lambda p: p.time_s)
        assert " 0" in text
