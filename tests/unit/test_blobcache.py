"""Decoded-blob cache: memoization, copy semantics, LRU bounds."""

from __future__ import annotations

from repro.core.bfhm.blobcache import DecodedBlobCache, blob_cache, decode_cached
from repro.core.bfhm.bucket import encode_blob
from repro.sketches.hybrid import HybridBloomFilter


def _blob_bytes(items: "list[str]", m_bits: int = 1000) -> bytes:
    bucket_filter = HybridBloomFilter(m_bits)
    for item in items:
        bucket_filter.insert(item)
    return encode_blob(bucket_filter.to_blob())


class TestDecodedBlobCache:
    def test_hit_returns_equal_filter(self):
        cache = DecodedBlobCache()
        raw = _blob_bytes(["a", "b", "c", "c"])
        first = cache.decode(raw)
        second = cache.decode(raw)
        assert (cache.misses, cache.hits) == (1, 1)
        assert second.counters == first.counters
        assert second.item_count == first.item_count
        assert second.bit_count == first.bit_count

    def test_mutating_a_result_does_not_poison_the_cache(self):
        cache = DecodedBlobCache()
        raw = _blob_bytes(["a", "b"])
        first = cache.decode(raw)
        first.insert("zzz")  # update replay mutates its copy
        first.remove("a")
        second = cache.decode(raw)
        assert second.item_count == 2
        assert second.counters != first.counters

    def test_distinct_payloads_are_distinct_entries(self):
        cache = DecodedBlobCache()
        raw_a = _blob_bytes(["a"])
        raw_b = _blob_bytes(["a", "b"])
        assert cache.decode(raw_a).item_count == 1
        assert cache.decode(raw_b).item_count == 2
        assert cache.misses == 2 and len(cache) == 2

    def test_lru_eviction_bounds_size(self):
        cache = DecodedBlobCache(capacity=2)
        raws = [_blob_bytes([f"item{i}"]) for i in range(3)]
        for raw in raws:
            cache.decode(raw)
        assert len(cache) == 2
        cache.decode(raws[0])  # evicted -> decoded again
        assert cache.misses == 4

    def test_clear(self):
        cache = DecodedBlobCache()
        cache.decode(_blob_bytes(["x"]))
        cache.clear()
        assert len(cache) == 0

    def test_shared_instance_used_by_decode_cached(self):
        raw = _blob_bytes(["shared", "entry"])
        blob_cache.clear()
        before = blob_cache.misses
        decoded = decode_cached(raw)
        assert decoded.item_count == 2
        assert blob_cache.misses == before + 1
