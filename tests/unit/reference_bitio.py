"""The seed bit-at-a-time Golomb bit I/O, kept verbatim as a test oracle.

The production coder (:mod:`repro.sketches.bitio`) was rewritten to work on
machine words; the wire format is frozen (blob sizes drive the paper's
bandwidth accounting), so the property tests in
``test_golomb_golden.py`` assert that the fast coder emits byte-identical
streams to this reference implementation.
"""

from __future__ import annotations

from repro.errors import BitstreamError


class ReferenceBitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0:
            raise BitstreamError(f"negative bit width: {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        if value < 0:
            raise BitstreamError(f"cannot unary-encode negative {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        result = bytearray(self._buffer)
        if self._filled:
            result.append(self._current << (8 - self._filled))
        return bytes(result)


class ReferenceBitReader:
    """Reads bits most-significant-first from a byte buffer."""

    def __init__(self, data: bytes, bit_count: "int | None" = None) -> None:
        self._data = data
        self._limit = len(data) * 8 if bit_count is None else bit_count
        if self._limit > len(data) * 8:
            raise BitstreamError(
                f"bit_count {self._limit} exceeds buffer of {len(data)} bytes"
            )
        self._position = 0

    @property
    def remaining(self) -> int:
        return self._limit - self._position

    def read_bit(self) -> int:
        if self._position >= self._limit:
            raise BitstreamError("read past end of bit stream")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count


def reference_golomb_encode(values: "list[int]", parameter: int) -> tuple[bytes, int]:
    """The seed Golomb encoder, bit for bit."""
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    writer = ReferenceBitWriter()
    for value in values:
        if value < 0:
            raise BitstreamError(f"cannot Golomb-encode negative value {value}")
        quotient, remainder = divmod(value, parameter)
        writer.write_unary(quotient)
        if parameter == 1:
            continue
        width = parameter.bit_length()
        cutoff = (1 << width) - parameter
        if remainder < cutoff:
            writer.write_bits(remainder, width - 1)
        else:
            writer.write_bits(remainder + cutoff, width)
    return writer.getvalue(), writer.bit_count


def reference_golomb_decode(
    payload: bytes, bit_count: int, count: int, parameter: int
) -> list[int]:
    """The seed Golomb decoder, bit for bit."""
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    reader = ReferenceBitReader(payload, bit_count)
    values = []
    for _ in range(count):
        quotient = reader.read_unary()
        if parameter == 1:
            values.append(quotient)
            continue
        width = parameter.bit_length()
        cutoff = (1 << width) - parameter
        remainder = reader.read_bits(width - 1)
        if remainder >= cutoff:
            remainder = (remainder << 1) | reader.read_bit()
            remainder -= cutoff
        values.append(quotient * parameter + remainder)
    return values
