"""Streaming read path: lazy merge scans, early termination, and
tombstone/version semantics under the streaming resolver."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimCluster
from repro.store.cell import Cell
from repro.store.client import Delete, Get, Put, Scan
from repro.store.memtable import MemTable
from repro.store.region import Region
from repro.store.sstable import SSTable


@pytest.fixture()
def node():
    return SimCluster(EC2_PROFILE).workers[0]


class CountingSSTable(SSTable):
    """SSTable that counts cells pulled through its lazy range iterator."""

    def __init__(self, sstable: SSTable) -> None:
        super().__init__(sstable.cells(), presorted=True)
        self.cells_pulled = 0

    def iter_range(self, start_row, stop_row):
        for cell in super().iter_range(start_row, stop_row):
            self.cells_pulled += 1
            yield cell


def _instrument(region: Region) -> "list[CountingSSTable]":
    region.sstables = [CountingSSTable(s) for s in region.sstables]
    return region.sstables


class TestLazyMerge:
    def test_limited_scan_touches_o_of_k_cells(self, empty_platform):
        """A Scan(limit=k) over N >> k rows pulls O(k * caching) cells from
        the SSTable iterators, not O(N)."""
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put_batch(
            [Put(f"r{i:05d}").add("d", "q", b"x") for i in range(2000)]
        )
        htable.flush()
        counters = [
            counter
            for region in htable.table.regions
            for counter in _instrument(region)
        ]
        rows = list(htable.scan(Scan(limit=5, caching=10)))
        assert [r.row for r in rows] == [f"r{i:05d}" for i in range(5)]
        pulled = sum(counter.cells_pulled for counter in counters)
        # one 10-row RPC batch plus merge/group lookahead — nowhere near 2000
        assert pulled <= 40

    def test_full_scan_still_sees_everything(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put_batch([Put(f"r{i}").add("d", "q", b"x") for i in range(50)])
        htable.flush()
        assert len(htable.scan_all()) == 50

    def test_scan_merges_memtable_and_sstables_in_key_order(self, node):
        region = Region(None, None, node)
        region.apply(Cell("rB", "d", "q", b"1", 1))
        region.flush()
        region.apply(Cell("rD", "d", "q", b"2", 2))
        region.flush()
        region.apply(Cell("rA", "d", "q", b"3", 3))  # stays in the memtable
        region.apply(Cell("rC", "d", "q", b"4", 4))
        assert [r.row for r in region.scan_rows()] == ["rA", "rB", "rC", "rD"]

    def test_open_scan_is_stable_under_concurrent_writes(self, node):
        """An open scan is a snapshot: a mid-scan out-of-order write plus a
        reader forcing the memtable's lazy re-sort must not shift, skip, or
        duplicate rows under the live iterator."""
        region = Region(None, None, node)
        for i in range(10):
            region.apply(Cell(f"r{i:02d}", "d", "q", b"x", i + 1))
        scan = region.scan_rows()
        seen = [next(scan).row for _ in range(3)]
        region.apply(Cell("r00", "d", "q", b"new", 100))  # out of order
        list(region.memtable.cells())  # triggers the re-sort
        seen += [r.row for r in scan]
        assert seen == [f"r{i:02d}" for i in range(10)]

    def test_memtable_point_get_index(self):
        memtable = MemTable()
        memtable.add(Cell("b", "d", "q", b"1", 1))
        memtable.add(Cell("a", "d", "q", b"2", 2))
        list(memtable.cells())  # force the lazy sort
        memtable.add(Cell("b", "d", "q2", b"3", 3))
        assert len(memtable.cells_for_row("b")) == 2
        assert memtable.cells_for_row("missing") == []
        assert [c.row for c in memtable.iter_range("b", None)] == ["b", "b"]


class TestStreamingResolver:
    def test_delete_masks_same_batch_put(self, empty_platform):
        """A tombstone with the same timestamp as a put in the same memtable
        batch masks it, for scans and point gets alike."""
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r1", timestamp=5).add("d", "q", b"v"))
        htable.delete(Delete("r1", "d", "q", timestamp=5))
        assert htable.scan_all() == []
        assert htable.get(Get("r1")).empty

    def test_versions_split_across_memtable_and_two_sstables(self, node):
        """The newest version wins no matter which source holds it."""
        region = Region(None, None, node)
        region.apply(Cell("r1", "d", "q", b"v1", 1))
        region.apply(Cell("r2", "d", "q", b"w3", 3))
        region.flush()
        region.apply(Cell("r1", "d", "q", b"v2", 2))
        region.apply(Cell("r2", "d", "q", b"w1", 1))
        region.flush()
        assert len(region.sstables) == 2
        region.apply(Cell("r1", "d", "q", b"v3", 3))  # newest, in the memtable
        region.apply(Cell("r2", "d", "q", b"w2", 2))

        rows = list(region.scan_rows())
        assert [(r.row, r.value("d", "q")) for r in rows] == [
            ("r1", b"v3"),
            ("r2", b"w3"),  # newest lives in the *oldest* segment
        ]
        assert region.read_row("r1").value("d", "q") == b"v3"
        assert region.read_row("r2").value("d", "q") == b"w3"

    def test_tombstone_in_memtable_masks_sstable_versions(self, node):
        region = Region(None, None, node)
        region.apply(Cell("r1", "d", "q", b"old", 1))
        region.flush()
        region.apply(Cell("r1", "d", "q", b"", 2, True))
        assert list(region.scan_rows()) == []
        assert region.read_row("r1").empty

    def test_limited_scan_over_tombstoned_rows(self, empty_platform):
        """limit counts *visible* rows; fully-deleted rows are skipped and
        never shipped as empty results."""
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put_batch(
            [Put(f"r{i:02d}").add("d", "q", b"x") for i in range(20)]
        )
        for i in (1, 3):
            htable.delete(Delete(f"r{i:02d}"))
        htable.flush()
        rows = list(htable.scan(Scan(limit=5, caching=4)))
        assert [r.row for r in rows] == ["r00", "r02", "r04", "r05", "r06"]
        assert all(not r.empty for r in rows)


class TestCellSizeCache:
    def test_cached_size_matches_and_keeps_equality(self):
        a = Cell("row", "fam", "q", b"value", 7)
        b = Cell("row", "fam", "q", b"value", 7)
        expected = len(b"rowfamqvalue") + 9
        assert a.serialized_size() == expected
        assert a.serialized_size() == expected  # cached second call
        assert a == b and hash(a) == hash(b)  # cache is not part of identity
