"""Aggregate score functions: values, monotonicity, registry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.functions import (
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
    resolve_function,
)
from repro.errors import QueryError

scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestValues:
    def test_sum(self):
        assert SumFunction()(0.25, 0.5) == pytest.approx(0.75)

    def test_product(self):
        assert ProductFunction()(0.5, 0.4) == pytest.approx(0.2)

    def test_weighted_sum(self):
        fn = WeightedSumFunction([2.0, 0.5])
        assert fn(0.1, 0.4) == pytest.approx(0.4)

    def test_max_min(self):
        assert MaxFunction()(0.3, 0.7) == 0.7
        assert MinFunction()(0.3, 0.7) == 0.3

    def test_sum_is_precise(self):
        # fsum avoids the float accumulation drift of naive addition
        values = [0.1] * 10
        assert SumFunction().combine(values) == pytest.approx(1.0, abs=1e-15)


class TestValidation:
    def test_product_rejects_negative(self):
        with pytest.raises(QueryError):
            ProductFunction()(-0.1, 0.5)

    def test_weighted_sum_rejects_negative_weights(self):
        with pytest.raises(QueryError):
            WeightedSumFunction([-1.0, 1.0])

    def test_weighted_sum_arity_checked(self):
        with pytest.raises(QueryError):
            WeightedSumFunction([1.0, 1.0])(0.5)


class TestRegistry:
    @pytest.mark.parametrize(
        "name, expected",
        [("sum", SumFunction), ("+", SumFunction), ("product", ProductFunction),
         ("*", ProductFunction), ("max", MaxFunction), ("min", MinFunction),
         ("SUM", SumFunction)],
    )
    def test_resolve_by_name(self, name, expected):
        assert isinstance(resolve_function(name), expected)

    def test_resolve_passthrough(self):
        fn = WeightedSumFunction([1.0, 2.0])
        assert resolve_function(fn) is fn

    def test_resolve_unknown(self):
        with pytest.raises(QueryError):
            resolve_function("median")


class TestMonotonicity:
    """The rank-join correctness precondition (§1.1)."""

    @given(scores, scores, scores, scores)
    def test_sum_monotone(self, a, b, da, db):
        low = (min(a, b), min(a, b))
        high = (low[0] + da / 2, low[1] + db / 2)
        assert SumFunction().check_monotone_pair(low, high)

    @given(scores, scores, scores, scores)
    def test_product_monotone(self, a1, a2, b1, b2):
        low = (min(a1, b1), min(a2, b2))
        high = (max(a1, b1), max(a2, b2))
        assert ProductFunction().check_monotone_pair(low, high)

    @given(scores, scores, scores, scores,
           st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=0.0, max_value=10.0))
    def test_weighted_sum_monotone(self, a1, a2, b1, b2, w1, w2):
        fn = WeightedSumFunction([w1, w2])
        low = (min(a1, b1), min(a2, b2))
        high = (max(a1, b1), max(a2, b2))
        assert fn.check_monotone_pair(low, high)

    @given(scores, scores)
    def test_upper_bound_dominates(self, a, b):
        fn = SumFunction()
        assert fn.upper_bound([a, None], [1.0, 1.0]) >= fn(a, b) - 1e-12

    def test_nonmonotone_counterexample_detected(self):
        class Bad(SumFunction):
            def combine(self, values):
                return -math.fsum(values)

        assert not Bad().check_monotone_pair((0.1, 0.1), (0.5, 0.5))
