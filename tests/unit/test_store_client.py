"""The store client: tables, puts/gets/deletes/scans, metering."""

import pytest

from repro.common.serialization import encode_float
from repro.errors import (
    ColumnFamilyNotFoundError,
    InvalidMutationError,
    TableExistsError,
    TableNotFoundError,
)
from repro.store.client import Delete, Get, Put, Scan
from repro.store.filters import ScoreThresholdFilter


class TestAdmin:
    def test_create_and_lookup(self, empty_platform):
        empty_platform.store.create_table("t", {"d"})
        assert empty_platform.store.has_table("t")
        assert empty_platform.store.table_names() == ["t"]

    def test_duplicate_create_rejected(self, empty_platform):
        empty_platform.store.create_table("t", {"d"})
        with pytest.raises(TableExistsError):
            empty_platform.store.create_table("t", {"d"})

    def test_missing_table_rejected(self, empty_platform):
        with pytest.raises(TableNotFoundError):
            empty_platform.store.table("ghost")

    def test_drop(self, empty_platform):
        empty_platform.store.create_table("t", {"d"})
        empty_platform.store.drop_table("t")
        assert not empty_platform.store.has_table("t")
        with pytest.raises(TableNotFoundError):
            empty_platform.store.drop_table("t")

    def test_presplit_regions(self, empty_platform):
        table = empty_platform.store.create_table("t", {"d"}, split_keys=["m"])
        assert len(table.table.regions) == 2


class TestMutations:
    def test_put_then_get(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("row1").add("d", "col", b"value"))
        assert htable.get(Get("row1")).value("d", "col") == b"value"

    def test_unknown_family_rejected(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        with pytest.raises(ColumnFamilyNotFoundError):
            htable.put(Put("row1").add("nope", "col", b"v"))

    def test_empty_put_rejected(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        with pytest.raises(InvalidMutationError):
            htable.put(Put("row1"))
        with pytest.raises(InvalidMutationError):
            htable.put(Put("").add("d", "c", b"v"))

    def test_column_delete(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r").add("d", "a", b"1").add("d", "b", b"2"))
        htable.delete(Delete("r", family="d", qualifier="a"))
        row = htable.get(Get("r"))
        assert row.value("d", "a") is None
        assert row.value("d", "b") == b"2"

    def test_row_delete(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r").add("d", "a", b"1").add("d", "b", b"2"))
        htable.delete(Delete("r"))
        assert htable.get(Get("r")).empty

    def test_delete_of_absent_row_is_noop(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.delete(Delete("ghost"))
        assert htable.get(Get("ghost")).empty

    def test_drop_family_purges_data_everywhere(self, empty_platform):
        """Schema-level family drop removes the family's cells from the
        memtable, flushed segments, and the WAL, leaving other families
        intact (the cascade's temp-index cleanup relies on this)."""
        htable = empty_platform.store.create_table("t", {"a", "b"})
        htable.put(Put("r1").add("a", "c", b"1").add("b", "c", b"2"))
        htable.flush()  # family data reaches an SSTable
        htable.put(Put("r2").add("a", "c", b"3").add("b", "c", b"4"))

        backing = empty_platform.store.backing("t")
        backing.drop_family("a")
        assert backing.families == {"b"}
        for row in backing.all_rows():
            assert not [cell for cell in row if cell.family == "a"]
        assert htable.get(Get("r1")).value("b", "c") == b"2"
        assert htable.get(Get("r2")).value("b", "c") == b"4"
        for region in backing.regions:
            assert not [
                cell for cell in region.wal.replay() if cell.family == "a"
            ]
            # byte accounting must track the surviving entries exactly
            assert region.wal.byte_size == sum(
                cell.serialized_size() for cell in region.wal.replay()
            )

    def test_later_timestamp_wins_regardless_of_arrival(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r", timestamp=10).add("d", "c", b"new"))
        htable.put(Put("r", timestamp=5).add("d", "c", b"stale-retry"))
        assert htable.get(Get("r")).value("d", "c") == b"new"


class TestMetering:
    def test_get_charges_rpc_and_reads(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r").add("d", "c", b"value"))
        before = empty_platform.metrics.snapshot()
        htable.get(Get("r"))
        delta = empty_platform.metrics.snapshot() - before
        assert delta.kv_reads == 1
        assert delta.network_bytes > 0
        assert delta.sim_time_s > 0

    def test_put_charges_replicated_write(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        before = empty_platform.metrics.snapshot()
        htable.put(Put("r").add("d", "c", b"x" * 100))
        delta = empty_platform.metrics.snapshot() - before
        # payload + (replication - 1) WAL copies
        assert delta.network_bytes >= 100 * empty_platform.cost_model.hdfs_replication

    def test_multi_get_amortizes_rpcs(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"})
        for i in range(10):
            htable.put(Put(f"r{i}").add("d", "c", b"v"))
        empty_platform.reset_metrics()
        htable.multi_get([Get(f"r{i}") for i in range(10)])
        batched = empty_platform.metrics.snapshot()
        empty_platform.reset_metrics()
        for i in range(10):
            htable.get(Get(f"r{i}"))
        individual = empty_platform.metrics.snapshot()
        assert batched.kv_reads == individual.kv_reads == 10
        assert batched.sim_time_s < individual.sim_time_s

    def test_whole_row_delete_charges_the_read_before_delete(self, empty_platform):
        """A whole-row Delete must discover the row's columns with a point
        read; that read used to go through the unmetered backing table,
        billing delete-heavy workloads nothing for it.  It is charged
        exactly like a Get of the same row."""
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r").add("d", "a", b"1").add("d", "b", b"2"))
        htable.put(Put("probe").add("d", "a", b"1").add("d", "b", b"2"))
        before = empty_platform.metrics.snapshot()
        htable.get(Get("probe"))
        get_delta = empty_platform.metrics.snapshot() - before

        before = empty_platform.metrics.snapshot()
        htable.delete(Delete("r"))
        delete_delta = empty_platform.metrics.snapshot() - before
        # the read-before-delete bills the same KV reads as the point get
        assert delete_delta.kv_reads == get_delta.kv_reads == 2
        # and the delete's bill covers the read plus the tombstone write
        assert delete_delta.network_bytes > get_delta.network_bytes
        assert delete_delta.sim_time_s > get_delta.sim_time_s

    def test_column_delete_stays_read_free(self, empty_platform):
        """Targeted column deletes know their cell already — no read."""
        htable = empty_platform.store.create_table("t", {"d"})
        htable.put(Put("r").add("d", "a", b"1"))
        before = empty_platform.metrics.snapshot()
        htable.delete(Delete("r", family="d", qualifier="a"))
        delta = empty_platform.metrics.snapshot() - before
        assert delta.kv_reads == 0

    def test_multi_get_charges_request_overhead_per_region(self, empty_platform):
        """One RPC per region touched means one request header per region —
        a single flat header contradicted the latency accounting (which
        already scaled with regions touched)."""
        from repro.store.client import REQUEST_OVERHEAD_BYTES

        htable = empty_platform.store.create_table("t", {"d"}, split_keys=["r5"])
        for i in range(10):
            htable.put(Put(f"r{i}").add("d", "c", b"v"))
        gets = [Get(f"r{i}") for i in range(10)]
        backing = empty_platform.store.backing("t")
        response = sum(backing.read_row(f"r{i}").serialized_size() for i in range(10))
        keys = sum(len(f"r{i}") for i in range(10))

        empty_platform.reset_metrics()
        htable.multi_get(gets)
        delta = empty_platform.metrics.snapshot()
        # the batch spans both regions: two request headers, not one
        assert delta.network_bytes == 2 * REQUEST_OVERHEAD_BYTES + keys + response


class TestScans:
    @pytest.fixture()
    def loaded(self, empty_platform):
        htable = empty_platform.store.create_table("t", {"d"}, split_keys=["r5"])
        for i in range(10):
            htable.put(
                Put(f"r{i}")
                .add("d", "c", b"v")
                .add("d", "score", encode_float(i / 10))
            )
        return htable

    def test_full_scan_sorted(self, loaded):
        rows = [r.row for r in loaded.scan(Scan())]
        assert rows == [f"r{i}" for i in range(10)]

    def test_range_scan(self, loaded):
        rows = [r.row for r in loaded.scan(Scan(start_row="r3", stop_row="r7"))]
        assert rows == ["r3", "r4", "r5", "r6"]

    def test_limit(self, loaded):
        rows = list(loaded.scan(Scan(limit=3)))
        assert len(rows) == 3

    def test_filter_reads_everything_ships_matches(self, loaded):
        platform = loaded.store.ctx
        loaded.store.ctx.metrics.reset()
        scan = Scan(filter=ScoreThresholdFilter("d", "score", 0.8))
        rows = list(loaded.scan(scan))
        assert [r.row for r in rows] == ["r8", "r9"]
        # dollar cost counts every cell scanned, not just the two shipped
        assert platform.metrics.kv_reads == 20

    def test_small_caching_means_more_rpcs_and_more_time(self, loaded):
        ctx = loaded.store.ctx
        ctx.metrics.reset()
        list(loaded.scan(Scan(caching=1)))
        small_batches = ctx.metrics.snapshot()
        ctx.metrics.reset()
        list(loaded.scan(Scan(caching=100)))
        big_batches = ctx.metrics.snapshot()
        assert small_batches.sim_time_s > big_batches.sim_time_s
        assert small_batches.kv_reads == big_batches.kv_reads
