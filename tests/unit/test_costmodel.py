"""Cost model, metrics, and the simulation context."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE, LC_PROFILE, ec2_profile_with_nodes
from repro.cluster.metrics import MetricsCollector
from repro.cluster.simulation import SimCluster, SimContext


class TestCostModel:
    def test_profiles_are_distinct_environments(self):
        assert EC2_PROFILE.rpc_latency_s > LC_PROFILE.rpc_latency_s
        assert EC2_PROFILE.worker_nodes != LC_PROFILE.worker_nodes
        assert LC_PROFILE.network_bandwidth_bps > EC2_PROFILE.network_bandwidth_bps

    def test_time_formulas_scale_linearly(self):
        assert EC2_PROFILE.network_time(2000) == pytest.approx(
            2 * EC2_PROFILE.network_time(1000)
        )
        assert EC2_PROFILE.disk_seq_time(0) == 0.0
        assert EC2_PROFILE.cpu_time(0) == 0.0

    def test_data_scale_dilates_time_not_counters(self):
        import dataclasses

        base = dataclasses.replace(EC2_PROFILE, data_scale=1.0)
        dilated = dataclasses.replace(EC2_PROFILE, data_scale=100.0)
        assert dilated.network_time(1000) == pytest.approx(
            100 * base.network_time(1000)
        )

    def test_dollars_follow_dynamodb_pricing(self):
        # $0.01 per 50 read units (§7.1 footnote)
        assert EC2_PROFILE.dollars(50) == pytest.approx(0.01)

    def test_resized_ec2_profile(self):
        resized = ec2_profile_with_nodes(2)
        assert resized.worker_nodes == 2
        assert resized.data_scale == EC2_PROFILE.data_scale
        assert resized.rpc_latency_s == EC2_PROFILE.rpc_latency_s


class TestMetricsCollector:
    def test_accumulation_and_snapshot(self):
        metrics = MetricsCollector()
        metrics.advance_time(1.5)
        metrics.add_network(100)
        metrics.add_kv_reads(50)
        snapshot = metrics.snapshot()
        assert snapshot.sim_time_s == 1.5
        assert snapshot.network_bytes == 100
        assert snapshot.kv_reads == 50
        assert snapshot.dollars == pytest.approx(0.01)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().advance_time(-1)

    def test_snapshot_difference(self):
        metrics = MetricsCollector()
        metrics.add_network(10)
        before = metrics.snapshot()
        metrics.add_network(90)
        metrics.advance_time(2.0)
        delta = metrics.snapshot() - before
        assert delta.network_bytes == 90
        assert delta.sim_time_s == 2.0

    def test_named_counters_and_peaks(self):
        metrics = MetricsCollector()
        metrics.bump("rounds")
        metrics.bump("rounds", 2)
        metrics.record_peak("peak", 10)
        metrics.record_peak("peak", 5)
        assert metrics.counters["rounds"] == 3
        assert metrics.counters["peak"] == 10

    def test_reset(self):
        metrics = MetricsCollector()
        metrics.add_network(5)
        metrics.reset()
        assert metrics.snapshot().network_bytes == 0


class TestSimContext:
    def test_timestamps_monotonic(self):
        ctx = SimContext.with_profile(EC2_PROFILE)
        stamps = [ctx.next_timestamp() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_cluster_topology(self):
        cluster = SimCluster(EC2_PROFILE)
        assert len(cluster.workers) == EC2_PROFILE.worker_nodes
        assert cluster.master.is_master
        assert cluster.total_task_slots == (
            EC2_PROFILE.worker_nodes * EC2_PROFILE.task_slots_per_node
        )

    def test_round_robin_placement(self):
        cluster = SimCluster(EC2_PROFILE)
        first_cycle = [cluster.next_worker().node_id
                       for _ in range(len(cluster.workers))]
        assert sorted(first_cycle) == [n.node_id for n in cluster.workers]

    def test_charge_rpc(self):
        ctx = SimContext.with_profile(EC2_PROFILE)
        ctx.charge_rpc(100, 900)
        assert ctx.metrics.network_bytes == 1000
        assert ctx.metrics.sim_time_s >= EC2_PROFILE.rpc_latency_s

    def test_charge_server_read(self):
        ctx = SimContext.with_profile(EC2_PROFILE)
        ctx.charge_server_read(1000, 10, sequential=False)
        assert ctx.metrics.kv_reads == 10
        assert ctx.metrics.disk_bytes_read == 1000
        assert ctx.metrics.sim_time_s >= EC2_PROFILE.disk_random_read_s
