"""Bloom filter variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CounterUnderflowError, SketchError
from repro.sketches.bloom import (
    BloomFilter,
    CountingBloomFilter,
    SingleHashBloomFilter,
    optimal_bit_count,
    optimal_hash_count,
    single_hash_bit_count,
)

keys = st.text(min_size=1, max_size=16)


class TestClassicBloom:
    @given(st.sets(keys, max_size=100))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter.with_capacity(max(len(items), 1), 0.01)
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.with_capacity(1000, 0.01)
        for i in range(1000):
            bloom.add(f"member-{i}")
        false_positives = sum(
            1 for i in range(10_000) if f"absent-{i}" in bloom
        )
        assert false_positives / 10_000 < 0.03

    def test_sizing_validation(self):
        with pytest.raises(SketchError):
            optimal_bit_count(0, 0.01)
        with pytest.raises(SketchError):
            optimal_bit_count(10, 1.5)
        with pytest.raises(SketchError):
            BloomFilter(0, 1)
        with pytest.raises(SketchError):
            BloomFilter(8, 0)

    def test_optimal_hash_count(self):
        assert optimal_hash_count(1000, 100) == pytest.approx(7, abs=1)
        assert optimal_hash_count(10, 0) == 1

    def test_predicted_fp_rate_grows_with_load(self):
        bloom = BloomFilter(128, 2)
        assert bloom.false_positive_rate() == 0.0
        for i in range(100):
            bloom.add(str(i))
        assert bloom.false_positive_rate() > 0.1

    def test_set_bit_count_and_size(self):
        bloom = BloomFilter(64, 2)
        bloom.add("x")
        assert 1 <= bloom.set_bit_count() <= 2
        assert bloom.serialized_size() == 8


class TestCountingBloom:
    @given(st.lists(keys, max_size=60))
    @settings(max_examples=50)
    def test_add_then_remove_all_empties(self, items):
        counting = CountingBloomFilter(256, 2)
        for item in items:
            counting.add(item)
        for item in items:
            counting.remove(item)
        assert counting.counters == {}
        assert counting.item_count == 0

    def test_remove_absent_raises(self):
        counting = CountingBloomFilter(64)
        with pytest.raises(CounterUnderflowError):
            counting.remove("ghost")

    def test_count_is_upper_bound(self):
        # Lemma 1's engine: counters only ever overestimate multiplicity
        counting = CountingBloomFilter(8, 1)  # tiny => collisions certain
        for _ in range(3):
            counting.add("a")
        counting.add("b")
        assert counting.count("a") >= 3

    def test_membership(self):
        counting = CountingBloomFilter(256, 2)
        counting.add("present")
        assert "present" in counting

    def test_duplicates_tracked(self):
        counting = CountingBloomFilter(256, 1)
        counting.add("x")
        counting.add("x")
        assert counting.count("x") == 2
        counting.remove("x")
        assert "x" in counting


class TestSingleHash:
    def test_position_is_stable_and_single(self):
        single = SingleHashBloomFilter(512)
        position = single.position("alpha")
        assert single.add("alpha") == [position]

    def test_probe_probability_bounds(self):
        single = SingleHashBloomFilter(100)
        assert single.probe_probability() == 0.0
        for i in range(50):
            single.add(str(i))
        assert 0.0 < single.probe_probability() < 1.0

    def test_single_hash_sizing_formula(self):
        # m = -n / ln(1 - p); for n=100, p=0.05 => ~1950 bits
        assert single_hash_bit_count(100, 0.05) == pytest.approx(1950, abs=2)
        with pytest.raises(SketchError):
            single_hash_bit_count(0, 0.05)
