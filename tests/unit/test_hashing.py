"""Deterministic hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketches.hashing import double_hashes, fnv1a_64, hash_to_range, mix64


class TestFNV:
    def test_known_vector(self):
        # standard FNV-1a test vectors
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_str_and_bytes_agree(self):
        assert fnv1a_64("hello") == fnv1a_64(b"hello")

    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert fnv1a_64(data) == fnv1a_64(data)

    @given(st.binary(max_size=64))
    def test_fits_64_bits(self, data):
        assert 0 <= fnv1a_64(data) < 2**64


class TestMix:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_mix_fits_64_bits(self, value):
        assert 0 <= mix64(value) < 2**64

    def test_mix_changes_value(self):
        assert mix64(1) != 1


class TestHashToRange:
    @given(st.text(max_size=32), st.integers(min_value=1, max_value=10_000))
    def test_in_range(self, item, modulus):
        assert 0 <= hash_to_range(item, modulus) < modulus

    def test_seed_changes_stream(self):
        values = {hash_to_range("x", 1_000_000, seed=s) for s in range(20)}
        assert len(values) > 15  # streams are decorrelated

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            hash_to_range("x", 0)

    def test_roughly_uniform(self):
        buckets = [0] * 10
        for i in range(5000):
            buckets[hash_to_range(f"key-{i}", 10)] += 1
        assert min(buckets) > 350  # each bucket near 500


class TestDoubleHashes:
    @given(st.text(max_size=32), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=1000))
    def test_count_and_range(self, item, count, modulus):
        values = double_hashes(item, count, modulus)
        assert len(values) == count
        assert all(0 <= v < modulus for v in values)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            double_hashes("x", 0, 10)
