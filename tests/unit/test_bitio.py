"""Bit-level I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.sketches.bitio import BitReader, BitWriter


class TestBitRoundTrips:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_single_bits(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue(), writer.bit_count)
        assert [reader.read_bit() for _ in bits] == bits

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20),
                              st.integers(min_value=21, max_value=24)),
                    max_size=50))
    def test_fixed_width_values(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue(), writer.bit_count)
        assert [reader.read_bits(w) for _, w in pairs] == [v for v, _ in pairs]

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=50))
    def test_unary(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue(), writer.bit_count)
        assert [reader.read_unary() for _ in values] == values


class TestErrors:
    def test_read_past_end(self):
        reader = BitReader(b"", 0)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_bit_count_exceeding_buffer(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\x00", 9)

    def test_negative_unary(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_unary(-1)

    def test_negative_width(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(1, -2)


class TestAccounting:
    def test_bit_count_tracks_writes(self):
        writer = BitWriter()
        writer.write_bits(5, 3)
        writer.write_unary(2)  # 3 more bits
        assert writer.bit_count == 6

    def test_padding_to_byte_boundary(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"

    def test_remaining(self):
        reader = BitReader(b"\xff", 8)
        reader.read_bits(3)
        assert reader.remaining == 5
