"""MemTable, SSTable, WAL, and compaction."""

from repro.store.cell import Cell
from repro.store.memtable import MemTable
from repro.store.sstable import SSTable, compact
from repro.store.wal import WriteAheadLog


def cell(row, ts=1, value=b"v", delete=False, qualifier="q"):
    return Cell(row, "d", qualifier, value, ts, delete)


class TestMemTable:
    def test_starts_empty(self):
        memtable = MemTable()
        assert memtable.empty
        assert memtable.byte_size == 0

    def test_add_and_iterate_sorted(self):
        memtable = MemTable()
        memtable.add_all([cell("b"), cell("a")])
        assert [c.row for c in memtable.cells()] == ["a", "b"]

    def test_cells_for_row(self):
        memtable = MemTable()
        memtable.add_all([cell("a"), cell("b"), cell("a", ts=2)])
        assert len(memtable.cells_for_row("a")) == 2

    def test_drain_clears(self):
        memtable = MemTable()
        memtable.add(cell("x"))
        drained = memtable.drain()
        assert len(drained) == 1
        assert memtable.empty
        assert memtable.byte_size == 0

    def test_byte_size_tracks_content(self):
        memtable = MemTable()
        memtable.add(cell("row", value=b"12345"))
        assert memtable.byte_size == cell("row", value=b"12345").serialized_size()


class TestSSTable:
    def test_sorted_and_searchable(self):
        sstable = SSTable([cell("c"), cell("a"), cell("b")])
        assert sstable.first_row == "a"
        assert sstable.last_row == "c"
        assert [c.row for c in sstable.cells_for_row("b")] == ["b"]

    def test_range_query(self):
        sstable = SSTable([cell(f"r{i}") for i in range(10)])
        rows = [c.row for c in sstable.cells_in_range("r3", "r6")]
        assert rows == ["r3", "r4", "r5"]

    def test_open_ranges(self):
        sstable = SSTable([cell("a"), cell("b")])
        assert len(sstable.cells_in_range(None, None)) == 2
        assert [c.row for c in sstable.cells_in_range("b", None)] == ["b"]

    def test_empty(self):
        sstable = SSTable([])
        assert sstable.empty
        assert sstable.first_row is None


class TestCompaction:
    def test_major_compaction_drops_tombstoned_data(self):
        first = SSTable([cell("a", ts=1, value=b"old")])
        second = SSTable([cell("a", ts=2, delete=True)])
        merged = compact([first, second], drop_deletes=True)
        assert len(merged) == 0

    def test_major_compaction_keeps_latest(self):
        first = SSTable([cell("a", ts=1, value=b"old")])
        second = SSTable([cell("a", ts=2, value=b"new")])
        merged = compact([first, second])
        assert [c.value for c in merged.cells()] == [b"new"]

    def test_minor_compaction_preserves_raw_cells(self):
        first = SSTable([cell("a", ts=1)])
        second = SSTable([cell("a", ts=2, delete=True)])
        merged = compact([first, second], drop_deletes=False)
        assert len(merged) == 2


class TestWAL:
    def test_append_and_replay(self):
        wal = WriteAheadLog()
        wal.append(cell("a"))
        wal.append(cell("b"))
        assert [c.row for c in wal.replay()] == ["a", "b"]

    def test_truncate_after_flush(self):
        wal = WriteAheadLog()
        wal.append(cell("a"))
        wal.mark_flushed()
        wal.append(cell("b"))
        reclaimed = wal.truncate_flushed()
        assert reclaimed > 0
        assert [c.row for c in wal.replay()] == ["b"]

    def test_byte_accounting(self):
        wal = WriteAheadLog()
        size = wal.append(cell("a", value=b"123"))
        assert wal.byte_size == size
        wal.mark_flushed()
        wal.truncate_flushed()
        assert wal.byte_size == 0
