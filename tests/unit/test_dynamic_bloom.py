"""Dynamic Bloom filters (the §8 future-work extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CounterUnderflowError, SketchError
from repro.sketches.bloom import SingleHashBloomFilter
from repro.sketches.dynamic import DynamicBloomFilter, static_overload_fp_rate

keys = st.text(min_size=1, max_size=12)


class TestBasics:
    def test_invalid_config(self):
        with pytest.raises(SketchError):
            DynamicBloomFilter(0, 10)
        with pytest.raises(SketchError):
            DynamicBloomFilter(10, 0)

    @given(st.lists(keys, max_size=120))
    @settings(max_examples=40)
    def test_no_false_negatives(self, items):
        dynamic = DynamicBloomFilter(256, 16)
        for item in items:
            dynamic.insert(item)
        assert all(item in dynamic for item in items)

    def test_slices_open_at_capacity(self):
        dynamic = DynamicBloomFilter(256, 10)
        for i in range(35):
            dynamic.insert(f"item-{i}")
        assert len(dynamic.slices) == 4  # 10+10+10+5
        assert dynamic.item_count == 35

    def test_count_sums_across_slices(self):
        dynamic = DynamicBloomFilter(1 << 16, 2)
        for _ in range(5):
            dynamic.insert("dup")
        assert dynamic.count("dup") >= 5

    def test_position_stable_across_slices(self):
        dynamic = DynamicBloomFilter(512, 1)
        first = dynamic.insert("x")
        second = dynamic.insert("x")  # lands in a new slice
        assert first == second == dynamic.position("x")

    def test_remove(self):
        dynamic = DynamicBloomFilter(1 << 16, 2)
        dynamic.insert("a")
        dynamic.insert("a")
        dynamic.remove("a")
        assert "a" in dynamic
        dynamic.remove("a")
        with pytest.raises(CounterUnderflowError):
            dynamic.remove("a")


class TestFPBehaviour:
    def test_per_slice_load_stays_bounded_under_overload(self):
        """A static filter sized for 50 items degrades 8x past its target
        at 10x load; every dynamic slice stays at its design point."""
        design, actual, target = 50, 500, 0.05
        static_fp = static_overload_fp_rate(design, actual, target)
        dynamic = DynamicBloomFilter.for_fp_rate(design, target)
        for i in range(actual):
            dynamic.insert(f"item-{i}")
        assert static_fp > 4 * target  # static probe probability blows up
        per_slice = max(s.probe_probability() for s in dynamic.slices)
        assert per_slice == pytest.approx(target, rel=0.3)
        # the chain's *effective* rate matches a same-total-bits static
        # filter — the win is per-slice boundedness + incremental updates,
        # not a smaller union FP (single-hash filters compose linearly)
        assert dynamic.effective_fp_rate() == pytest.approx(static_fp, rel=0.15)

    def test_incremental_writeback_touches_one_slice(self):
        """The §8 time/bandwidth motivation: an online insert dirties only
        the active slice, so the write-back blob is a fraction of the full
        bucket blob a static filter would re-ship."""
        dynamic = DynamicBloomFilter.for_fp_rate(50, 0.05)
        for i in range(500):
            dynamic.insert(f"item-{i}")
        before = [bytes(blob.positions_payload) for blob in dynamic.to_blobs()]
        dynamic.insert("one-more")
        after = dynamic.to_blobs()
        changed = [
            i for i, blob in enumerate(after)
            if i >= len(before) or bytes(blob.positions_payload) != before[i]
        ]
        assert len(changed) == 1  # only the active slice
        changed_bytes = after[changed[0]].serialized_size()
        total_bytes = sum(blob.serialized_size() for blob in after)
        assert changed_bytes < total_bytes / 3

    def test_empty_filter_fp_zero(self):
        assert DynamicBloomFilter(64, 4).effective_fp_rate() == 0.0


class TestJoins:
    def test_cardinality_against_dynamic(self):
        a = DynamicBloomFilter(1 << 16, 4)
        b = DynamicBloomFilter(1 << 16, 4)
        for _ in range(6):
            a.insert("v")  # spans 2 slices
        for _ in range(3):
            b.insert("v")
        assert a.join_cardinality(b) == pytest.approx(18, rel=0.05)

    def test_intersect_with_static_filter(self):
        dynamic = DynamicBloomFilter(4096, 2)
        static = SingleHashBloomFilter(4096)
        dynamic.insert("x")
        dynamic.insert("y")
        dynamic.insert("z")  # second slice
        static.add("z")
        from repro.sketches.hybrid import HybridBloomFilter

        hybrid = HybridBloomFilter(4096)
        hybrid.insert("z")
        assert dynamic.position("z") in dynamic.intersect_positions(hybrid)

    def test_width_mismatch_rejected(self):
        with pytest.raises(SketchError):
            DynamicBloomFilter(64, 2).intersect_positions(
                DynamicBloomFilter(128, 2)
            )

    def test_disjoint_estimate_zero(self):
        a = DynamicBloomFilter(1 << 20, 4)
        b = DynamicBloomFilter(1 << 20, 4)
        a.insert("only-a")
        b.insert("only-b")
        assert a.join_cardinality(b) == 0.0


class TestSerialization:
    @given(st.lists(keys, max_size=60))
    @settings(max_examples=30)
    def test_blob_roundtrip(self, items):
        dynamic = DynamicBloomFilter(2048, 8)
        for item in items:
            dynamic.insert(item)
        restored = DynamicBloomFilter.from_blobs(dynamic.to_blobs(), 8)
        assert restored.merged_counters() == dynamic.merged_counters()
        assert restored.item_count == dynamic.item_count

    def test_empty_blob_list_rejected(self):
        with pytest.raises(SketchError):
            DynamicBloomFilter.from_blobs([], 8)

    def test_size_grows_with_slices(self):
        small = DynamicBloomFilter(2048, 100)
        large = DynamicBloomFilter(2048, 10)
        for i in range(80):
            small.insert(f"i{i}")
            large.insert(f"i{i}")
        assert len(large.slices) > len(small.slices)
        assert large.serialized_size() >= small.serialized_size()
