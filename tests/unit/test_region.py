"""Regions: routing, flushes, compaction, splits."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimCluster
from repro.errors import RegionError
from repro.store.cell import Cell
from repro.store.region import Region


@pytest.fixture()
def node():
    return SimCluster(EC2_PROFILE).workers[0]


def cell(row, ts=1, value=b"v", delete=False):
    return Cell(row, "d", "q", value, ts, delete)


class TestRanges:
    def test_contains(self, node):
        region = Region("b", "d", node)
        assert region.contains("b")
        assert region.contains("c")
        assert not region.contains("a")
        assert not region.contains("d")

    def test_unbounded(self, node):
        region = Region(None, None, node)
        assert region.contains("anything")

    def test_empty_range_rejected(self, node):
        with pytest.raises(RegionError):
            Region("z", "a", node)

    def test_out_of_range_write_rejected(self, node):
        region = Region("b", "d", node)
        with pytest.raises(RegionError):
            region.apply(cell("z"))


class TestReadWrite:
    def test_read_your_writes(self, node):
        region = Region(None, None, node)
        region.apply(cell("r1", value=b"hello"))
        assert region.read_row("r1").value("d", "q") == b"hello"

    def test_read_after_flush(self, node):
        region = Region(None, None, node)
        region.apply(cell("r1", value=b"persisted"))
        region.flush()
        assert region.memtable.empty
        assert region.read_row("r1").value("d", "q") == b"persisted"

    def test_read_merges_memtable_and_sstables(self, node):
        region = Region(None, None, node)
        region.apply(cell("r1", ts=1, value=b"old"))
        region.flush()
        region.apply(cell("r1", ts=2, value=b"new"))
        assert region.read_row("r1").value("d", "q") == b"new"

    def test_delete_via_tombstone(self, node):
        region = Region(None, None, node)
        region.apply(cell("r1", ts=1))
        region.flush()
        region.apply(cell("r1", ts=2, delete=True))
        assert region.read_row("r1").empty

    def test_scan_respects_region_and_request_bounds(self, node):
        region = Region("r2", "r8", node)
        for i in range(2, 8):
            region.apply(cell(f"r{i}"))
        rows = list(region.scan_rows("r0", "r5"))
        assert [r.row for r in rows] == ["r2", "r3", "r4"]

    def test_family_filter(self, node):
        region = Region(None, None, node)
        region.apply(Cell("r1", "d", "q", b"v", 1))
        rows = list(region.scan_rows(families={"other"}))
        assert rows == []


class TestLifecycle:
    def test_auto_flush_at_threshold(self, node):
        region = Region(None, None, node, flush_threshold=200)
        for i in range(20):
            region.apply(cell(f"r{i}", value=b"x" * 20))
        assert region.disk_size > 0

    def test_compaction_trigger_bounds_sstables(self, node):
        region = Region(None, None, node, flush_threshold=10**9,
                        compaction_trigger=3)
        for batch in range(6):
            region.apply(cell(f"r{batch}"))
            region.flush()
        assert len(region.sstables) < 3

    def test_major_compaction_purges_deletes(self, node):
        region = Region(None, None, node)
        region.apply(cell("r1", ts=1))
        region.apply(cell("r1", ts=2, delete=True))
        region.flush()
        region.compact(major=True)
        assert region.raw_cell_count() == 0


class TestSplit:
    def test_split_partitions_rows(self, node):
        cluster = SimCluster(EC2_PROFILE)
        region = Region(None, None, node)
        for i in range(10):
            region.apply(cell(f"r{i}"))
        split_key = region.midpoint_key()
        assert split_key is not None
        lower, upper = region.split(split_key, cluster.workers[1])
        assert lower.stop_key == split_key == upper.start_key
        total = len(list(lower.scan_rows())) + len(list(upper.scan_rows()))
        assert total == 10
        assert all(r.row < split_key for r in lower.scan_rows())
        assert all(r.row >= split_key for r in upper.scan_rows())

    def test_single_row_cannot_split(self, node):
        region = Region(None, None, node)
        region.apply(cell("only"))
        assert region.midpoint_key() is None

    def test_split_key_outside_range_rejected(self, node):
        cluster = SimCluster(EC2_PROFILE)
        region = Region("b", "d", node)
        with pytest.raises(RegionError):
            region.split("z", cluster.workers[0])

    def test_single_distinct_key_many_cells_cannot_split(self, node):
        # skew regression: thousands of cells all on one row key used to be
        # a split candidate pool of exactly one entry — midpoint_key must
        # refuse rather than propose the first key (empty lower daughter)
        region = Region(None, None, node)
        for ts in range(1, 200):
            region.apply(Cell("hot", "d", f"q{ts}", b"v", ts))
        region.flush()
        assert region.midpoint_key() is None

    def test_skewed_split_leaves_both_daughters_nonempty(self, node):
        # 99% of rows share one hot key; the midpoint must still carve off
        # a non-empty lower daughter holding the cold keys
        cluster = SimCluster(EC2_PROFILE)
        region = Region(None, None, node)
        region.apply(cell("aaa-cold"))
        for ts in range(1, 100):
            region.apply(Cell("zzz-hot", "d", f"q{ts}", b"v", ts))
        split_key = region.midpoint_key()
        assert split_key is not None
        lower, upper = region.split(split_key, cluster.workers[1])
        assert len(list(lower.scan_rows())) >= 1
        assert len(list(upper.scan_rows())) >= 1

    def test_midpoint_never_first_key(self, node):
        # property sweep over adversarial small populations: whatever key
        # midpoint_key proposes must strictly exceed the smallest stored
        # key, or be None — the split contract sends rows < split_key left
        for keys in (
            ["a", "a", "b"],
            ["a", "b", "b", "b", "b"],
            ["x"] * 7 + ["y"],
            [f"k{i:03d}" for i in range(5)],
        ):
            region = Region(None, None, node)
            for ts, key in enumerate(keys, start=1):
                region.apply(Cell(key, "d", "q", b"v", ts))
            candidate = region.midpoint_key()
            if candidate is not None:
                assert candidate > min(keys)
