"""Tests for the runtime lock-order tracker (``repro.common.locktrace``).

The unit tests drive :class:`TracedLock` directly with fabricated
creation sites (the ``install()`` site filter only traces locks created
under ``src/repro``), so edge recording and cycle detection are exercised
deterministically.  The integration test installs the tracer for real and
runs a small concurrent serving workload, asserting the acquisition-order
graph stays acyclic — the same check the autouse conftest fixture applies
to every stress/chaos test.
"""

from __future__ import annotations

import threading

from repro.common.locktrace import LockTracer, TracedLock

SITE_A = ("src/repro/fake/a.py", 10)
SITE_B = ("src/repro/fake/b.py", 20)
SITE_C = ("src/repro/fake/c.py", 30)


def _traced(tracer: LockTracer, site: "tuple[str, int]") -> TracedLock:
    return TracedLock(threading.Lock(), tracer, site)


class TestEdgeRecording:
    def test_nested_acquisition_records_edge(self):
        tracer = LockTracer()
        outer, inner = _traced(tracer, SITE_A), _traced(tracer, SITE_B)
        with outer:
            with inner:
                pass
        assert tracer.edges() == [(SITE_A, SITE_B)]
        assert tracer.find_cycle() is None

    def test_sequential_acquisition_records_nothing(self):
        tracer = LockTracer()
        first, second = _traced(tracer, SITE_A), _traced(tracer, SITE_B)
        with first:
            pass
        with second:
            pass
        assert tracer.edges() == []

    def test_same_site_reentry_is_not_an_edge(self):
        tracer = LockTracer()
        sibling_one = _traced(tracer, SITE_A)
        sibling_two = _traced(tracer, SITE_A)
        with sibling_one:
            with sibling_two:
                pass
        assert tracer.edges() == []

    def test_non_lifo_release_keeps_stack_consistent(self):
        tracer = LockTracer()
        first, second = _traced(tracer, SITE_A), _traced(tracer, SITE_B)
        third = _traced(tracer, SITE_C)
        first.acquire()
        second.acquire()
        first.release()  # release the outer lock first
        third.acquire()
        third.release()
        second.release()
        # B was held (A was not) when C was acquired
        assert tracer.edges() == [(SITE_A, SITE_B), (SITE_B, SITE_C)]


class TestCycleDetection:
    def test_opposite_orders_from_two_threads_form_a_cycle(self):
        tracer = LockTracer()
        lock_a, lock_b = _traced(tracer, SITE_A), _traced(tracer, SITE_B)
        with lock_a:
            with lock_b:
                pass

        def reversed_order() -> None:
            with lock_b:
                with lock_a:
                    pass

        worker = threading.Thread(target=reversed_order)
        worker.start()
        worker.join()

        cycle = tracer.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {SITE_A, SITE_B}
        report = tracer.explain(cycle)
        assert "cycle" in report and "a.py:10" in report and "b.py:20" in report

    def test_three_lock_ring_is_detected(self):
        tracer = LockTracer()
        locks = {
            site: _traced(tracer, site) for site in (SITE_A, SITE_B, SITE_C)
        }
        ring = [(SITE_A, SITE_B), (SITE_B, SITE_C), (SITE_C, SITE_A)]

        def take(order: "tuple[tuple[str, int], tuple[str, int]]") -> None:
            with locks[order[0]]:
                with locks[order[1]]:
                    pass

        for order in ring:
            worker = threading.Thread(target=take, args=(order,))
            worker.start()
            worker.join()

        cycle = tracer.find_cycle()
        assert cycle is not None
        assert set(cycle) == {SITE_A, SITE_B, SITE_C}

    def test_acyclic_graph_reports_clean(self):
        tracer = LockTracer()
        assert tracer.find_cycle() is None
        assert "acyclic" in tracer.explain(None)


class TestInstallation:
    def test_install_wraps_only_repro_created_locks(self):
        from repro.serving.plan_cache import PlanCache

        class _Catalog:
            epoch = 0

            def table_version(self, name: str) -> int:
                return 0

        tracer = LockTracer()
        with tracer:
            cache = PlanCache(_Catalog(), capacity=4)
            local = threading.Lock()  # created in tests/ -> passthrough
        assert isinstance(cache._lock, TracedLock)
        assert not isinstance(local, TracedLock)
        # the factories are restored after uninstall
        assert threading.Lock is type(local) or threading.Lock().__class__ is type(local)

    def test_traced_plan_cache_still_works_and_stays_acyclic(self):
        from repro.serving.plan_cache import PlanCache

        class _Catalog:
            epoch = 0

            def table_version(self, name: str) -> int:
                return 0

        tracer = LockTracer()
        with tracer:
            cache = PlanCache(_Catalog(), capacity=8)
        workers = []

        def churn(worker: int) -> None:
            for index in range(200):
                key = (worker * 7 + index) % 12
                if cache.lookup(key) is None:
                    cache.store(key, f"plan-{key}", ())
                cache.stats()

        for worker in range(4):
            thread = threading.Thread(target=churn, args=(worker,))
            workers.append(thread)
            thread.start()
        for thread in workers:
            thread.join()
        assert cache.hits + cache.misses == 4 * 200
        assert tracer.find_cycle() is None, tracer.explain(tracer.find_cycle())


class TestServingIntegration:
    def test_concurrent_server_run_has_acyclic_lock_graph(self):
        """A miniature of the stress suite's serving scenario, run under
        the tracer in tier-1: queries + maintenance + cache churn across
        the server's locks must keep the acquisition-order graph acyclic."""
        from repro.cluster.costmodel import EC2_PROFILE
        from repro.platform import Platform
        from repro.query.engine import RankJoinEngine
        from repro.serving import QueryServer
        from repro.tpch.generator import generate
        from repro.tpch.loader import load_tpch
        from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2

        tracer = LockTracer()
        with tracer:
            platform = Platform(EC2_PROFILE)
            load_tpch(platform.store, generate(micro_scale=0.05, seed=7))
            engine = RankJoinEngine(platform)
            engine.algorithm("isl").prepare(q1(1))
            engine.algorithm("isl").prepare(q2(1))
            server = QueryServer(platform, workers=4, max_pending=64)
            try:
                futures = [
                    server.submit(
                        (Q1_SQL if index % 2 == 0 else Q2_SQL).format(k=5),
                        "isl",
                    )
                    for index in range(12)
                ]
                for future in futures:
                    served = future.result(timeout=60)
                    assert served.error is None, served.error
                    assert served.result.tuples
            finally:
                server.close()
        assert tracer.find_cycle() is None, tracer.explain(tracer.find_cycle())
