"""Tier-1 enforcement of the typed core without a mypy dependency.

``make lint`` runs mypy against the strict allowlist in ``mypy.ini`` when
mypy is installed (CI always installs it; ``tools/run_mypy.py`` skips
gracefully elsewhere).  These tests keep the floor up in environments
without mypy: every typed-core module must have a complete annotation
surface (no bare defs) and every annotation must actually *resolve* —
``typing.get_type_hints`` imports and evaluates each one, so a renamed
class or a typo in a forward reference fails here, not in CI only.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import typing
from pathlib import Path

import pytest

#: keep in sync with the per-module strict blocks in mypy.ini
TYPED_CORE = [
    "repro.common.types",
    "repro.store.cell",
    "repro.query.spec",
    "repro.query.results",
    "repro.serving.plan_cache",
    "repro.maintenance.worker",
]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _module_path(name: str) -> Path:
    return REPO_ROOT / "src" / Path(*name.split(".")).with_suffix(".py")


@pytest.mark.parametrize("name", TYPED_CORE)
def test_every_def_is_fully_annotated(name: str) -> None:
    tree = ast.parse(_module_path(name).read_text())
    bare: "list[str]" = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.returns is None:
            bare.append(f"{node.name}:{node.lineno} (return)")
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
            + [a for a in (node.args.vararg, node.args.kwarg) if a]
        ):
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                bare.append(f"{node.name}:{node.lineno} ({arg.arg})")
    assert not bare, f"unannotated defs in {name}: {bare}"


@pytest.mark.parametrize("name", TYPED_CORE)
def test_every_annotation_resolves(name: str) -> None:
    module = importlib.import_module(name)
    typing.get_type_hints(module)
    for _, member in inspect.getmembers(module):
        if inspect.isfunction(member) and member.__module__ == name:
            typing.get_type_hints(member)
        elif inspect.isclass(member) and member.__module__ == name:
            typing.get_type_hints(member)
            for _, method in inspect.getmembers(member, inspect.isfunction):
                if method.__module__ == name:
                    typing.get_type_hints(method)


def test_mypy_allowlist_matches_typed_core() -> None:
    """mypy.ini's strict blocks and TYPED_CORE must not drift apart."""
    config = (REPO_ROOT / "mypy.ini").read_text()
    sections = {
        line.strip()[len("[mypy-"):-1]
        for line in config.splitlines()
        if line.strip().startswith("[mypy-")
    }
    assert sections == set(TYPED_CORE)


def test_run_mypy_is_gated() -> None:
    """The lint pipeline must not hard-require mypy at runtime."""
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "tools.run_mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    try:
        import mypy  # noqa: F401
    except ImportError:
        assert completed.returncode == 0
        assert "skipping" in completed.stdout
