"""repro-lint rule tests over the fixture corpus, plus the src gate.

Each ``<family>_bad.py`` fixture must produce *exactly* its expected
(rule, line) pairs — no more, no fewer — and each ``<family>_good.py``
twin must be clean, so both false negatives and false positives fail
here.  ``test_src_tree_is_lint_clean`` is the enforcement test: the lint
contract on ``src/repro`` holds at every commit.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.analyze import analyze_paths
from tools.analyze.rules import RULES

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = FIXTURES.parent.parent.parent

#: fixture file -> exact expected (rule_id, line) pairs, in location order
EXPECTED: "dict[str, list[tuple[str, int]]]" = {
    "locks_bad.py": [
        ("RL101", 13),
        ("RL102", 15),
        ("RL102", 19),
        ("RL102", 22),
    ],
    "determinism_bad.py": [
        ("RL201", 10),
        ("RL202", 11),
        ("RL202", 12),
        ("RL202", 13),
        ("RL203", 18),
        ("RL203", 20),
        ("RL203", 21),
    ],
    "metering_bad.py": [
        ("RL301", 8),
        ("RL301", 10),
        ("RL302", 15),
        ("RL302", 16),
        ("RL302", 17),
    ],
    "exceptions_bad.py": [
        ("RL401", 6),
        ("RL402", 8),
        ("RL401", 12),
        ("RL402", 16),
        ("RL403", 22),
    ],
    "pragmas_bad.py": [
        ("RL001", 8),
        ("RL002", 12),
    ],
}

GOOD_FIXTURES = [
    "locks_good.py",
    "determinism_good.py",
    "metering_good.py",
    "exceptions_good.py",
    "pragmas_good.py",
]


def _findings(name: str) -> "list[tuple[str, int]]":
    found = analyze_paths([FIXTURES / name])
    return [(finding.rule_id, finding.line) for finding in found]


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_bad_fixture_reports_exact_rule_ids_and_lines(name: str) -> None:
    assert _findings(name) == sorted(EXPECTED[name], key=lambda p: p[1])


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name: str) -> None:
    assert _findings(name) == []


def test_every_rule_family_is_covered_by_a_bad_fixture() -> None:
    """A rule in the catalog nobody can trip is dead weight — every rule
    ID must appear in at least one bad fixture's expectations."""
    covered = {rule_id for pairs in EXPECTED.values() for rule_id, _ in pairs}
    assert covered == set(RULES)


def test_src_tree_is_lint_clean() -> None:
    findings = analyze_paths([REPO_ROOT / "src" / "repro"])
    rendered = "\n".join(finding.render() for finding in findings)
    assert not findings, f"repro-lint findings on src/repro:\n{rendered}"


def test_cli_exit_codes_and_json() -> None:
    import json
    import subprocess
    import sys

    bad = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "--json",
         str(FIXTURES / "locks_bad.py")],
        cwd=REPO_ROOT, capture_output=True, text=True, check=False,
    )
    assert bad.returncode == 1
    payload = json.loads(bad.stdout)
    assert [(f["rule"], f["line"]) for f in payload] == EXPECTED["locks_bad.py"]

    clean = subprocess.run(
        [sys.executable, "-m", "tools.analyze", str(FIXTURES / "locks_good.py")],
        cwd=REPO_ROOT, capture_output=True, text=True, check=False,
    )
    assert clean.returncode == 0
    assert "clean" in clean.stdout

    rules = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "--list-rules"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=False,
    )
    assert rules.returncode == 0
    for rule_id in RULES:
        assert rule_id in rules.stdout
