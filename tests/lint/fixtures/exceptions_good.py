# lint: scope=metered
"""Exception-safe twins: with-statements, try/finally, cleanup helpers."""


def with_statement(lock, work):
    with lock:
        work()


def acquire_with_finally(lock, work):
    lock.acquire()
    try:
        work()
    finally:
        lock.release()


def temp_family_with_finally(store, work):
    store.create_table("tmp", {"f"})
    try:
        work("tmp")
    finally:
        store.drop_table("tmp")


def cleanup_scratch(store):
    # a cleanup-named function IS the discharge path
    store.drop_table("tmp")


class LockWrapper:
    def __init__(self, inner):
        self._inner = inner

    def acquire(self):
        # wrapper methods forward without their own try/finally
        self._inner.acquire()

    def release(self):
        self._inner.release()
