# Fixture corpus for the repro-lint rule tests.  Each <rule>_bad.py file
# carries deliberate violations whose exact (rule, line) pairs are
# asserted by tests/lint/test_rules.py; each <rule>_good.py file is the
# compliant twin and must lint clean.  These files are parsed, never
# imported or executed (keep them import-free of heavy modules anyway).
