"""Lock-discipline violations (RL101/RL102)."""

import threading


class LeakyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock

    def get(self, key):
        value = self._entries.get(key)  # line 13: RL101 unguarded read
        if value is not None:
            self.hits += 1  # line 15: RL102 unguarded write
        return value

    def put(self, key, value):
        self._entries[key] = value  # line 19: RL102 unguarded write

    def evict_all(self):
        self._entries.clear()  # line 22: RL102 mutator call is a write

    def size(self):
        with self._lock:
            return len(self._entries)  # locked: clean
