# lint: scope=metered
"""Compliant metering: the HTable client and collector APIs."""


def scan_metered(store, family, scan, get):
    htable = store.table("part")
    total = 0
    for row in htable.scan(scan):  # metered scan
        total += len(row)
    meta = htable.get(get)  # metered get
    return total, meta


def account(metrics):
    metrics.advance_time(0.25)
    metrics.add_kv_reads(10)
    metrics.bump("tuples", 99)
    metrics.set_counter("reducer_peak_bytes", 0.0)


def justified_raw_read(store, family):
    table = store.backing("part")
    return sum(  # size accounting below is documented as unmetered
        len(row)
        for row in table.all_rows(families={family})  # lint: disable=RL301 (fixture: documented unmetered size accounting)
    )
