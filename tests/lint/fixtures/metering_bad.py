# lint: scope=metered
"""Metering violations (RL301/RL302) in a metered query path."""


def scan_for_free(store, family):
    table = store.backing("part")
    total = 0
    for row in table.all_rows(families={family}):  # line 8: RL301
        total += len(row)
    meta = table.read_row("meta", families={family})  # line 10: RL301
    return total, meta


def cook_the_books(metrics):
    metrics.sim_time_s = 0.0  # line 15: RL302 raw metric store
    metrics.kv_reads += 10  # line 16: RL302 raw metric bump
    metrics.counters["tuples"] = 99  # line 17: RL302 raw counter store
