# lint: scope=simulated
"""A documented disable pragma suppresses its finding and is itself clean."""

import time


def measured_latency():
    return time.time()  # lint: disable=RL201 (fixture: real latency measurement outside the cost model)
