# lint: scope=src,simulated
"""Determinism violations (RL201/RL202/RL203) in a simulated-cost path."""

import os
import random
import time


def sample_cost():
    started = time.time()  # line 10: RL201 wall-clock
    jitter = random.random()  # line 11: RL202 unseeded randomness
    salt = os.urandom(8)  # line 12: RL202 os entropy
    generator = random.Random()  # line 13: RL202 zero-arg Random()
    return started, jitter, salt, generator


def fan_out(region_ids):
    for region_id in {str(r) for r in region_ids}:  # line 18: RL203 set comprehension
        yield region_id
    ordered = list({1, 2, 3})  # line 20: RL203 list(set literal)
    return ordered, [x for x in {1, 2, 3}]  # line 21: RL203 set literal
