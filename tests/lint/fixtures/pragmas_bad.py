# lint: scope=simulated
"""Pragma-hygiene violations (RL001/RL002)."""

import time


def undocumented_silence():
    return time.time()  # lint: disable=RL201


def unknown_rule():
    return 1  # lint: disable=RL999 (no such rule in the catalog)
