# lint: scope=src,metered
"""Exception-safety violations (RL401/RL402/RL403)."""


def bare_acquire(lock, work):
    lock.acquire()  # line 6: RL401 no try/finally follows
    work()
    lock.release()  # line 8: RL402 release outside finally


def handler_side_unlock(lock, work):
    lock.acquire()  # line 12: RL401 (the try that follows has no finally)
    try:
        work()
    except RuntimeError:
        lock.release()  # line 16: RL402 release outside finally


def leak_temp_family(store, work):
    store.create_table("tmp", {"f"})
    work("tmp")
    store.drop_table("tmp")  # line 22: RL403 skipped if work() raises
