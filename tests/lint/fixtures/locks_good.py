"""Compliant lock discipline: every access under the lock, a
writes-only snapshot structure, and a locked-helper pragma."""

import threading


class TidyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._bump()

    def _bump(self):  # lint: holds-lock(_lock)
        self.hits += 1


class SnapshotTable:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows = ()  # guarded-by: _lock (writes)

    def rows(self):
        return self._rows  # lock-free read of a rebound snapshot: clean

    def rebind(self, rows):
        with self._lock:
            self._rows = tuple(rows)
