# lint: scope=simulated
"""Deterministic twins of determinism_bad.py: simulated clocks, seeded
randomness, and sorted set iteration."""

import random


def sample_cost(ctx):
    started = ctx.sim_time_s  # the simulated clock, not the wall clock
    generator = random.Random(42)  # seeded: reproducible
    return started, generator.random()


def fan_out(region_ids):
    pending = {region_id for region_id in region_ids}
    for region_id in sorted(pending):  # sorted: order is total
        yield region_id
    return [x for x in sorted({1, 2, 3})]
