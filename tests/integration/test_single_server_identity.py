"""Single-server simulated metrics are pinned bit-for-bit.

The scatter/gather layer must leave the default (one region server)
configuration's fig7/8-style simulated metrics untouched — the PR-2/PR-5
methodology.  This suite replays a compact grid (Q1/Q2 x k x algorithm on
the shared EC2-profile setup) and compares every cell's simulated time,
network bytes, and KV reads against ``golden_single_server.json``,
captured on the commit *before* the scatter/gather layer landed.

Floats are compared exactly: JSON round-trips Python floats losslessly
(repr-shortest), so any drift — even one reordered floating-point add in a
charging path — fails here.

Regenerate (only when an intentional metering change lands, with the same
justification discipline as the Golomb golden vectors)::

    GOLDEN_SINGLE_SERVER_OUT=tests/integration/golden_single_server.json \
        python -m pytest tests/integration/test_single_server_identity.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.tpch.queries import q1, q2

GOLDEN_PATH = Path(__file__).parent / "golden_single_server.json"

#: the pinned grid — small enough to stay cheap in tier-1, wide enough to
#: cross every charging path the fan-out layer touches (batched scans for
#: ISL, point gets + multi-gets for BFHM, a full MapReduce job for IJLMR,
#: filtered scans + scratch tables for DRJN)
KS = [1, 10, 50]
ALGORITHMS = ["isl", "bfhm", "ijlmr", "drjn"]
QUERIES = [("Q1", q1), ("Q2", q2)]


@pytest.fixture(scope="module")
def pinned_setup():
    """A private setup, NOT the session-shared one.

    ``shared_setup`` accumulates deterministic-but-order-dependent state
    as other read-only tests execute queries against it (MapReduce
    placement cursors, timestamp counters), so grid metrics there depend
    on which tests ran first.  The golden is pinned against a fresh
    setup prepared exactly like ``shared_setup``'s construction.
    """
    setup = build_setup(EC2_PROFILE, micro_scale=0.2, seed=42)
    for name in ("ijlmr", "isl", "bfhm", "drjn"):
        setup.engine.algorithm(name).prepare(q1(1))
        setup.engine.algorithm(name).prepare(q2(1))
    return setup


def _run_grid(setup) -> "dict[str, dict[str, float]]":
    cells: "dict[str, dict[str, float]]" = {}
    for qname, factory in QUERIES:
        for k in KS:
            query = factory(k)
            for algorithm in ALGORITHMS:
                result = setup.engine.execute(query, algorithm=algorithm)
                metrics = result.metrics
                cells[f"{qname}_k{k}_{algorithm}"] = {
                    "time_s": metrics.sim_time_s,
                    "network_bytes": metrics.network_bytes,
                    "kv_reads": metrics.kv_reads,
                }
    return cells


def test_single_server_grid_is_bit_identical(pinned_setup):
    """Every grid cell's simulated metrics equal the pre-PR golden exactly."""
    cells = _run_grid(pinned_setup)

    out = os.environ.get("GOLDEN_SINGLE_SERVER_OUT")
    if out:
        with open(out, "w") as fh:
            json.dump(cells, fh, indent=1, sort_keys=True)
        pytest.skip(f"golden regenerated at {out}")

    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    assert set(cells) == set(golden)
    mismatches = []
    for name in sorted(golden):
        for metric, expected in golden[name].items():
            actual = cells[name][metric]
            if actual != expected:
                mismatches.append(f"{name}.{metric}: {expected!r} -> {actual!r}")
    assert not mismatches, (
        "single-server simulated metrics drifted from the pre-scatter "
        "golden:\n  " + "\n  ".join(mismatches)
    )
