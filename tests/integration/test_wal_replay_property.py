"""Property-style WAL recovery: crash after *any* interleaving.

Satellite invariant for the crash-recoverable write path: however appends,
flushes (``mark_flushed`` + ``truncate_flushed``), and ``drop_family``
calls interleave, a region rebuilt from its durable segments plus
``wal.replay()`` must expose the exact visible table state of the
pre-crash region.  Hypothesis drives the interleavings; every failing
schedule shrinks to a minimal op list.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimCluster
from repro.store.cell import Cell
from repro.store.region import Region

_ROWS = ("r0", "r1", "r2", "r3")
_FAMILIES = ("d", "x")

#: one schedule step: a put, a delete, a flush, or a family drop
_op = st.one_of(
    st.tuples(
        st.just("put"),
        st.sampled_from(_ROWS),
        st.sampled_from(_FAMILIES),
        st.binary(min_size=1, max_size=4),
    ),
    st.tuples(
        st.just("delete"), st.sampled_from(_ROWS), st.sampled_from(_FAMILIES)
    ),
    st.tuples(st.just("flush")),
    st.tuples(st.just("drop"), st.sampled_from(_FAMILIES)),
)


def _fresh_region() -> Region:
    cluster = SimCluster(EC2_PROFILE)
    # huge threshold: flushes happen only when the schedule says so
    return Region(None, None, cluster.workers[0], flush_threshold=10**9)


def _run_schedule(region: Region, ops) -> None:
    timestamp = 0
    for op in ops:
        if op[0] == "put":
            timestamp += 1
            region.apply(Cell(op[1], op[2], "q", op[3], timestamp))
        elif op[0] == "delete":
            timestamp += 1
            region.apply(Cell(op[1], op[2], "q", b"", timestamp, is_delete=True))
        elif op[0] == "flush":
            region.flush()
        else:
            region.drop_family(op[1])


def _crash_recover(region: Region) -> Region:
    """A region-server restart: durable segments + WAL replay only."""
    recovered = _fresh_region()
    recovered.sstables = list(region.sstables)
    for cell in region.wal.replay():
        recovered.memtable.add(cell)
    return recovered


def _visible_state(region: Region):
    return {
        (row.row, cell.family, cell.qualifier, cell.value, cell.timestamp)
        for row in region.scan_rows()
        for cell in row
    }


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_op, max_size=24))
def test_recovery_matches_precrash_state(ops):
    region = _fresh_region()
    _run_schedule(region, ops)
    recovered = _crash_recover(region)
    assert _visible_state(recovered) == _visible_state(region)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, max_size=24))
def test_double_replay_is_idempotent(ops):
    """A retried recovery (the WAL replayed twice) must not change
    visibility — §6 original timestamps dedupe duplicate versions."""
    region = _fresh_region()
    _run_schedule(region, ops)
    recovered = _crash_recover(region)
    for cell in region.wal.replay():
        recovered.memtable.add(cell)
    assert _visible_state(recovered) == _visible_state(region)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, max_size=24))
def test_byte_size_stays_exact(ops):
    """The incremental WAL byte accounting never drifts from the ground
    truth, whatever the schedule."""
    region = _fresh_region()
    _run_schedule(region, ops)
    assert region.wal.byte_size == sum(
        cell.serialized_size() for cell in region.wal.replay()
    )
