"""Write-ahead-log recovery and durability semantics.

§1 lists WAL-based fault tolerance among the NoSQL properties the paper's
store relies on; these tests exercise the recovery path of our substrate:
a region's unflushed mutations are fully reconstructible from its WAL, and
flushed data no longer depends on it.
"""

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimCluster
from repro.store.cell import Cell
from repro.store.region import Region


def _cell(row, ts, value=b"v", delete=False):
    return Cell(row, "d", "q", value, ts, delete)


def _recover(region: Region) -> Region:
    """Rebuild a region from its durable segments + WAL replay, as a
    region server restart would."""
    recovered = Region(region.start_key, region.stop_key, region.node)
    recovered.sstables = list(region.sstables)
    for cell in region.wal.replay():
        recovered.memtable.add(cell)
    return recovered


class TestRecovery:
    def _region(self):
        cluster = SimCluster(EC2_PROFILE)
        return Region(None, None, cluster.workers[0],
                      flush_threshold=10**9)

    def test_unflushed_writes_survive_crash(self):
        region = self._region()
        region.apply(_cell("r1", 1, b"hello"))
        region.apply(_cell("r2", 2, b"world"))
        recovered = _recover(region)
        assert recovered.read_row("r1").value("d", "q") == b"hello"
        assert recovered.read_row("r2").value("d", "q") == b"world"

    def test_unflushed_deletes_survive_crash(self):
        region = self._region()
        region.apply(_cell("r1", 1))
        region.flush()
        region.apply(_cell("r1", 2, delete=True))
        recovered = _recover(region)
        assert recovered.read_row("r1").empty

    def test_flushed_data_independent_of_wal(self):
        region = self._region()
        region.apply(_cell("r1", 1, b"durable"))
        region.flush()  # truncates the replayed prefix
        assert len(region.wal) == 0
        recovered = _recover(region)
        assert recovered.read_row("r1").value("d", "q") == b"durable"

    def test_mixed_flushed_and_unflushed(self):
        region = self._region()
        region.apply(_cell("r1", 1, b"old"))
        region.flush()
        region.apply(_cell("r1", 2, b"new"))
        region.apply(_cell("r2", 3, b"fresh"))
        recovered = _recover(region)
        assert recovered.read_row("r1").value("d", "q") == b"new"
        assert recovered.read_row("r2").value("d", "q") == b"fresh"

    def test_recovery_is_idempotent(self):
        """Replaying the same WAL twice (a retried recovery) must not
        change visibility — timestamps dedupe versions."""
        region = self._region()
        region.apply(_cell("r1", 1, b"value"))
        recovered = _recover(region)
        for cell in region.wal.replay():  # second (duplicate) replay
            recovered.memtable.add(cell)
        assert recovered.read_row("r1").value("d", "q") == b"value"
