"""The paper's running example (Figs. 1–6), end to end.

R1 and R2 are the 11+11 tuple relations of Fig. 1.  The tests verify the
index tables the paper draws (Fig. 2 for IJLMR, Fig. 3 for ISL, Fig. 5/6
for BFHM with 10 buckets) and that every algorithm returns the exact top-k
under the sum scoring function used in Fig. 6(c).
"""

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.common.serialization import (
    decode_score_key,
    decode_str,
    encode_float,
    encode_str,
)
from repro.common.types import ScoredRow
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.index import BFHMIndexBuilder
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.indexes import IJLMR_TABLE, ISL_TABLE
from repro.core.isl import ISLRankJoin
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.relational.naive import naive_rank_join
from repro.store.client import Put

#: Fig. 1 — tuples of R1 and R2 as (row key, join value, score)
R1 = [
    ("r1_1", "d", 0.82), ("r1_2", "c", 0.93), ("r1_3", "c", 0.67),
    ("r1_4", "d", 0.82), ("r1_5", "a", 0.73), ("r1_6", "c", 0.79),
    ("r1_7", "b", 0.82), ("r1_8", "b", 0.70), ("r1_9", "d", 0.68),
    ("r1_10", "a", 1.00), ("r1_11", "b", 0.64),
]
R2 = [
    ("r2_1", "a", 0.51), ("r2_2", "b", 0.91), ("r2_3", "c", 0.64),
    ("r2_4", "d", 0.53), ("r2_5", "d", 0.41), ("r2_6", "d", 0.50),
    ("r2_7", "a", 0.35), ("r2_8", "a", 0.38), ("r2_9", "a", 0.37),
    ("r2_10", "c", 0.31), ("r2_11", "b", 0.92),
]


@pytest.fixture(scope="module")
def example():
    setup = build_setup(EC2_PROFILE, micro_scale=0.05, seed=1)
    store = setup.platform.store
    for name, tuples in (("R1", R1), ("R2", R2)):
        htable = store.create_table(name, {"d"})
        for row_key, join_value, score in tuples:
            htable.put(
                Put(row_key)
                .add("d", "jv", encode_str(join_value))
                .add("d", "sc", encode_float(score))
            )
        htable.flush()
    query = RankJoinQuery.of(
        RelationBinding("R1", join_column="jv", score_column="sc"),
        RelationBinding("R2", join_column="jv", score_column="sc"),
        "sum",
        3,
    )
    return setup, query


def scored(tuples):
    return [ScoredRow(k, v, s) for k, v, s in tuples]


class TestGroundTruth:
    def test_top3_by_sum(self, example):
        """Fig. 6(c) rows 1–2: the actual top scores are b-joins
        (0.82+0.92, 0.82+0.91 twice ...)."""
        truth = naive_rank_join(scored(R1), scored(R2), _sum(), 3)
        # b-joins dominate: 0.82+0.92, 0.82+0.91, then 0.70+0.92
        assert [round(t.score, 2) for t in truth] == [1.74, 1.73, 1.62]
        assert truth[0].join_value == "b"


def _sum():
    from repro.common.functions import SumFunction

    return SumFunction()


class TestIJLMRIndex:
    def test_matches_figure_2(self, example):
        setup, query = example
        IJLMRRankJoin(setup.platform).prepare(query)
        index = setup.platform.store.backing(IJLMR_TABLE)

        row_a = index.read_row("a", families={query.left.signature})
        assert {c.qualifier for c in row_a} == {"r1_10", "r1_5"}
        row_a_r2 = index.read_row("a", families={query.right.signature})
        assert {c.qualifier for c in row_a_r2} == {"r2_1", "r2_7", "r2_8", "r2_9"}
        row_d = index.read_row("d", families={query.left.signature})
        assert {c.qualifier for c in row_d} == {"r1_1", "r1_4", "r1_9"}


class TestISLIndex:
    def test_matches_figure_3(self, example):
        setup, query = example
        ISLRankJoin(setup.platform).prepare(query)
        index = setup.platform.store.backing(ISL_TABLE)

        rows = list(index.all_rows(families={query.left.signature}))
        scores = [decode_score_key(r.row) for r in rows]
        assert scores[0] == pytest.approx(1.00)  # r1_10 first
        assert scores == sorted(scores, reverse=True)
        first = rows[0]
        assert first.cells[0].qualifier == "r1_10"
        assert decode_str(first.cells[0].value) == "a"
        # equal scores share an index row: r1_1, r1_4, r1_7 at 0.82
        row_082 = next(r for r in rows
                       if decode_score_key(r.row) == pytest.approx(0.82))
        assert {c.qualifier for c in row_082} == {"r1_1", "r1_4", "r1_7"}


class TestBFHMExample:
    @pytest.fixture(scope="class")
    def bfhm(self, example):
        setup, query = example
        algorithm = BFHMRankJoin(setup.platform, num_buckets=10)
        algorithm.prepare(query)
        return setup, query, algorithm

    def test_bucket_stats_match_figure_6a(self, bfhm):
        """R1's BFHM: bucket (0.9,1.0] min 0.93 max 1.00; (0.8,0.9]
        min/max 0.82; etc."""
        setup, query, algorithm = bfhm
        builder = BFHMIndexBuilder(setup.platform, num_buckets=10)
        meta = builder.read_meta(setup.platform, query.left.signature)
        from repro.core.bfhm.estimation import decode_plain_bucket_row
        from repro.core.bfhm.bucket import blob_row_key

        index = setup.platform.store.backing("bfhm_idx")

        def bucket_data(bucket):
            row = index.read_row(blob_row_key(bucket), families={meta.family})
            return decode_plain_bucket_row(meta.family, bucket, row)

        top = bucket_data(0)
        assert top.min_score == pytest.approx(0.93)
        assert top.max_score == pytest.approx(1.00)
        assert top.count == 2  # r1_2 (0.93), r1_10 (1.00)
        second = bucket_data(1)
        assert second.min_score == pytest.approx(0.82)
        assert second.max_score == pytest.approx(0.82)
        assert second.count == 3  # r1_1, r1_4, r1_7
        assert 0 in meta.buckets and 1 in meta.buckets

    def test_r2_bucket_0_is_the_b_pair(self, bfhm):
        setup, query, algorithm = bfhm
        from repro.core.bfhm.estimation import decode_plain_bucket_row
        from repro.core.bfhm.bucket import blob_row_key

        builder = BFHMIndexBuilder(setup.platform, num_buckets=10)
        meta = builder.read_meta(setup.platform, query.right.signature)
        index = setup.platform.store.backing("bfhm_idx")
        row = index.read_row(blob_row_key(0), families={meta.family})
        data = decode_plain_bucket_row(meta.family, 0, row)
        assert data.count == 2  # r2_2 (0.91), r2_11 (0.92)
        assert data.min_score == pytest.approx(0.91)
        assert data.max_score == pytest.approx(0.92)

    def test_top3_exact(self, bfhm):
        setup, query, algorithm = bfhm
        result = algorithm.execute(query)
        truth = naive_rank_join(scored(R1), scored(R2), _sum(), 3)
        assert result.recall_against(truth) == 1.0
        assert [round(t.score, 2) for t in result.tuples] == [1.74, 1.73, 1.62]

    def test_estimation_trace_contains_figure_6c_top_row(self, bfhm):
        """The first estimated result joins R1's (0.8,0.9] with R2's
        (0.9,1.0]: 2 estimated tuples, scores in [1.73, 1.74]."""
        setup, query, algorithm = bfhm
        from repro.core.bfhm.estimation import BFHMEstimator

        metas = tuple(
            algorithm.update_manager.meta(s)
            for s in (query.left.signature, query.right.signature)
        )
        estimator = BFHMEstimator(
            setup.platform,
            (metas[0].family, metas[1].family),
            metas, query.function,
            update_manager=algorithm.update_manager,
        )
        estimator.run_until(3)
        top = max(estimator.results, key=lambda r: r.max_score)
        assert top.left_bucket == 1 and top.right_bucket == 0
        assert round(top.min_score, 2) == 1.73
        assert round(top.max_score, 2) == 1.74
        # true join size is 2; α-compensation discounts slightly because
        # the example's filters are tiny (m is sized for 4-tuple buckets)
        assert 1.5 <= top.cardinality <= 2.01


class TestAllAlgorithmsOnExample:
    @pytest.mark.parametrize("algorithm", ["hive", "pig", "ijlmr", "isl",
                                           "bfhm", "drjn"])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_exact_topk(self, example, algorithm, k):
        setup, query = example
        query = query.with_k(k)
        truth = naive_rank_join(scored(R1), scored(R2), query.function, k)
        result = setup.engine.execute(query, algorithm=algorithm)
        assert result.recall_against(truth) == 1.0
