"""End-to-end: ``algorithm="auto"`` and EXPLAIN through the engine facade."""

from __future__ import annotations

from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2


class TestAutoAlgorithm:
    def test_auto_is_the_default_and_returns_correct_results(self, shared_setup):
        engine = shared_setup.engine
        result = engine.sql(Q1_SQL.format(k=10))
        truth = shared_setup.ground_truth(q1(10), 10)
        assert result.recall_against(truth) == 1.0
        assert engine.last_plan is not None
        assert result.algorithm.lower() == engine.last_plan.chosen

    def test_auto_picks_a_coordinator_algorithm(self, shared_setup):
        result = shared_setup.engine.execute(q2(5))
        assert result.algorithm.lower() in ("isl", "bfhm")

    def test_auto_matches_explicit_run_of_chosen_algorithm(self, shared_setup):
        engine = shared_setup.engine
        auto = engine.execute(q1(10), algorithm="auto")
        explicit = engine.execute(q1(10), algorithm=auto.algorithm.lower())
        assert auto.scores() == explicit.scores()

    def test_plan_is_recorded_per_auto_run(self, shared_setup):
        engine = shared_setup.engine
        engine.execute(q1(5))
        first = engine.last_plan
        engine.execute(q2(5))
        assert engine.last_plan is not first
        assert engine.last_plan.query.k == 5

    def test_auto_on_empty_relation_falls_back(self, empty_platform):
        """Unplannable queries (no rows -> no statistics) behave like the
        pre-planner default instead of raising."""
        from repro.query.engine import RankJoinEngine
        from repro.query.spec import RankJoinQuery
        from repro.relational.binding import RelationBinding

        empty_platform.store.create_table("bare_l", {"d"})
        empty_platform.store.create_table("bare_r", {"d"})
        engine = RankJoinEngine(empty_platform)
        query = RankJoinQuery.of(
            RelationBinding("bare_l", "j", "s"),
            RelationBinding("bare_r", "j", "s"),
            "product", 3,
        )
        result = engine.execute(query)
        assert result.tuples == []
        assert result.algorithm.lower() == engine.FALLBACK_ALGORITHM
        assert engine.last_plan is None

    def test_first_use_build_refreshes_statistics(self, tiny_engine):
        """An index built as an execution side effect must invalidate the
        cached statistics, so the next plan prices the real footprint."""
        before = tiny_engine.explain(q1(3))
        assert not before.statistics["left"].index("isl").built
        tiny_engine.execute(q1(3), algorithm="isl")  # builds on first use
        after = tiny_engine.explain(q1(3))
        assert after.statistics["left"].index("isl").built

    def test_repeated_plans_are_cached_until_invalidation(self, shared_setup):
        engine = shared_setup.engine
        first = engine.plan(q1(9))
        assert engine.plan(q1(9)) is first
        assert engine.plan(q1(9), objective="network") is not first
        engine.statistics.invalidate("part")
        rebuilt = engine.plan(q1(9))
        assert rebuilt is not first
        assert rebuilt.chosen == first.chosen


class TestExplain:
    def test_explain_sql_without_executing(self, shared_setup):
        engine = shared_setup.engine
        before = shared_setup.platform.metrics.snapshot()
        plan = engine.explain(Q2_SQL.format(k=20))
        delta = shared_setup.platform.metrics.snapshot() - before
        assert delta.sim_time_s == 0.0 and delta.kv_reads == 0
        assert plan.query.k == 20
        assert len(plan.estimates) == 6

    def test_explain_accepts_bound_query(self, shared_setup):
        plan = shared_setup.engine.explain(q1(7))
        assert plan.query.k == 7

    def test_render_lists_every_algorithm_and_winner(self, shared_setup):
        plan = shared_setup.engine.explain(Q1_SQL.format(k=10))
        text = str(plan)
        assert "QUERY PLAN" in text
        for name in ("HIVE", "PIG", "IJLMR", "ISL", "BFHM", "DRJN"):
            assert name in text
        assert f"chosen: {plan.best.algorithm}" in text
        assert "breakdown:" in text
        # statistics footer names both relations
        assert "rows" in text and "join values" in text

    def test_render_comparison_covers_all_candidates(self, shared_setup):
        from repro.query.explain import render_comparison

        plan = shared_setup.engine.explain(Q1_SQL.format(k=10))
        text = render_comparison(plan)
        assert len(text.splitlines()) == len(plan.estimates)
        for estimate in plan.estimates:
            assert text.count(f"{estimate.algorithm}:") == 1

    def test_explain_objective_dollars(self, shared_setup):
        plan = shared_setup.engine.explain(
            Q1_SQL.format(k=10), objective="dollars"
        )
        assert plan.chosen == "bfhm"  # Fig. 7(c): BFHM wins the cost panel

    def test_statistics_shared_between_plans(self, shared_setup):
        engine = shared_setup.engine
        engine.explain(Q1_SQL.format(k=1))
        gathered = engine.statistics.gather_count
        engine.explain(Q1_SQL.format(k=100))
        assert engine.statistics.gather_count == gathered
