"""Process-parallel builds are indistinguishable from serial builds.

The tentpole guarantee of the process-pool backend: running index-build
map/reduce waves in worker processes changes *wall-clock only*.  For every
pool size and balancer, a process-mode build must produce

* **byte-identical index contents** — every cell of every index family,
  including Golomb blob bytes and parent-assigned timestamps, and
* **bit-identical simulated metrics** — the fold-in-task-order discipline
  makes charges a pure function of store state + task list, independent
  of the execution backend.

Queries after a process-mode build are asserted identical too (the ISL
scatter path exercises the thread fallback inside a process-mode context:
store-touching tasks offer no picklable form).
"""

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.topology import LocalityBalancer
from repro.tpch.queries import q1

INDEX_TABLES = ("bfhm_idx", "isl_idx", "ijlmr_idx")
ALGORITHMS = ("bfhm", "isl", "ijlmr")


def _built_setup(parallelism, workers=None, num_servers=1, balancer=None):
    setup = build_setup(
        EC2_PROFILE,
        micro_scale=0.2,
        seed=42,
        num_servers=num_servers,
        balancer=balancer,
        parallelism=parallelism,
        process_workers=workers,
    )
    for name in ALGORITHMS:
        setup.engine.algorithm(name).prepare(q1(1))
    return setup


def _index_cells(setup):
    cells = {}
    for table in INDEX_TABLES:
        backing = setup.platform.store.backing(table)
        cells[table] = [
            (cell.row, cell.family, cell.qualifier, cell.value, cell.timestamp)
            for row in backing.all_rows()
            for cell in row
        ]
    return cells


@pytest.fixture(scope="module")
def serial_baselines():
    """Thread-backend builds (the seed behaviour), one per topology."""
    return {
        (1, "rr"): _built_setup("thread"),
        (4, "rr"): _built_setup("thread", num_servers=4),
        (4, "loc"): _built_setup(
            "thread", num_servers=4, balancer=LocalityBalancer()
        ),
    }


@pytest.mark.parametrize(
    "workers,num_servers,layout",
    [
        (1, 1, "rr"),
        (2, 1, "rr"),
        (4, 1, "rr"),
        (2, 4, "rr"),
        (4, 4, "rr"),
        (2, 4, "loc"),
        (4, 4, "loc"),
    ],
)
def test_process_build_matches_serial(serial_baselines, workers, num_servers, layout):
    baseline = serial_baselines[(num_servers, layout)]
    balancer = LocalityBalancer() if layout == "loc" else None
    built = _built_setup(
        "process", workers=workers, num_servers=num_servers, balancer=balancer
    )
    # bit-identical simulated metrics (time, bytes, reads, every counter)
    assert built.platform.metrics.snapshot() == baseline.platform.metrics.snapshot()
    # byte-identical index-family contents, timestamps included
    assert _index_cells(built) == _index_cells(baseline)


def test_queries_after_process_build_are_identical(serial_baselines):
    """The full query grid prices identically on a process-mode platform
    (scatter rounds without picklable forms fall back to threads)."""
    baseline = serial_baselines[(4, "rr")]
    built = _built_setup("process", workers=2, num_servers=4)
    for algorithm in ALGORITHMS:
        for k in (1, 10):
            expected = baseline.engine.execute(q1(k), algorithm=algorithm)
            actual = built.engine.execute(q1(k), algorithm=algorithm)
            assert actual.metrics == expected.metrics, (algorithm, k)
            assert actual.tuples == expected.tuples, (algorithm, k)
