"""Batched maintenance write path: ``insert_batch`` / ``delete_batch``.

The batched path must be behaviourally equivalent to applying each
mutation alone — same base-table contents, same index contents, same query
results — while invalidating planner statistics exactly once per batch and
keeping the §6 retry/idempotency semantics.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.indexes import BFHM_TABLE, IJLMR_TABLE, ISL_TABLE
from repro.core.isl import ISLRankJoin
from repro.maintenance.consistency import RetryPolicy
from repro.maintenance.interceptor import MaintainedRelation
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.queries import q2
from repro.tpch.updates import generate_refresh_sets

SCALE = 0.2
SEED = 42


class _CountingCatalog:
    """Duck-typed statistics catalog that counts invalidations."""

    def __init__(self) -> None:
        self.invalidations: list[str] = []

    def invalidate(self, table_name: str) -> None:
        self.invalidations.append(table_name)


def _prepared(**relation_kwargs):
    """A fresh loaded platform with all Q2 indices built and both
    relations wrapped in interceptors."""
    setup = build_setup(EC2_PROFILE, micro_scale=SCALE, seed=SEED)
    platform = setup.platform
    algorithms = {
        "ijlmr": IJLMRRankJoin(platform),
        "isl": ISLRankJoin(platform),
        "bfhm": BFHMRankJoin(platform),
    }
    for algorithm in algorithms.values():
        algorithm.prepare(q2(1))
        setup.engine.register(algorithm.name.lower(), algorithm)
    relations = {
        "orders": MaintainedRelation(
            platform, orders_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
            **relation_kwargs,
        ),
        "lineitem": MaintainedRelation(
            platform, lineitem_by_order_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
            **relation_kwargs,
        ),
    }
    return setup, relations


def _logical_cells(platform, table_name):
    """Visible cells as (row, family, qualifier, value) — no timestamps.

    Batch mutations share one timestamp where singles draw one each, so
    equivalence is at the value level, not the version level.
    """
    return {
        (row.row, cell.family, cell.qualifier, cell.value)
        for row in platform.store.backing(table_name).all_rows()
        for cell in row
    }


def _bfhm_logical_state(platform, manager, signature):
    """Replay-decoded bucket contents: what any reader would observe."""
    meta = manager.meta(signature)
    htable = platform.store.table(BFHM_TABLE)
    from repro.core.bfhm.bucket import blob_row_key
    from repro.store.client import Get

    state = {}
    for bucket in meta.buckets:
        row = htable.get(Get(blob_row_key(bucket), families={meta.family}))
        data = manager.decode_with_replay(meta.family, bucket, row)
        state[bucket] = (
            data.count,
            data.min_score,
            data.max_score,
            dict(data.filter.counters),
            data.filter.item_count,
        )
    return state


def _apply_batched(relations, refresh):
    relations["orders"].insert_batch(
        [(order["orderkey"], order) for order in refresh.insert_orders]
    )
    relations["lineitem"].insert_batch(
        [(item["rowkey"], item) for item in refresh.insert_lineitems]
    )
    relations["orders"].delete_batch(refresh.delete_orders)
    relations["lineitem"].delete_batch(refresh.delete_lineitems)


def _apply_singly(relations, refresh):
    for order in refresh.insert_orders:
        relations["orders"].insert(order["orderkey"], order)
    for item in refresh.insert_lineitems:
        relations["lineitem"].insert(item["rowkey"], item)
    for orderkey in refresh.delete_orders:
        relations["orders"].delete(orderkey)
    for rowkey in refresh.delete_lineitems:
        relations["lineitem"].delete(rowkey)


class TestBatchEqualsSingles:
    def test_store_and_index_state_match(self):
        """A batch must leave the same logical store + index state as the
        equivalent sequence of single mutations."""
        setup_a, relations_a = _prepared()
        setup_b, relations_b = _prepared()
        refresh_a = generate_refresh_sets(setup_a.data, count=1)[0]
        refresh_b = generate_refresh_sets(setup_b.data, count=1)[0]
        assert refresh_a.insert_count == refresh_b.insert_count

        _apply_batched(relations_a, refresh_a)
        _apply_singly(relations_b, refresh_b)

        for table in ("orders", "lineitem", IJLMR_TABLE, ISL_TABLE):
            assert _logical_cells(setup_a.platform, table) == _logical_cells(
                setup_b.platform, table
            ), f"{table} state diverged"

        # BFHM blob rows carry timestamp-stamped update records, so compare
        # the replay-decoded view instead of raw cells
        for binding in (orders_binding(), lineitem_by_order_binding()):
            manager_a = relations_a["orders"].bfhm_manager
            manager_b = relations_b["orders"].bfhm_manager
            state_a = _bfhm_logical_state(
                setup_a.platform, manager_a, binding.signature
            )
            state_b = _bfhm_logical_state(
                setup_b.platform, manager_b, binding.signature
            )
            assert state_a == state_b, f"BFHM {binding.signature} diverged"

        # reverse-mapping rows must agree too (they have no records)
        bfhm_a = {
            entry
            for entry in _logical_cells(setup_a.platform, BFHM_TABLE)
            if entry[0].startswith("R")
        }
        bfhm_b = {
            entry
            for entry in _logical_cells(setup_b.platform, BFHM_TABLE)
            if entry[0].startswith("R")
        }
        assert bfhm_a == bfhm_b

        assert relations_a["orders"].inserts_applied == relations_b["orders"].inserts_applied
        assert relations_a["orders"].deletes_applied == relations_b["orders"].deletes_applied

    @pytest.mark.parametrize("algorithm", ["ijlmr", "isl", "bfhm"])
    def test_queries_after_batch_have_full_recall(self, algorithm):
        setup, relations = _prepared()
        for refresh in generate_refresh_sets(setup.data, count=2):
            _apply_batched(relations, refresh)
        query = q2(15)
        left = load_relation(setup.platform.store, query.left)
        right = load_relation(setup.platform.store, query.right)
        truth = naive_rank_join(left, right, query.function, 15)
        result = setup.engine.execute(query, algorithm=algorithm)
        assert result.recall_against(truth) == 1.0

    def test_batch_shares_one_timestamp(self):
        """§6: index mutations carry the original mutation timestamp; for
        a batch, the batch is the mutation."""
        setup, relations = _prepared()
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        relations["orders"].insert_batch(
            [(order["orderkey"], order) for order in refresh.insert_orders]
        )
        inserted = {order["orderkey"] for order in refresh.insert_orders}
        stamps = {
            cell.timestamp
            for row in setup.platform.store.backing("orders").all_rows()
            if row.row in inserted
            for cell in row
        }
        assert len(stamps) == 1


class TestStatisticsInvalidation:
    def test_single_invalidation_per_batch(self):
        setup, relations = _prepared(statistics_catalog=_CountingCatalog())
        catalog = relations["orders"].statistics_catalog
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        relations["orders"].insert_batch(
            [(order["orderkey"], order) for order in refresh.insert_orders]
        )
        assert catalog.invalidations == ["orders"]
        relations["orders"].delete_batch(refresh.delete_orders)
        assert catalog.invalidations == ["orders", "orders"]

    def test_duplicate_keys_in_one_delete_batch_count_once(self):
        """All existence reads precede the tombstones, so duplicates must
        be deduped or they would count (and mutate) twice."""
        setup, relations = _prepared(statistics_catalog=_CountingCatalog())
        order = setup.data.orders[0]["orderkey"]
        assert relations["orders"].delete_batch([order, order]) == 1
        assert relations["orders"].deletes_applied == 1

    def test_empty_and_missing_batches_do_not_invalidate(self):
        setup, relations = _prepared(statistics_catalog=_CountingCatalog())
        catalog = relations["orders"].statistics_catalog
        relations["orders"].insert_batch([])
        assert relations["orders"].delete_batch(["O-missing-1", "O-missing-2"]) == 0
        assert catalog.invalidations == []


class TestRetrySemantics:
    def test_flaky_first_attempts_converge(self):
        """Injected transient failures must not change the final state —
        batched writes are idempotent under the shared timestamp."""
        setup_flaky, relations_flaky = _prepared()
        calls = {"n": 0}

        def flaky(attempt):
            calls["n"] += 1
            return attempt == 0 and calls["n"] % 2 == 1

        for relation in relations_flaky.values():
            relation.failure_injector = flaky
        setup_clean, relations_clean = _prepared()

        refresh_flaky = generate_refresh_sets(setup_flaky.data, count=1)[0]
        refresh_clean = generate_refresh_sets(setup_clean.data, count=1)[0]
        _apply_batched(relations_flaky, refresh_flaky)
        _apply_batched(relations_clean, refresh_clean)

        assert calls["n"] > 0, "injector never consulted"
        for table in ("orders", "lineitem", IJLMR_TABLE, ISL_TABLE):
            assert _logical_cells(setup_flaky.platform, table) == _logical_cells(
                setup_clean.platform, table
            ), f"{table} state diverged under retries"

    def test_exhausted_budget_raises(self):
        from repro.maintenance.consistency import MutationFailedError

        setup, relations = _prepared(retry_policy=RetryPolicy(max_attempts=2))
        relations["orders"].failure_injector = lambda attempt: True
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        with pytest.raises(MutationFailedError):
            relations["orders"].insert_batch(
                [(order["orderkey"], order) for order in refresh.insert_orders]
            )
