"""The engine facade and the SQL path end to end."""

import pytest

from repro.core.isl import ISLRankJoin
from repro.errors import PlanningError
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1


class TestSQLPath:
    def test_q1_sql_equals_bound_query(self, shared_setup):
        engine = shared_setup.engine
        via_sql = engine.sql(Q1_SQL.format(k=10), algorithm="bfhm")
        via_spec = engine.execute(q1(10), algorithm="bfhm")
        assert via_sql.scores() == via_spec.scores()

    def test_q2_sql_runs(self, shared_setup):
        result = shared_setup.engine.sql(Q2_SQL.format(k=5), algorithm="isl")
        assert len(result.tuples) == 5

    def test_sql_weighted_sum(self, shared_setup):
        result = shared_setup.engine.sql(
            "SELECT * FROM orders O, lineitem L WHERE O.orderkey = L.orderkey "
            "ORDER BY 0.8 * O.totalprice + 0.2 * L.extendedprice STOP AFTER 5",
            algorithm="isl",
        )
        assert len(result.tuples) == 5
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)


class TestEngine:
    def test_unknown_algorithm_rejected(self, shared_setup):
        with pytest.raises(PlanningError):
            shared_setup.engine.execute(q1(1), algorithm="quantum")

    def test_algorithm_instances_cached(self, shared_setup):
        engine = shared_setup.engine
        assert engine.algorithm("isl") is engine.algorithm("ISL")

    def test_register_custom_instance(self, shared_setup):
        custom = ISLRankJoin(shared_setup.platform, batch_rows=11)
        shared_setup.engine.register("isl-tuned", custom)
        assert shared_setup.engine.algorithm("isl-tuned") is custom

    def test_prepare_returns_reports(self, tiny_engine):
        reports = tiny_engine.prepare(q1(1), algorithms=["isl", "bfhm"])
        assert len(reports) == 4  # two relations x two algorithms
        assert all(r.index_bytes > 0 for r in reports)

    def test_algorithm_kwargs_forwarded(self, tiny_engine):
        from repro.query.engine import RankJoinEngine

        engine = RankJoinEngine(
            tiny_engine.platform, isl={"batch_rows": 13}
        )
        assert engine.algorithm("isl").batch_rows == 13
