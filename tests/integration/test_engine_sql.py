"""The engine facade and the SQL path end to end."""

import pytest

from repro.core.isl import ISLRankJoin
from repro.errors import PlanningError
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1


class TestSQLPath:
    def test_q1_sql_equals_bound_query(self, shared_setup):
        engine = shared_setup.engine
        via_sql = engine.sql(Q1_SQL.format(k=10), algorithm="bfhm")
        via_spec = engine.execute(q1(10), algorithm="bfhm")
        assert via_sql.scores() == via_spec.scores()

    def test_q2_sql_runs(self, shared_setup):
        result = shared_setup.engine.sql(Q2_SQL.format(k=5), algorithm="isl")
        assert len(result.tuples) == 5

    def test_sql_weighted_sum(self, shared_setup):
        result = shared_setup.engine.sql(
            "SELECT * FROM orders O, lineitem L WHERE O.orderkey = L.orderkey "
            "ORDER BY 0.8 * O.totalprice + 0.2 * L.extendedprice STOP AFTER 5",
            algorithm="isl",
        )
        assert len(result.tuples) == 5
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)


THREE_WAY_SQL = (
    "SELECT * FROM part P, lineitem L1, lineitem L2 "
    "WHERE P.partkey = L1.partkey AND L1.partkey = L2.partkey "
    "ORDER BY P.retailprice + L1.extendedprice + L2.discount "
    "STOP AFTER {k}"
)


class TestNWaySQLPath:
    """Arity >= 3 queries through the same parser -> planner -> engine
    stack (the ISSUE-4 acceptance path)."""

    def _truth(self, engine, query):
        from repro.relational.binding import load_relation
        from repro.relational.multiway import naive_rank_join_multi

        relations = [
            load_relation(engine.platform.store, binding)
            for binding in query.inputs
        ]
        return naive_rank_join_multi(relations, query.function, query.k)

    def test_three_way_auto_end_to_end(self, tiny_engine):
        from repro.query.parser import parse_rank_join

        result = tiny_engine.sql(THREE_WAY_SQL.format(k=5))  # algorithm=auto
        assert tiny_engine.last_plan is not None
        assert tiny_engine.last_plan.chosen in ("isl", "hrjn", "bfhm",
                                                "bfhm-cascade", "isl-nway",
                                                "hrjn-nway")
        query = parse_rank_join(THREE_WAY_SQL.format(k=5))
        truth = self._truth(tiny_engine, query)
        assert result.recall_against(truth) == 1.0
        assert result.scores() == pytest.approx([t.score for t in truth])

    def test_three_way_explain_shows_cascade_stage_cost_lines(self, tiny_engine):
        plan = tiny_engine.explain(THREE_WAY_SQL.format(k=5))
        estimate = plan.estimate("bfhm-cascade")
        assert any(c.startswith("s1 ") for c in estimate.breakdown)
        assert any(c.startswith("s2 ") for c in estimate.breakdown)
        rendered = plan.render()
        assert "BFHM-cascade" in rendered
        assert "s1 bucket fetch" in rendered
        # every input relation's statistics line is rendered
        for label in ("P", "L1", "L2"):
            assert label in rendered

    def test_three_way_explain_does_not_execute(self, tiny_engine):
        platform = tiny_engine.platform
        before = platform.metrics.snapshot()
        tiny_engine.explain(THREE_WAY_SQL.format(k=5))
        delta = platform.metrics.snapshot() - before
        assert delta.sim_time_s == 0.0
        assert delta.kv_reads == 0

    def test_each_strategy_reaches_full_recall(self, tiny_engine):
        from repro.query.parser import parse_rank_join

        query = parse_rank_join(THREE_WAY_SQL.format(k=4))
        truth = self._truth(tiny_engine, query)
        for name in ("isl", "hrjn", "bfhm"):
            result = tiny_engine.execute(query, algorithm=name)
            assert result.recall_against(truth) == 1.0, name

    def test_display_names_accepted_everywhere(self, tiny_engine):
        """The names EXPLAIN emits (BFHM-cascade, ISL-nway, ...) resolve
        both in execution dispatch and in plan(algorithms=...)."""
        from repro.query.parser import parse_rank_join

        query = parse_rank_join(THREE_WAY_SQL.format(k=3))
        plan = tiny_engine.plan(query, algorithms=["BFHM-cascade", "ISL-nway"])
        assert {e.algorithm for e in plan.estimates} == {"BFHM-cascade", "ISL"}
        result = tiny_engine.execute(query, algorithm="bfhm-cascade")
        assert result.algorithm == "BFHM-cascade"

    def test_register_multiway_custom_instance(self, tiny_engine):
        from repro.core.hrjn_multi import MultiWayHRJNRankJoin
        from repro.query.parser import parse_rank_join

        custom = MultiWayHRJNRankJoin(tiny_engine.platform)
        tiny_engine.register_multiway("my-pipeline", custom)
        query = parse_rank_join(THREE_WAY_SQL.format(k=2))
        result = tiny_engine.execute(query, algorithm="my-pipeline")
        assert result.algorithm == "HRJN-nway"


class TestEngine:
    def test_unknown_algorithm_rejected(self, shared_setup):
        with pytest.raises(PlanningError):
            shared_setup.engine.execute(q1(1), algorithm="quantum")

    def test_algorithm_instances_cached(self, shared_setup):
        engine = shared_setup.engine
        assert engine.algorithm("isl") is engine.algorithm("ISL")

    def test_register_custom_instance(self, shared_setup):
        custom = ISLRankJoin(shared_setup.platform, batch_rows=11)
        shared_setup.engine.register("isl-tuned", custom)
        assert shared_setup.engine.algorithm("isl-tuned") is custom

    def test_prepare_returns_reports(self, tiny_engine):
        reports = tiny_engine.prepare(q1(1), algorithms=["isl", "bfhm"])
        assert len(reports) == 4  # two relations x two algorithms
        assert all(r.index_bytes > 0 for r in reports)

    def test_algorithm_kwargs_forwarded(self, tiny_engine):
        from repro.query.engine import RankJoinEngine

        engine = RankJoinEngine(
            tiny_engine.platform, isl={"batch_rows": 13}
        )
        assert engine.algorithm("isl").batch_rows == 13
