"""Online updates across all indices (§6) with TPC-H refresh sets."""

import pytest

from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin
from repro.maintenance.consistency import (
    MutationFailedError,
    RetryPolicy,
    with_retries,
)
from repro.maintenance.interceptor import MaintainedRelation
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.queries import q2
from repro.tpch.updates import generate_refresh_sets


@pytest.fixture()
def maintained(fresh_setup):
    """All three indices built and wrapped with interceptors for Q2."""
    platform = fresh_setup.platform
    query = q2(1)
    algorithms = {
        "ijlmr": IJLMRRankJoin(platform),
        "isl": ISLRankJoin(platform),
        "bfhm": BFHMRankJoin(platform),
    }
    for algorithm in algorithms.values():
        algorithm.prepare(query)
        fresh_setup.engine.register(algorithm.name.lower(), algorithm)

    def wrap(binding):
        return MaintainedRelation(
            platform, binding,
            maintain_ijlmr=True, maintain_isl=True,
            bfhm_manager=algorithms["bfhm"].update_manager,
        )

    return fresh_setup, {
        "orders": wrap(orders_binding()),
        "lineitem": wrap(lineitem_by_order_binding()),
    }


def apply_refresh(setup, relations, refresh):
    for order in refresh.insert_orders:
        relations["orders"].insert(order["orderkey"], order)
    for item in refresh.insert_lineitems:
        relations["lineitem"].insert(item["rowkey"], item)
    for orderkey in refresh.delete_orders:
        relations["orders"].delete(orderkey)
    for rowkey in refresh.delete_lineitems:
        relations["lineitem"].delete(rowkey)


class TestRefreshSets:
    @pytest.mark.parametrize("algorithm", ["ijlmr", "isl", "bfhm"])
    def test_recall_after_refresh(self, maintained, algorithm):
        setup, relations = maintained
        refresh_sets = generate_refresh_sets(setup.data, count=2)
        for refresh in refresh_sets:
            apply_refresh(setup, relations, refresh)

        query = q2(15)
        left = load_relation(setup.platform.store, query.left)
        right = load_relation(setup.platform.store, query.right)
        truth = naive_rank_join(left, right, query.function, 15)
        result = setup.engine.execute(query, algorithm=algorithm)
        assert result.recall_against(truth) == 1.0

    def test_base_tables_mutated(self, maintained):
        setup, relations = maintained
        before = len(list(setup.platform.store.backing("orders").all_rows()))
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        apply_refresh(setup, relations, refresh)
        after = len(list(setup.platform.store.backing("orders").all_rows()))
        assert after == before + len(refresh.insert_orders) - len(
            refresh.delete_orders
        )

    def test_delete_of_missing_row_is_noop(self, maintained):
        setup, relations = maintained
        assert relations["orders"].delete("O99999999") is False

    def test_counters(self, maintained):
        setup, relations = maintained
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        apply_refresh(setup, relations, refresh)
        assert relations["orders"].inserts_applied == len(refresh.insert_orders)
        assert relations["orders"].deletes_applied == len(refresh.delete_orders)


class TestRetries:
    def test_transient_failures_retried(self):
        attempts = []

        def mutation():
            return "done"

        result = with_retries(
            mutation,
            RetryPolicy(max_attempts=5),
            failure_injector=lambda attempt: (attempts.append(attempt),
                                              attempt < 2)[1],
        )
        assert result == "done"
        assert attempts == [0, 1, 2]

    def test_budget_exhaustion_raises(self):
        with pytest.raises(MutationFailedError):
            with_retries(
                lambda: "never",
                RetryPolicy(max_attempts=3),
                failure_injector=lambda _: True,
            )

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_mutations_with_injected_failures_stay_consistent(self, maintained):
        """Eventual consistency: flaky first attempts, same final state."""
        setup, relations = maintained
        flaky_calls = {"n": 0}

        def flaky(attempt):
            flaky_calls["n"] += 1
            return attempt == 0 and flaky_calls["n"] % 3 == 1

        relations["orders"].failure_injector = flaky
        refresh = generate_refresh_sets(setup.data, count=1)[0]
        apply_refresh(setup, relations, refresh)

        query = q2(10)
        left = load_relation(setup.platform.store, query.left)
        right = load_relation(setup.platform.store, query.right)
        truth = naive_rank_join(left, right, query.function, 10)
        result = setup.engine.execute(query, algorithm="isl")
        assert result.recall_against(truth) == 1.0
