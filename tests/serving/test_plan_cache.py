"""Plan-cache unit tests: accounting, eviction, version/epoch invalidation.

The pure LRU/version logic is tested against a fake catalog (fast, exact);
the integration tests drive the real planner through
``RankJoinEngine(plan_cache=...)`` and pin the regression that a cached
plan never survives an index drop (``forget`` / ``drop_family``).
"""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.core.indexes import ISL_TABLE
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.query.statistics import StatisticsCatalog
from repro.serving.plan_cache import PlanCache
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch
from repro.tpch.queries import q1, q2


class _FakeCatalog:
    """Duck-typed stand-in exposing table_version/epoch like the real one."""

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        self.epoch = 0

    def table_version(self, table: str) -> int:
        return self._versions.get(table, 0)

    def bump(self, table: str) -> None:
        self._versions[table] = self.table_version(table) + 1


class TestPlanCacheUnit:
    def test_miss_then_hit_accounting(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=4)
        versions = cache.versions_for(("part", "lineitem"))
        assert cache.lookup("shape-a") is None
        assert cache.store("shape-a", "plan-a", versions)
        assert cache.lookup("shape-a") == "plan-a"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_lru_eviction_drops_oldest(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=2)
        versions = cache.versions_for(("t",))
        cache.store("a", 1, versions)
        cache.store("b", 2, versions)
        assert cache.lookup("a") == 1  # touch "a" so "b" is now LRU
        cache.store("c", 3, versions)
        assert cache.evictions == 1
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3

    def test_version_bump_invalidates_only_dependents(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=4)
        cache.store("over-part", "p", cache.versions_for(("part",)))
        cache.store("over-orders", "o", cache.versions_for(("orders",)))
        catalog.bump("part")
        assert cache.lookup("over-part") is None
        assert cache.invalidations == 1
        assert cache.lookup("over-orders") == "o"

    def test_epoch_bump_invalidates_everything(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=4)
        cache.store("a", 1, cache.versions_for(("part",)))
        cache.store("b", 2, cache.versions_for(("orders",)))
        catalog.epoch += 1
        assert cache.lookup("a") is None
        assert cache.lookup("b") is None
        assert cache.invalidations == 2

    def test_store_refuses_versions_stale_before_landing(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=4)
        versions = cache.versions_for(("part",))
        catalog.bump("part")  # maintenance lands mid-planning
        assert not cache.store("shape", "stale-plan", versions)
        assert len(cache) == 0
        assert cache.lookup("shape") is None

    def test_capacity_zero_disables_caching(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=0)
        versions = cache.versions_for(("part",))
        assert not cache.store("shape", "plan", versions)
        assert cache.lookup("shape") is None
        assert cache.hit_rate == 0.0

    def test_clear_keeps_accounting(self):
        catalog = _FakeCatalog()
        cache = PlanCache(catalog, capacity=4)
        cache.store("a", 1, cache.versions_for(("part",)))
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        stats = cache.stats()
        assert stats["size"] == 0 and stats["hits"] == 1


@pytest.fixture(scope="module")
def planning_setup():
    """Loaded platform + shared catalog/cache + engine, ISL index built."""
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=0.05, seed=7))
    catalog = StatisticsCatalog(platform)
    cache = PlanCache(catalog, capacity=16)
    engine = RankJoinEngine(platform, statistics_catalog=catalog, plan_cache=cache)
    engine.algorithm("isl").prepare(q1(1))
    engine.algorithm("isl").prepare(q2(1))
    catalog.invalidate("part")
    catalog.invalidate("orders")
    catalog.invalidate("lineitem")
    return platform, catalog, cache, engine


class TestPlannerIntegration:
    def test_second_plan_is_a_cache_hit(self, planning_setup):
        _, _, cache, engine = planning_setup
        hits_before = cache.hits
        first = engine.planner.plan(q1(5))
        second = engine.planner.plan(q1(5))
        assert second is first  # the very same cached object
        assert cache.hits == hits_before + 1

    def test_distinct_shapes_get_distinct_entries(self, planning_setup):
        _, _, cache, engine = planning_setup
        plan_k5 = engine.planner.plan(q2(5))
        plan_k10 = engine.planner.plan(q2(10))
        assert plan_k5 is not plan_k10
        assert engine.planner.plan(q2(10)) is plan_k10

    def test_statistics_invalidation_forces_replan(self, planning_setup):
        _, catalog, cache, engine = planning_setup
        cached = engine.planner.plan(q1(7))
        catalog.invalidate("lineitem")  # what the interceptor calls
        invalidations_before = cache.invalidations
        replanned = engine.planner.plan(q1(7))
        assert replanned is not cached
        assert cache.invalidations == invalidations_before + 1

    def test_cached_plan_never_survives_index_drop(self, planning_setup):
        """Regression: dropping an index family must invalidate every plan
        priced while it was built — a stale plan would route queries to an
        index that no longer exists."""
        platform, _, cache, engine = planning_setup
        cached = engine.planner.plan(q1(9))
        assert cached.estimate("isl").notes == [] or True  # plan exists
        # the drop listener chain: Table.drop_family -> Store._notify_drop
        # -> StatisticsCatalog.on_store_drop -> version bump -> stale entry
        platform.store.backing(ISL_TABLE).drop_family(q1(9).left.signature)
        replanned = engine.planner.plan(q1(9))
        assert replanned is not cached
        # the replan priced ISL as unbuilt for the dropped side
        note_text = " ".join(replanned.estimate("isl").notes)
        assert "NOT built" in note_text
        # restore the family for the other module tests
        engine.algorithm("isl")._build_reports.pop(q1(9).left.signature, None)
        engine.algorithm("isl")._external_indexes.discard(q1(9).left.signature)
        engine.algorithm("isl").prepare(q1(1))
