"""Stress smoke tests for the serving layer (excluded from tier-1).

Run with ``python -m pytest -m stress tests/serving/test_stress.py``.
These are the heavier cousins of ``test_thread_safety.py`` /
``test_concurrent_queries.py``: more threads, more iterations, longer
churn windows.  They exist to shake out rare interleavings in CI's
non-blocking stress job, so they assert only invariants (no exceptions,
conservation of cells, bounded caches, bit-identical top-k) — not
timing.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.blobcache import DecodedBlobCache
from repro.core.bfhm.bucket import encode_blob
from repro.core.bfhm.updates import WriteBackPolicy
from repro.maintenance.interceptor import MaintainedRelation
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.serving import QueryServer
from repro.sketches.hybrid import HybridBloomFilter
from repro.store.client import Put, Scan
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch, part_binding
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2

pytestmark = pytest.mark.stress


def _loaded_engine(scale: float = 0.05, seed: int = 7) -> RankJoinEngine:
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=scale, seed=seed))
    engine = RankJoinEngine(
        platform, bfhm={"write_back": WriteBackPolicy.OFFLINE}
    )
    for name in ("isl", "bfhm"):
        engine.algorithm(name).prepare(q1(1))
        engine.algorithm(name).prepare(q2(1))
    return engine


class TestStoreStress:
    def test_many_writers_flushes_and_scanners(self):
        platform = Platform(EC2_PROFILE)
        htable = platform.store.create_table("stress", {"d"})
        writer_count, rows_per_thread = 8, 400
        failures: list = []

        def writer(worker: int) -> None:
            try:
                for index in range(rows_per_thread):
                    put = Put(f"w{worker:02d}r{index:06d}")
                    put.add("d", "q", b"y" * 48)
                    htable.put(put)
                    if index % 97 == 0:
                        htable.flush()
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        def scanner() -> None:
            try:
                for _ in range(60):
                    for row in htable.scan(Scan(families={"d"})):
                        assert row.row
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(writer_count)
        ] + [threading.Thread(target=scanner) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        total = sum(1 for _ in htable.scan(Scan(families={"d"})))
        assert total == writer_count * rows_per_thread


class TestBlobCacheStress:
    def test_large_hammer_keeps_invariants(self):
        payloads = []
        for index in range(96):
            bucket_filter = HybridBloomFilter(512)
            for item in range(index % 17 + 1):
                bucket_filter.insert(f"s-{index}-{item}")
            payloads.append(encode_blob(bucket_filter.to_blob()))
        cache = DecodedBlobCache(capacity=24)
        failures: list = []

        def hammer(seed: int) -> None:
            try:
                for op in range(1200):
                    decoded = cache.decode(
                        payloads[(seed * 131 + op * 17) % len(payloads)]
                    )
                    assert decoded.item_count > 0
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len(cache) <= 24


class TestServerStress:
    def test_many_clients_with_maintenance_churn(self):
        baseline = _loaded_engine()
        engine = _loaded_engine()
        server = QueryServer(engine.platform, workers=4, max_pending=256)
        try:
            workload = [
                (Q1_SQL.format(k=5), "isl"),
                (Q2_SQL.format(k=5), "isl"),
                (Q1_SQL.format(k=10), "bfhm"),
                (Q2_SQL.format(k=10), "auto"),
            ]
            expected = {}
            for sql, algorithm in workload:
                baseline.platform.reset_metrics()
                expected[(sql, algorithm)] = baseline.sql(
                    sql, algorithm=algorithm
                ).tuples
            maintained = MaintainedRelation(
                server.platform,
                part_binding(),
                maintain_isl=True,
                statistics_catalog=server.statistics,
            )
            rows = [
                (f"stresspart{i}", {"partkey": f"SP{i}", "retailprice": 1e-06})
                for i in range(16)
            ]
            stop = threading.Event()
            failures: list = []

            def churn() -> None:
                try:
                    for _ in range(6):
                        with server.maintenance("part"):
                            maintained.insert_batch(rows)
                        with server.maintenance("part"):
                            maintained.delete_batch([key for key, _ in rows])
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                finally:
                    stop.set()

            def client(seed: int) -> None:
                try:
                    count = 0
                    while not stop.is_set() or count < 4:
                        sql, algorithm = workload[(seed + count) % len(workload)]
                        served = server.execute(sql, algorithm)
                        assert served.error is None, served.error
                        assert served.result.tuples == expected[(sql, algorithm)]
                        count += 1
                        if count >= 40:
                            break
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

            clients = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(8)
            ]
            maint = threading.Thread(target=churn)
            for thread in clients:
                thread.start()
            maint.start()
            maint.join()
            for thread in clients:
                thread.join()
            assert not failures, failures
            stats = server.stats()
            assert stats["failed"] == 0
            assert stats["completed"] >= 8 * 4
        finally:
            server.close()
