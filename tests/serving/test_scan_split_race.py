"""Scan vs. auto-split race (stress): copy-on-write region rebinding.

A scan that races concurrent writers — whose flushes push regions over
``max_region_bytes`` and trigger auto-splits of exactly the key range
being scanned — must observe every visible row exactly once and in key
order.  ``StoreTable._try_split`` rebinds the region list copy-on-write,
so a scanner that routed against the old list keeps a consistent view
(the parent region still holds its data) while new scans route against
the daughters.

The writers only *rewrite* existing rows with fresh versions, so the
visible row set is a constant the scanners can assert exact equality
against.  Runs under the stress marker, which arms the locktrace fixture:
the run's lock acquisition-order graph is also checked for cycles.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.platform import Platform
from repro.store.client import Put, Scan

pytestmark = pytest.mark.stress

ROWS = 600
LIMIT = 120
KEYS = [f"r{i:06d}" for i in range(ROWS)]


def _build(num_servers: int = 1):
    platform = Platform(EC2_PROFILE, num_servers=num_servers)
    htable = platform.store.create_table(
        "race", {"d"}, max_region_bytes=4096
    )
    for key in KEYS:
        put = Put(key)
        put.add("d", "q", b"s" * 32)
        htable.put(put)
    htable.flush()
    return platform, htable


def _race(htable, scan_once, scan_rounds: int, failures: list) -> int:
    """Run 4 rewriter threads against 3 scanner threads until every
    scanner has done ``scan_rounds`` scans AND at least one auto-split
    has fired mid-race (30 s safety deadline); returns the number of
    regions gained while the race ran."""
    stop = threading.Event()
    rounds = [0, 0, 0]

    def rewriter(worker: int) -> None:
        # rewriting existing rows never changes the visible row set, but
        # every flush grows disk_size and drives auto-splits of the same
        # regions the scanners are traversing
        try:
            while not stop.is_set():
                for index in range(worker, ROWS, 4):
                    put = Put(KEYS[index])
                    put.add("d", "q", b"x" * 64)
                    htable.put(put)
                htable.flush()
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    def scanner(slot: int) -> None:
        try:
            while not stop.is_set():
                scan_once(rounds[slot])
                rounds[slot] += 1
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    regions_before = len(htable.table.regions)
    threads = [
        threading.Thread(target=rewriter, args=(worker,)) for worker in range(4)
    ] + [threading.Thread(target=scanner, args=(slot,)) for slot in range(3)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not failures:
        split_fired = len(htable.table.regions) > regions_before
        if split_fired and min(rounds) >= scan_rounds:
            break
        time.sleep(0.02)
    stop.set()
    for thread in threads:
        thread.join()
    return len(htable.table.regions) - regions_before


class TestScanSplitRace:
    def test_limited_scan_sees_each_visible_row_once_in_order(self):
        _, htable = _build()
        failures: list = []

        def scan_once(round_index: int) -> None:
            start_index = (round_index * 37) % (ROWS - LIMIT)
            observed = [
                row.row
                for row in htable.scan(
                    Scan(
                        start_row=KEYS[start_index],
                        limit=LIMIT,
                        families={"d"},
                    )
                )
            ]
            assert observed == KEYS[start_index : start_index + LIMIT]

        gained = _race(htable, scan_once, scan_rounds=40, failures=failures)
        assert not failures, failures
        assert gained > 0, "race window never produced an auto-split"

    def test_scatter_scan_race_on_multi_server_topology(self):
        _, htable = _build(num_servers=4)
        failures: list = []

        def scan_once(round_index: int) -> None:
            observed = [
                row.row
                for row in htable.scan(Scan(families={"d"}, scatter=True))
            ]
            assert observed == KEYS

        gained = _race(htable, scan_once, scan_rounds=25, failures=failures)
        assert not failures, failures
        assert gained > 0, "race window never produced an auto-split"
