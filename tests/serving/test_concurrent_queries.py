"""Concurrent serving produces results bit-identical to serialized runs.

Two platforms are built through the exact same code path (same data, same
index-build order), so their simulated state is identical.  One is served
concurrently through :class:`QueryServer`; the other executes the same
workload serialized on a plain engine, resetting the meters before each
query (which makes the per-query delta equal the scoped totals the server
reports).  Every query must match on top-k tuples AND on the full
simulated-cost snapshot — concurrency must not move a single Fig. 7/8
number.

MapReduce-running algorithms (Hive, IJLMR) consume shared simulator state
(the round-robin HDFS placement cursor, the timestamp counter), so the
server executes them FIFO in submission order on its exclusive thread —
the mixed-workload test pins that this keeps them bit-identical too.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.updates import WriteBackPolicy
from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.maintenance.interceptor import MaintainedRelation
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.serving import QueryServer
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch, part_binding
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2

SCALE = 0.05
SEED = 7
CLIENT_THREADS = 4

THREE_WAY_SQL = (
    "SELECT * FROM part P, lineitem L1, lineitem L2 "
    "WHERE P.partkey = L1.partkey AND L1.partkey = L2.partkey "
    "ORDER BY P.retailprice + L1.extendedprice + L2.discount "
    "STOP AFTER {k}"
)

#: store-read-only items: safe to serve in any concurrent interleaving
READONLY_WORKLOAD = [
    (Q1_SQL.format(k=k), algorithm)
    for k in (1, 5, 10)
    for algorithm in ("isl", "bfhm")
] + [
    (Q2_SQL.format(k=k), algorithm)
    for k in (1, 5, 10)
    for algorithm in ("isl", "bfhm")
] + [
    (THREE_WAY_SQL.format(k=5), "hrjn"),
    (THREE_WAY_SQL.format(k=10), "hrjn"),
]

#: mixed items: MapReduce (exclusive FIFO) queries interleaved with
#: read-only ones, submitted in order from one client
MIXED_WORKLOAD = [
    (Q1_SQL.format(k=5), "isl"),
    (Q1_SQL.format(k=5), "ijlmr"),
    (Q2_SQL.format(k=5), "bfhm"),
    (Q1_SQL.format(k=3), "hive"),
    (Q2_SQL.format(k=10), "auto"),
    (THREE_WAY_SQL.format(k=5), "hrjn"),
    (Q2_SQL.format(k=5), "ijlmr"),
    (Q1_SQL.format(k=10), "auto"),
]


def _build_loaded_engine() -> RankJoinEngine:
    """One platform + engine with the q1/q2 index families built.

    Both the served and the serialized platform go through this exact
    function so every piece of simulated state (region splits, placement
    cursor, timestamps) evolves identically.
    """
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=SCALE, seed=SEED))
    engine = RankJoinEngine(
        platform, bfhm={"write_back": WriteBackPolicy.OFFLINE}
    )
    for name in ("ijlmr", "isl", "bfhm"):
        engine.algorithm(name).prepare(q1(1))
        engine.algorithm(name).prepare(q2(1))
    return engine


def _serialized(engine: RankJoinEngine, workload):
    """Run ``workload`` one query at a time, metering each in isolation."""
    results = []
    for sql, algorithm in workload:
        engine.platform.reset_metrics()
        results.append(engine.sql(sql, algorithm=algorithm))
    return results


def _assert_same(served, expected) -> None:
    assert served.error is None, served.error
    result = served.result
    assert result.algorithm == expected.algorithm
    assert result.tuples == expected.tuples
    assert result.metrics == expected.metrics, (
        f"simulated metrics diverged for {served.sql!r} "
        f"({served.algorithm}): {result.metrics} != {expected.metrics}"
    )


@pytest.fixture(scope="module")
def serving_pair():
    """(QueryServer over platform A, plain engine over identical platform B)."""
    baseline = _build_loaded_engine()
    served_engine = _build_loaded_engine()
    server = QueryServer(served_engine.platform, workers=4)
    yield server, baseline
    server.close()


class TestConcurrentEqualsSerialized:
    def test_threaded_readonly_workload_is_bit_identical(self, serving_pair):
        """N client threads, interleaved submissions: every query's top-k
        and simulated metrics equal the serialized run's."""
        server, baseline = serving_pair
        expected = _serialized(baseline, READONLY_WORKLOAD)
        slots = [None] * len(READONLY_WORKLOAD)
        failures = []

        def client(offset: int) -> None:
            try:
                for index in range(offset, len(READONLY_WORKLOAD), CLIENT_THREADS):
                    sql, algorithm = READONLY_WORKLOAD[index]
                    slots[index] = server.execute(sql, algorithm)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        for served, expect in zip(slots, expected):
            _assert_same(served, expect)
        stats = server.stats()
        assert stats["failed"] == 0
        assert stats["reader_served"] >= len(READONLY_WORKLOAD)

    def test_mixed_mapreduce_workload_is_bit_identical(self, serving_pair):
        """MapReduce queries run FIFO on the exclusive thread; interleaved
        with concurrent read-only queries they still reproduce the
        serialized run bit for bit."""
        server, baseline = serving_pair
        expected = _serialized(baseline, MIXED_WORKLOAD)
        futures = [
            server.submit(sql, algorithm) for sql, algorithm in MIXED_WORKLOAD
        ]
        for future, expect in zip(futures, expected):
            _assert_same(future.result(), expect)
        stats = server.stats()
        assert stats["exclusive_served"] > 0
        assert stats["failed"] == 0

    def test_plan_cache_serves_repeated_auto_shapes(self, serving_pair):
        server, _ = serving_pair
        hits_before = server.plan_cache.hits
        for _ in range(5):
            served = server.execute(Q1_SQL.format(k=5))
            assert served.error is None
        assert server.plan_cache.hits >= hits_before + 4


class TestMaintenanceConcurrency:
    def test_queries_stay_correct_under_concurrent_mutations(self):
        """Read-only queries race insert_batch/delete_batch maintenance;
        the write-preferring lock means every query sees a consistent
        snapshot, and low-scoring mutations never change the top-k."""
        baseline = _build_loaded_engine()
        served_engine = _build_loaded_engine()
        server = QueryServer(served_engine.platform, workers=4)
        try:
            expected = baseline.sql(Q1_SQL.format(k=5), algorithm="isl")
            maintained = MaintainedRelation(
                server.platform,
                part_binding(),
                maintain_isl=True,
                statistics_catalog=server.statistics,
            )
            rows = [
                (f"maintpart{i}", {"partkey": f"MP{i}", "retailprice": 1e-06})
                for i in range(8)
            ]
            stop = threading.Event()
            failures: list = []

            def churn() -> None:
                try:
                    for _ in range(3):
                        with server.maintenance("part"):
                            maintained.insert_batch(rows)
                        with server.maintenance("part"):
                            maintained.delete_batch([key for key, _ in rows])
                finally:
                    stop.set()

            def query_loop() -> None:
                try:
                    while not stop.is_set():
                        served = server.execute(
                            Q1_SQL.format(k=5), algorithm="isl"
                        )
                        assert served.result.tuples == expected.tuples
                except Exception as exc:  # pragma: no cover - surfaced below
                    failures.append(exc)

            workers = [threading.Thread(target=query_loop) for _ in range(3)]
            maint = threading.Thread(target=churn)
            for thread in workers:
                thread.start()
            maint.start()
            maint.join()
            for thread in workers:
                thread.join()
            assert not failures, failures
            # the interceptor + maintenance() hooks bumped the versions the
            # plan cache validates against
            assert server.statistics.table_version("part") > 0
            final = server.execute(Q1_SQL.format(k=5), algorithm="isl")
            assert final.result.tuples == expected.tuples
        finally:
            server.close()


class TestAdmissionControl:
    @pytest.fixture()
    def small_server(self):
        engine = _build_loaded_engine()
        server = QueryServer(engine.platform, workers=1, max_pending=2)
        yield server
        server.close()

    def test_overload_sheds_with_pending_counts(self, small_server):
        server = small_server
        with server.maintenance():  # stall the pools behind the write lock
            first = server.submit(Q1_SQL.format(k=5), "isl")
            second = server.submit(Q2_SQL.format(k=5), "isl")
            with pytest.raises(ServerOverloadedError) as excinfo:
                server.submit(Q1_SQL.format(k=1), "isl")
            assert excinfo.value.pending == 2
            assert excinfo.value.limit == 2
        assert first.result().error is None
        assert second.result().error is None
        assert server.stats()["shed"] == 1

    def test_deadline_counts_lock_wait_as_queue_time(self, small_server):
        server = small_server
        with server.maintenance():
            future = server.submit(
                Q1_SQL.format(k=5), "isl", deadline_s=0.02
            )
            threading.Event().wait(0.08)  # hold the write lock past it
        served = future.result()
        assert isinstance(served.error, DeadlineExceededError)
        assert served.waited_s > 0.02
        assert server.stats()["deadline_rejects"] == 1

    def test_budget_rejects_at_submit_time(self, small_server):
        server = small_server
        with pytest.raises(BudgetExceededError) as excinfo:
            server.submit(Q1_SQL.format(k=5), "isl", budget=0.0)
        assert excinfo.value.objective == "time"
        assert server.stats()["budget_rejects"] == 1
        # a generous budget admits the same query
        served = server.execute(Q1_SQL.format(k=5), "isl", budget=1e12)
        assert served.error is None

    def test_closed_server_rejects_submissions(self):
        engine = _build_loaded_engine()
        server = QueryServer(engine.platform, workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(Q1_SQL.format(k=1), "isl")
