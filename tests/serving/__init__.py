"""Serving-layer tests: concurrency, plan cache, thread safety."""
