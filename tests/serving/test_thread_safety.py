"""Regression tests for latent thread-unsafety fixed for the serving layer.

Each test here documents a race that existed before the serving work:

* ``DecodedBlobCache`` mutated its LRU ``OrderedDict`` (move_to_end /
  popitem) without a lock — concurrent decodes tore the dict;
* ``StatisticsCatalog`` could cache a statistics gather that raced a
  maintenance invalidation, leaving permanently stale row counts;
* the store's memtable/region write path appended to lists concurrently
  iterated by scanners.

The hammers are deterministic-enough to fail (often, not always) on the
unfixed code and never on the fixed code; the stress markers in
``test_stress.py`` run the same shapes much harder.
"""

from __future__ import annotations

import threading

import repro.query.statistics as statistics_module
from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.blobcache import DecodedBlobCache
from repro.core.bfhm.bucket import encode_blob
from repro.platform import Platform
from repro.query.statistics import StatisticsCatalog
from repro.sketches.hybrid import HybridBloomFilter
from repro.store.client import Put, Scan
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch, part_binding

NUM_BLOBS = 48
CACHE_CAPACITY = 16
THREADS = 8
OPS_PER_THREAD = 150


def _blob_payloads(count: int) -> "list[bytes]":
    payloads = []
    for index in range(count):
        bucket_filter = HybridBloomFilter(512)
        for item in range(index + 1):
            bucket_filter.insert(f"value-{index}-{item}")
        payloads.append(encode_blob(bucket_filter.to_blob()))
    return payloads


class TestBlobCacheConcurrency:
    def test_concurrent_decodes_keep_lru_invariants(self):
        """Pre-fix, concurrent move_to_end/popitem corrupted the dict (lost
        entries, KeyError, size overshoot).  Post-fix: no exceptions, size
        bounded by capacity, every decode accounted as a hit or a miss."""
        payloads = _blob_payloads(NUM_BLOBS)
        cache = DecodedBlobCache(capacity=CACHE_CAPACITY)
        failures: list = []

        def hammer(seed: int) -> None:
            try:
                for op in range(OPS_PER_THREAD):
                    raw = payloads[(seed * 31 + op * 7) % NUM_BLOBS]
                    decoded = cache.decode(raw)
                    assert decoded.item_count > 0
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len(cache) <= CACHE_CAPACITY
        # racing threads may decode the same payload twice (by design: the
        # decode runs outside the lock), so hits+misses >= total ops and
        # misses stays small relative to the op count
        assert cache.hits + cache.misses >= THREADS * OPS_PER_THREAD

    def test_decode_returns_equal_filters_for_same_payload(self):
        payloads = _blob_payloads(4)
        cache = DecodedBlobCache(capacity=4)
        first = cache.decode(payloads[2])
        second = cache.decode(payloads[2])
        assert first is not second  # callers mutate their copies
        assert first.counters == second.counters
        assert first.item_count == second.item_count


class TestStatisticsCatalogRaces:
    def test_stale_gather_is_served_but_never_cached(self, monkeypatch):
        """Pre-fix, a gather racing an invalidation landed in the cache and
        the catalog kept pricing from pre-mutation statistics forever."""
        platform = Platform(EC2_PROFILE)
        load_tpch(platform.store, generate(micro_scale=0.05, seed=7))
        catalog = StatisticsCatalog(platform)
        binding = part_binding()
        real_gather = statistics_module.gather_statistics

        def racing_gather(platform_, binding_, num_buckets):
            stats = real_gather(platform_, binding_, num_buckets)
            # maintenance lands while the gather is still in flight
            catalog.invalidate(binding_.table)
            return stats

        monkeypatch.setattr(
            statistics_module, "gather_statistics", racing_gather
        )
        stats = catalog.stats_for(binding)
        assert stats.row_count > 0  # the caller still gets usable stats
        assert catalog.cached_signatures == []  # ...but nothing was cached
        monkeypatch.setattr(statistics_module, "gather_statistics", real_gather)
        fresh = catalog.stats_for(binding)
        assert fresh.row_count == stats.row_count
        assert catalog.cached_signatures == [binding.signature]

    def test_concurrent_stats_for_caches_exactly_one_entry(self):
        platform = Platform(EC2_PROFILE)
        load_tpch(platform.store, generate(micro_scale=0.05, seed=7))
        catalog = StatisticsCatalog(platform)
        binding = part_binding()
        results: list = []
        failures: list = []

        def gather() -> None:
            try:
                results.append(catalog.stats_for(binding))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=gather) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len({id(stats) for stats in results}) >= 1
        assert all(
            stats.row_count == results[0].row_count for stats in results
        )
        assert catalog.cached_signatures == [binding.signature]

    def test_drop_listener_bumps_base_table_version(self):
        platform = Platform(EC2_PROFILE)
        platform.store.create_table("part", {"d"})
        platform.store.create_table("idx", {"part__a__b"})
        catalog = StatisticsCatalog(platform)
        before = catalog.table_version("part")
        platform.store.backing("idx").drop_family("part__a__b")
        assert catalog.table_version("part") == before + 1


class TestStoreWritePathConcurrency:
    def test_writers_and_scanners_share_a_table(self):
        """Concurrent put_batch (flushes included) with full scans: pre-fix
        the memtable's list mutation tore open iterators and the
        publish-then-drain flush window lost cells."""
        platform = Platform(EC2_PROFILE)
        htable = platform.store.create_table("conc", {"d"})
        rows_per_thread = 120
        writer_count = 4
        failures: list = []

        def writer(worker: int) -> None:
            try:
                for index in range(rows_per_thread):
                    put = Put(f"w{worker:02d}r{index:05d}")
                    put.add("d", "q", b"x" * 64)
                    htable.put(put)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        def scanner() -> None:
            try:
                for _ in range(25):
                    seen = 0
                    for row in htable.scan(Scan(families={"d"})):
                        assert row.row
                        seen += 1
                    assert seen >= 0
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(writer_count)
        ] + [threading.Thread(target=scanner) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        total = sum(1 for _ in htable.scan(Scan(families={"d"})))
        assert total == writer_count * rows_per_thread
