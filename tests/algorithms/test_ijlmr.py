"""IJLMR: index layout (Fig. 2) and the single-job rank join (§4.1)."""

from repro.common.serialization import decode_float
from repro.core.indexes import IJLMR_TABLE
from repro.relational.binding import load_relation
from repro.tpch.queries import q1


class TestIndexLayout:
    def test_index_rows_keyed_by_join_value(self, shared_setup):
        """One index row per distinct join value, entries = (rowkey, score)."""
        store = shared_setup.platform.store
        query = q1(1)
        relation = load_relation(store, query.left)
        index = store.backing(IJLMR_TABLE)

        by_value = {}
        for row in relation:
            by_value.setdefault(row.join_value, {})[row.row_key] = row.score
        for join_value, expected in by_value.items():
            stored = index.read_row(join_value, families={query.left.signature})
            got = {
                cell.qualifier: decode_float(cell.value)
                for cell in stored.family_cells(query.left.signature)
            }
            assert got == expected

    def test_families_colocated_in_one_table(self, shared_setup):
        """Both relations' index entries for a join value share one row
        (the §4.1.1 co-location property)."""
        store = shared_setup.platform.store
        query = q1(1)
        index = store.backing(IJLMR_TABLE)
        left_values = {r.join_value for r in load_relation(store, query.left)}
        right_values = {r.join_value for r in load_relation(store, query.right)}
        common = sorted(left_values & right_values)
        assert common, "workload must have joinable values"
        row = index.read_row(common[0])
        assert {query.left.signature, query.right.signature} <= row.families()

    def test_index_smaller_than_base_table(self, shared_setup):
        """The IJLMR index is a space-optimized inverted list."""
        store = shared_setup.platform.store
        base = store.backing("lineitem").disk_size
        index = store.backing(IJLMR_TABLE).disk_size
        assert index < base


class TestQueryExecution:
    def test_single_mapreduce_job(self, shared_setup):
        """Exactly one MR job (vs Hive's 2 and Pig's 3): time is one
        startup plus the scan."""
        result = shared_setup.engine.execute(q1(10), algorithm="ijlmr")
        model = shared_setup.platform.cost_model
        assert result.metrics.sim_time_s >= model.mr_job_startup_s
        assert result.metrics.sim_time_s < 2 * model.mr_job_startup_s + 60

    def test_scans_whole_index_for_dollar_cost(self, shared_setup):
        """§4.1.2: mappers still scan the entire input dataset (the two
        column families this query joins)."""
        query = q1(5)
        result = shared_setup.engine.execute(query, algorithm="ijlmr")
        index = shared_setup.platform.store.backing(IJLMR_TABLE)
        families = {query.left.signature, query.right.signature}
        query_cells = sum(
            len(row) for row in index.all_rows(families=families)
        )
        assert result.metrics.kv_reads >= query_cells

    def test_only_topk_lists_cross_network(self, shared_setup):
        """Shuffle carries local top-k lists, not the join result."""
        k = 5
        result = shared_setup.engine.execute(q1(k), algorithm="ijlmr")
        pairs = result.details.get("join_pairs", 0)
        assert pairs > k  # mappers examined far more than they emitted
        # bandwidth is far below Hive's full-materialization approach
        hive = shared_setup.engine.execute(q1(k), algorithm="hive")
        assert result.metrics.network_bytes < hive.metrics.network_bytes / 10

    def test_details_exposed(self, shared_setup):
        result = shared_setup.engine.execute(q1(3), algorithm="ijlmr")
        assert result.details["map_tasks"] >= 1
