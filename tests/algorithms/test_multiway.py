"""N-way rank joins (§3's multi-way extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.common.functions import (
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
)
from repro.common.multiway import MultiJoinTuple, combine_rows
from repro.common.serialization import encode_float, encode_str
from repro.common.types import ScoredRow
from repro.core.bfhm.multi import BFHMCascadeRankJoin, stage_functions
from repro.core.hrjn_multi import (
    MultiWayHRJN,
    MultiWayHRJNRankJoin,
    hrjn_join_multi,
)
from repro.core.isl_multi import MultiRankJoinQuery, MultiWayISLRankJoin
from repro.errors import QueryError
from repro.platform import Platform
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.relational.multiway import full_join_multi, naive_rank_join_multi
from repro.store.client import Put


def rows(specs, prefix):
    return [ScoredRow(f"{prefix}{i}", v, s) for i, (v, s) in enumerate(specs)]


class TestMultiJoinTuple:
    def test_combine_rows(self):
        t = combine_rows(
            [ScoredRow("a1", "x", 0.5), ScoredRow("b1", "x", 0.25),
             ScoredRow("c1", "x", 0.25)],
            SumFunction(),
        )
        assert t.score == pytest.approx(1.0)
        assert t.keys == ("a1", "b1", "c1")
        assert t.arity == 3

    def test_mismatched_join_values_rejected(self):
        with pytest.raises(ValueError):
            combine_rows(
                [ScoredRow("a1", "x", 0.5), ScoredRow("b1", "y", 0.5)],
                SumFunction(),
            )


class TestNaiveMultiway:
    def test_three_way_join(self):
        r1 = rows([("a", 0.9), ("b", 0.5)], "x")
        r2 = rows([("a", 0.8), ("a", 0.2)], "y")
        r3 = rows([("a", 0.7), ("c", 0.9)], "z")
        results = full_join_multi([r1, r2, r3], SumFunction())
        # only 'a' appears in all three: 1 x 2 x 1 combinations
        assert len(results) == 2
        assert max(t.score for t in results) == pytest.approx(0.9 + 0.8 + 0.7)

    def test_degenerate_arity_rejected(self):
        with pytest.raises(QueryError):
            full_join_multi([rows([("a", 1.0)], "x")], SumFunction())

    def test_two_way_reduces_to_pairwise(self):
        from repro.relational.naive import naive_rank_join

        r1 = rows([("a", 0.9), ("b", 0.5), ("a", 0.1)], "x")
        r2 = rows([("a", 0.8), ("b", 0.7)], "y")
        multi = naive_rank_join_multi([r1, r2], SumFunction(), 3)
        pair = naive_rank_join(r1, r2, SumFunction(), 3)
        assert [t.score for t in multi] == pytest.approx(
            [t.score for t in pair]
        )


class TestMultiWayHRJN:
    def test_threshold_generalizes(self):
        operator = MultiWayHRJN(3, SumFunction(), 1)
        operator.add(0, ScoredRow("a", "v", 0.9))
        operator.add(1, ScoredRow("b", "w", 0.8))
        operator.add(2, ScoredRow("c", "u", 0.7))
        operator.add(0, ScoredRow("a2", "t", 0.5))
        # S = max(f(0.5,0.8,0.7), f(0.9,0.8,0.7)x with one lowered...)
        assert operator.threshold() == pytest.approx(
            max(0.5 + 0.8 + 0.7, 0.9 + 0.8 + 0.7, 0.9 + 0.8 + 0.7)
        )

    def test_invalid_arity_and_index(self):
        with pytest.raises(QueryError):
            MultiWayHRJN(1, SumFunction(), 1)
        operator = MultiWayHRJN(2, SumFunction(), 1)
        with pytest.raises(QueryError):
            operator.add(5, ScoredRow("a", "v", 0.5))

    relation = st.lists(
        st.tuples(st.sampled_from("abcd"),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=0, max_size=15,
    )

    @given(relation, relation, relation, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_three_way_matches_naive(self, s1, s2, s3, k):
        relations = [rows(s1, "x"), rows(s2, "y"), rows(s3, "z")]
        results, _ = hrjn_join_multi(relations, SumFunction(), k)
        truth = naive_rank_join_multi(relations, SumFunction(), k)
        assert [round(t.score, 9) for t in results] == [
            round(t.score, 9) for t in truth
        ]

    def test_early_termination(self):
        relations = [
            rows([("hit", 1.0)] + [(f"v{i}", 0.4 - i / 1000)
                                   for i in range(100)], p)
            for p in ("x", "y", "z")
        ]
        _, seen = hrjn_join_multi(relations, SumFunction(), 1)
        assert sum(seen) < 30


class TestMultiWayISL:
    @pytest.fixture()
    def three_day_logs(self):
        """Three per-day log tables (the §1 motivating scenario, n=3)."""
        setup = build_setup(EC2_PROFILE, micro_scale=0.05, seed=5)
        import random

        rng = random.Random(3)
        store = setup.platform.store
        phrases = [f"phrase-{i:03d}" for i in range(40)]
        for day in ("day1", "day2", "day3"):
            htable = store.create_table(day, {"d"})
            for i, phrase in enumerate(phrases):
                if i > 0 and rng.random() < 0.2:
                    continue  # not every phrase appears every day
                # phrase-000 tops every day: the top-1 join is found early
                score = 1.0 if i == 0 else round(rng.uniform(0.01, 0.9), 6)
                htable.put(
                    Put(f"{day}-{i:04d}")
                    .add("d", "phrase", encode_str(phrase))
                    .add("d", "freq", encode_float(score))
                )
            htable.flush()
        inputs = [
            RelationBinding(day, join_column="phrase", score_column="freq")
            for day in ("day1", "day2", "day3")
        ]
        return setup, MultiRankJoinQuery.of(inputs, "sum", 5)

    def test_three_way_isl_matches_naive(self, three_day_logs):
        setup, query = three_day_logs
        from repro.relational.binding import load_relation

        relations = [
            load_relation(setup.platform.store, binding)
            for binding in query.inputs
        ]
        truth = naive_rank_join_multi(relations, query.function, query.k)
        algorithm = MultiWayISLRankJoin(setup.platform)
        result = algorithm.execute(query)
        assert result.recall_against(truth) == 1.0
        assert result.scores() == pytest.approx([t.score for t in truth])

    def test_early_termination_saves_reads(self, three_day_logs):
        setup, query = three_day_logs
        algorithm = MultiWayISLRankJoin(setup.platform, batch_rows=4)
        from dataclasses import replace

        query = replace(query, k=1)  # a perfect top-1 terminates shallow
        result = algorithm.execute(query)
        total_rows = sum(
            len(list(setup.platform.store.backing(b.table).all_rows()))
            for b in query.inputs
        )
        seen = sum(
            v for name, v in result.details.items()
            if name.startswith("tuples_seen_")
        )
        assert seen < total_rows

    def test_query_validation(self):
        with pytest.raises(QueryError):
            MultiRankJoinQuery.of(
                [RelationBinding("only", join_column="j", score_column="s")],
                "sum", 1,
            )
        with pytest.raises(QueryError):
            MultiRankJoinQuery.of(
                [RelationBinding("a", join_column="j", score_column="s"),
                 RelationBinding("b", join_column="j", score_column="s")],
                "sum", 0,
            )


# ---------------------------------------------------------------------------
# n-way correctness: operators vs the naive ground truth (arities 2-4)
# ---------------------------------------------------------------------------


def _make_relations(arity: int, shape: str) -> "list[list[ScoredRow]]":
    """Deterministic relation sets exercising ties, empty overlaps, and
    empty-string join values alongside the generic random case."""
    import random

    rng = random.Random(100 + arity)
    values = [f"v{i}" for i in range(6)]
    if shape == "random":
        return [
            rows(
                [(rng.choice(values), round(rng.uniform(0.01, 1.0), 6))
                 for _ in range(14)],
                prefix=f"r{side}_",
            )
            for side in range(arity)
        ]
    if shape == "ties":
        # many identical scores and repeated join values: top-k boundaries
        # fall inside tie groups on every side
        return [
            rows(
                [(values[i % 3], (0.75 if i % 2 else 0.5)) for i in range(10)],
                prefix=f"t{side}_",
            )
            for side in range(arity)
        ]
    if shape == "empty-overlap":
        # the last relation shares no join values: the n-way join is empty
        relations = [
            rows(
                [(rng.choice(values), round(rng.uniform(0.1, 0.9), 6))
                 for _ in range(8)],
                prefix=f"e{side}_",
            )
            for side in range(arity - 1)
        ]
        relations.append(
            rows([("nowhere", 0.9), ("also-nowhere", 0.3)], prefix="last_")
        )
        return relations
    if shape == "empty-string-values":
        # "" is a legitimate join value and must join like any other
        return [
            rows([("", 0.9), (values[0], 0.6), ("", 0.2)], prefix=f"s{side}_")
            for side in range(arity)
        ]
    raise AssertionError(shape)


SHAPES = ["random", "ties", "empty-overlap", "empty-string-values"]


def _load_tables(platform: Platform, relations) -> "list[RelationBinding]":
    bindings = []
    for index, relation in enumerate(relations):
        name = f"rel{index}"
        htable = platform.store.create_table(name, {"d"})
        for row in relation:
            htable.put(
                Put(row.row_key)
                .add("d", "j", encode_str(row.join_value))
                .add("d", "s", encode_float(row.score))
            )
        htable.flush()
        bindings.append(
            RelationBinding(name, join_column="j", score_column="s",
                            alias=f"R{index}")
        )
    return bindings


class TestNWayCorrectness:
    """Cross-check the n-way operators against naive_rank_join_multi."""

    @pytest.mark.parametrize("arity", [2, 3, 4])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_hrjn_matches_naive(self, arity, shape):
        relations = _make_relations(arity, shape)
        function = SumFunction()
        for k in (1, 5):
            truth = naive_rank_join_multi(relations, function, k)
            results, _ = hrjn_join_multi(relations, function, k)
            assert [round(t.score, 9) for t in results] == [
                round(t.score, 9) for t in truth
            ], (arity, shape, k)

    @pytest.mark.parametrize("arity", [2, 3, 4])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_bfhm_cascade_matches_naive(self, arity, shape):
        relations = _make_relations(arity, shape)
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, relations)
        function = SumFunction()
        k = 5
        truth = naive_rank_join_multi(relations, function, k)
        algorithm = BFHMCascadeRankJoin(platform)
        result = algorithm.execute(
            RankJoinQuery(inputs=tuple(bindings), function=function, k=k)
        )
        assert result.recall_against(truth) == 1.0, (arity, shape)
        assert [round(t.score, 9) for t in result.tuples] == [
            round(t.score, 9) for t in truth
        ], (arity, shape)

    @pytest.mark.parametrize("function", [
        ProductFunction(), MaxFunction(), MinFunction(),
        WeightedSumFunction([0.5, 1.0, 2.0]),
    ])
    def test_bfhm_cascade_other_functions(self, function):
        relations = _make_relations(3, "random")
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, relations)
        truth = naive_rank_join_multi(relations, function, 4)
        algorithm = BFHMCascadeRankJoin(platform)
        result = algorithm.execute(
            RankJoinQuery(inputs=tuple(bindings), function=function, k=4)
        )
        assert result.recall_against(truth) == 1.0
        assert result.scores() == pytest.approx([t.score for t in truth])

    def test_hrjn_pipeline_matches_naive(self):
        relations = _make_relations(3, "random")
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, relations)
        function = SumFunction()
        truth = naive_rank_join_multi(relations, function, 5)
        algorithm = MultiWayHRJNRankJoin(platform)
        result = algorithm.execute(
            RankJoinQuery(inputs=tuple(bindings), function=function, k=5)
        )
        assert result.recall_against(truth) == 1.0
        assert result.metrics.kv_reads > 0  # the scans are metered

    def test_cascade_repair_loop_expands_truncated_stages(self):
        """A pair pruned from an intermediate top-k' must be recovered
        when its completion with a later relation beats the final top-k:
        R1⋈R2 ranks (a) above (b), but only (b) has a huge R3 partner."""
        r1 = rows([("a", 0.9), ("b", 0.8)], "x")
        r2 = rows([("a", 0.9), ("b", 0.8)], "y")
        r3 = rows([("b", 1.0), ("a", 0.001)], "z")
        # partials: a = 1.8 > b = 1.6, so a truncated stage-1 top-1 keeps
        # only (a); totals: b = 2.6 > a = 1.801, so the final winner is the
        # pruned pair — only the repair loop can recover it
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, [r1, r2, r3])
        function = SumFunction()
        truth = naive_rank_join_multi([r1, r2, r3], function, 1)
        assert truth[0].join_value == "b"
        algorithm = BFHMCascadeRankJoin(platform)
        result = algorithm.execute(
            RankJoinQuery(inputs=tuple(bindings), function=function, k=1)
        )
        assert result.scores() == pytest.approx([t.score for t in truth])
        assert result.recall_against(truth) == 1.0
        assert result.details["cascade_rounds"] >= 1


class TestNWayGuards:
    def test_binary_algorithms_reject_higher_arity(self):
        """A two-way algorithm must not silently join only the first two
        inputs of an n-ary query (direct use bypasses engine dispatch)."""
        from repro.core.bfhm.algorithm import BFHMRankJoin

        relations = _make_relations(3, "random")
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, relations)
        query = RankJoinQuery(inputs=tuple(bindings),
                              function=SumFunction(), k=3)
        with pytest.raises(QueryError):
            BFHMRankJoin(platform).execute(query)

    def test_cascade_cleans_up_temp_state(self):
        """Temp tables, build reports, and update-manager metas of the
        materialized intermediates must not accumulate across queries."""
        relations = _make_relations(3, "random")
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, relations)
        algorithm = BFHMCascadeRankJoin(platform)
        query = RankJoinQuery(inputs=tuple(bindings),
                              function=SumFunction(), k=3)
        for _ in range(2):
            algorithm.execute(query)
        leaked_tables = [
            name for name in platform.store.table_names()
            if name.startswith("bfhm_cascade_tmp_")
        ]
        assert leaked_tables == []
        manager = algorithm._binary.update_manager
        assert not [
            key for key in manager._metas if key.startswith("bfhm_cascade_tmp_")
        ]
        assert not [
            key for key in algorithm._binary._build_reports
            if key.startswith("bfhm_cascade_tmp_")
        ]
        # the intermediates' BFHM families (blob/reverse/meta rows in the
        # shared index table) must be physically dropped too
        from repro.core.indexes import BFHM_TABLE

        backing = platform.store.backing(BFHM_TABLE)
        assert not [
            family for family in backing.families
            if family.startswith("bfhm_cascade_tmp_")
        ]
        for row in backing.all_rows():
            assert not [
                cell for cell in row
                if cell.family.startswith("bfhm_cascade_tmp_")
            ], row.row

    def test_cascade_handles_separator_in_row_keys(self):
        """Base row keys containing the composition separator must not
        collide in the intermediate expansion."""
        r1 = [ScoredRow("x", "a", 0.9), ScoredRow("x|y", "a", 0.8)]
        r2 = [ScoredRow("y|z", "a", 0.7), ScoredRow("z", "a", 0.6)]
        r3 = [ScoredRow("w", "a", 0.5)]
        platform = Platform(EC2_PROFILE)
        bindings = _load_tables(platform, [r1, r2, r3])
        function = SumFunction()
        truth = naive_rank_join_multi([r1, r2, r3], function, 4)
        algorithm = BFHMCascadeRankJoin(platform)
        result = algorithm.execute(
            RankJoinQuery(inputs=tuple(bindings), function=function, k=4)
        )
        assert result.scores() == pytest.approx([t.score for t in truth])
        # each result's component keys reconstruct the original rows
        keysets = {t.keys for t in result.tuples}
        assert ("x", "y|z", "w") in keysets
        assert ("x|y", "z", "w") in keysets

    def test_ambiguous_positional_bindings_rejected(self):
        bindings = [
            RelationBinding(f"t{i}", join_column="j", score_column="s")
            for i in range(3)
        ]
        with pytest.raises(TypeError):
            RankJoinQuery(bindings[0], bindings[1], bindings[2],
                          SumFunction(), 1)


class TestCascadeStageAlgebra:
    """stage_functions must decompose exactly: composing the per-stage
    binary aggregates (with normalization) reproduces the n-ary score."""

    @pytest.mark.parametrize("arity", [2, 3, 4, 5])
    @pytest.mark.parametrize("function", [
        SumFunction(), ProductFunction(), MaxFunction(), MinFunction(),
    ])
    def test_composition_identity(self, arity, function):
        import random

        rng = random.Random(7)
        fn = function
        stages = stage_functions(fn, arity)
        for _ in range(25):
            scores = [rng.uniform(0.0, 1.0) for _ in range(arity)]
            partial = scores[0]
            for j, (stage_fn, _) in enumerate(stages):
                if j == 0:
                    stored = partial
                else:
                    upper = stages[j - 1][1]
                    stored = partial / (upper if upper > 0 else 1.0)
                partial = stage_fn(stored, scores[j + 1])
            assert partial == pytest.approx(fn.combine(scores), abs=1e-9)

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_weighted_sum_composition(self, arity):
        import random

        rng = random.Random(11)
        weights = [rng.uniform(0.0, 2.0) for _ in range(arity)]
        fn = WeightedSumFunction(weights)
        stages = stage_functions(fn, arity)
        for _ in range(25):
            scores = [rng.uniform(0.0, 1.0) for _ in range(arity)]
            partial = scores[0]
            for j, (stage_fn, _) in enumerate(stages):
                if j == 0:
                    stored = partial
                else:
                    upper = stages[j - 1][1]
                    stored = partial / (upper if upper > 0 else 1.0)
                partial = stage_fn(stored, scores[j + 1])
            assert partial == pytest.approx(fn.combine(scores), abs=1e-9)

    def test_undecomposable_function_rejected(self):
        from repro.common.functions import AggregateFunction

        class Opaque(AggregateFunction):
            name = "opaque"

            def combine(self, scores):
                return min(1.0, sum(scores))

        with pytest.raises(QueryError):
            stage_functions(Opaque(), 3)


class TestGeneralizedThresholdBound:
    """The n-way threshold S = max_i f(tops with slot i at the frontier)
    upper-bounds every join tuple produced after the moment S was read."""

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_threshold_dominates_future_results(self, arity):
        relations = [
            sorted(relation, key=lambda r: (-r.score, r.row_key))
            for relation in _make_relations(arity, "random")
        ]
        function = SumFunction()
        operator = MultiWayHRJN(arity, function, k=3)
        positions = [0] * arity
        log = []  # (threshold at time t, scores produced after t)
        side = 0
        while any(positions[s] < len(relations[s]) for s in range(arity)):
            while positions[side] >= len(relations[side]):
                side = (side + 1) % arity
            produced = operator.add(side, relations[side][positions[side]])
            positions[side] += 1
            threshold = operator.threshold()
            for entry in log:
                entry[1].extend(t.score for t in produced)
            if threshold is not None:
                log.append((threshold, []))
            side = (side + 1) % arity
        for threshold, later_scores in log:
            for score in later_scores:
                assert score <= threshold + 1e-9
