"""N-way rank joins (§3's multi-way extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.common.functions import SumFunction
from repro.common.multiway import MultiJoinTuple, combine_rows
from repro.common.serialization import encode_float, encode_str
from repro.common.types import ScoredRow
from repro.core.hrjn_multi import MultiWayHRJN, hrjn_join_multi
from repro.core.isl_multi import MultiRankJoinQuery, MultiWayISLRankJoin
from repro.errors import QueryError
from repro.relational.binding import RelationBinding
from repro.relational.multiway import full_join_multi, naive_rank_join_multi
from repro.store.client import Put


def rows(specs, prefix):
    return [ScoredRow(f"{prefix}{i}", v, s) for i, (v, s) in enumerate(specs)]


class TestMultiJoinTuple:
    def test_combine_rows(self):
        t = combine_rows(
            [ScoredRow("a1", "x", 0.5), ScoredRow("b1", "x", 0.25),
             ScoredRow("c1", "x", 0.25)],
            SumFunction(),
        )
        assert t.score == pytest.approx(1.0)
        assert t.keys == ("a1", "b1", "c1")
        assert t.arity == 3

    def test_mismatched_join_values_rejected(self):
        with pytest.raises(ValueError):
            combine_rows(
                [ScoredRow("a1", "x", 0.5), ScoredRow("b1", "y", 0.5)],
                SumFunction(),
            )


class TestNaiveMultiway:
    def test_three_way_join(self):
        r1 = rows([("a", 0.9), ("b", 0.5)], "x")
        r2 = rows([("a", 0.8), ("a", 0.2)], "y")
        r3 = rows([("a", 0.7), ("c", 0.9)], "z")
        results = full_join_multi([r1, r2, r3], SumFunction())
        # only 'a' appears in all three: 1 x 2 x 1 combinations
        assert len(results) == 2
        assert max(t.score for t in results) == pytest.approx(0.9 + 0.8 + 0.7)

    def test_degenerate_arity_rejected(self):
        with pytest.raises(QueryError):
            full_join_multi([rows([("a", 1.0)], "x")], SumFunction())

    def test_two_way_reduces_to_pairwise(self):
        from repro.relational.naive import naive_rank_join

        r1 = rows([("a", 0.9), ("b", 0.5), ("a", 0.1)], "x")
        r2 = rows([("a", 0.8), ("b", 0.7)], "y")
        multi = naive_rank_join_multi([r1, r2], SumFunction(), 3)
        pair = naive_rank_join(r1, r2, SumFunction(), 3)
        assert [t.score for t in multi] == pytest.approx(
            [t.score for t in pair]
        )


class TestMultiWayHRJN:
    def test_threshold_generalizes(self):
        operator = MultiWayHRJN(3, SumFunction(), 1)
        operator.add(0, ScoredRow("a", "v", 0.9))
        operator.add(1, ScoredRow("b", "w", 0.8))
        operator.add(2, ScoredRow("c", "u", 0.7))
        operator.add(0, ScoredRow("a2", "t", 0.5))
        # S = max(f(0.5,0.8,0.7), f(0.9,0.8,0.7)x with one lowered...)
        assert operator.threshold() == pytest.approx(
            max(0.5 + 0.8 + 0.7, 0.9 + 0.8 + 0.7, 0.9 + 0.8 + 0.7)
        )

    def test_invalid_arity_and_index(self):
        with pytest.raises(QueryError):
            MultiWayHRJN(1, SumFunction(), 1)
        operator = MultiWayHRJN(2, SumFunction(), 1)
        with pytest.raises(QueryError):
            operator.add(5, ScoredRow("a", "v", 0.5))

    relation = st.lists(
        st.tuples(st.sampled_from("abcd"),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=0, max_size=15,
    )

    @given(relation, relation, relation, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_three_way_matches_naive(self, s1, s2, s3, k):
        relations = [rows(s1, "x"), rows(s2, "y"), rows(s3, "z")]
        results, _ = hrjn_join_multi(relations, SumFunction(), k)
        truth = naive_rank_join_multi(relations, SumFunction(), k)
        assert [round(t.score, 9) for t in results] == [
            round(t.score, 9) for t in truth
        ]

    def test_early_termination(self):
        relations = [
            rows([("hit", 1.0)] + [(f"v{i}", 0.4 - i / 1000)
                                   for i in range(100)], p)
            for p in ("x", "y", "z")
        ]
        _, seen = hrjn_join_multi(relations, SumFunction(), 1)
        assert sum(seen) < 30


class TestMultiWayISL:
    @pytest.fixture()
    def three_day_logs(self):
        """Three per-day log tables (the §1 motivating scenario, n=3)."""
        setup = build_setup(EC2_PROFILE, micro_scale=0.05, seed=5)
        import random

        rng = random.Random(3)
        store = setup.platform.store
        phrases = [f"phrase-{i:03d}" for i in range(40)]
        for day in ("day1", "day2", "day3"):
            htable = store.create_table(day, {"d"})
            for i, phrase in enumerate(phrases):
                if i > 0 and rng.random() < 0.2:
                    continue  # not every phrase appears every day
                # phrase-000 tops every day: the top-1 join is found early
                score = 1.0 if i == 0 else round(rng.uniform(0.01, 0.9), 6)
                htable.put(
                    Put(f"{day}-{i:04d}")
                    .add("d", "phrase", encode_str(phrase))
                    .add("d", "freq", encode_float(score))
                )
            htable.flush()
        inputs = [
            RelationBinding(day, join_column="phrase", score_column="freq")
            for day in ("day1", "day2", "day3")
        ]
        return setup, MultiRankJoinQuery.of(inputs, "sum", 5)

    def test_three_way_isl_matches_naive(self, three_day_logs):
        setup, query = three_day_logs
        from repro.relational.binding import load_relation

        relations = [
            load_relation(setup.platform.store, binding)
            for binding in query.inputs
        ]
        truth = naive_rank_join_multi(relations, query.function, query.k)
        algorithm = MultiWayISLRankJoin(setup.platform)
        result = algorithm.execute(query)
        assert result.recall_against(truth) == 1.0
        assert result.scores() == pytest.approx([t.score for t in truth])

    def test_early_termination_saves_reads(self, three_day_logs):
        setup, query = three_day_logs
        algorithm = MultiWayISLRankJoin(setup.platform, batch_rows=4)
        from dataclasses import replace

        query = replace(query, k=1)  # a perfect top-1 terminates shallow
        result = algorithm.execute(query)
        total_rows = sum(
            len(list(setup.platform.store.backing(b.table).all_rows()))
            for b in query.inputs
        )
        seen = sum(
            v for name, v in result.details.items()
            if name.startswith("tuples_seen_")
        )
        assert seen < total_rows

    def test_query_validation(self):
        with pytest.raises(QueryError):
            MultiRankJoinQuery.of(
                [RelationBinding("only", join_column="j", score_column="s")],
                "sum", 1,
            )
        with pytest.raises(QueryError):
            MultiRankJoinQuery.of(
                [RelationBinding("a", join_column="j", score_column="s"),
                 RelationBinding("b", join_column="j", score_column="s")],
                "sum", 0,
            )
