"""ISL: index layout (Fig. 3) and coordinator query processing (§4.2)."""

import pytest

from repro.common.serialization import decode_score_key, decode_str
from repro.core.indexes import ISL_TABLE
from repro.core.isl import ISLRankJoin
from repro.relational.binding import load_relation
from repro.tpch.queries import q1, q2


class TestIndexLayout:
    def test_keys_scan_in_descending_score_order(self, shared_setup):
        """Ascending row keys == descending scores (the §4.2.2 kink)."""
        store = shared_setup.platform.store
        signature = q1(1).left.signature
        index = store.backing(ISL_TABLE)
        scores = [
            decode_score_key(row.row)
            for row in index.all_rows(families={signature})
        ]
        assert scores == sorted(scores, reverse=True)

    def test_entries_hold_rowkey_and_join_value(self, shared_setup):
        store = shared_setup.platform.store
        query = q1(1)
        relation = {r.row_key: r for r in load_relation(store, query.left)}
        index = store.backing(ISL_TABLE)
        seen = 0
        for row in index.all_rows(families={query.left.signature}):
            for cell in row:
                expected = relation[cell.qualifier]
                assert decode_str(cell.value) == expected.join_value
                assert decode_score_key(row.row) == pytest.approx(
                    expected.score, abs=1e-6
                )
                seen += 1
        assert seen == len(relation)


class TestQueryProcessing:
    def test_no_mapreduce_in_query_path(self, shared_setup):
        """The coordinator path has no job startup: orders of magnitude
        faster than the MR approaches."""
        result = shared_setup.engine.execute(q1(10), algorithm="isl")
        model = shared_setup.platform.cost_model
        assert result.metrics.sim_time_s < model.mr_job_startup_s

    def test_early_termination_reads_fraction_of_index(self, shared_setup):
        result = shared_setup.engine.execute(q1(5), algorithm="isl")
        index_cells = shared_setup.platform.store.backing(ISL_TABLE).raw_cell_count()
        assert result.metrics.kv_reads < index_cells / 2

    def test_q2_reaches_deeper_than_q1(self, shared_setup):
        """§7.2: Q2 has fewer high-ranking tuples, so ISL must descend
        further before the HRJN threshold fires."""
        k = 10
        q1_result = shared_setup.engine.execute(q1(k), algorithm="isl")
        q2_result = shared_setup.engine.execute(q2(k), algorithm="isl")
        q1_depth = (q1_result.details["tuples_seen_left"]
                    + q1_result.details["tuples_seen_right"])
        q2_depth = (q2_result.details["tuples_seen_left"]
                    + q2_result.details["tuples_seen_right"])
        assert q2_depth > q1_depth

    def test_deeper_k_costs_more(self, shared_setup):
        small = shared_setup.engine.execute(q2(1), algorithm="isl")
        large = shared_setup.engine.execute(q2(50), algorithm="isl")
        assert large.metrics.kv_reads >= small.metrics.kv_reads


class TestBatching:
    """§4.2.3: batch size trades latency against bandwidth/dollars."""

    def test_big_batches_fewer_rpcs_more_overshoot(self, fresh_setup):
        query = q2(10)
        small = ISLRankJoin(fresh_setup.platform, batch_rows=4)
        small.prepare(query)
        small_result = small.execute(query)
        large = ISLRankJoin(fresh_setup.platform, batch_rows=200)
        large_result = large.execute(query)
        truth = fresh_setup.ground_truth(query, 10)
        assert small_result.recall_against(truth) == 1.0
        assert large_result.recall_against(truth) == 1.0
        # bigger batches read at least as many tuples (overshoot) ...
        assert large_result.metrics.kv_reads >= small_result.metrics.kv_reads
        # ... but use fewer coordinator rounds
        assert large_result.details["batches"] <= small_result.details["batches"]

    def test_batch_fraction_scales_with_relation(self, fresh_setup):
        algorithm = ISLRankJoin(fresh_setup.platform, batch_fraction=0.01)
        query = q1(5)
        algorithm.prepare(query)
        lineitem_rows = len(fresh_setup.data.lineitems)
        assert algorithm._batch_rows_for(query.right.signature) == max(
            8, int(lineitem_rows * 0.01)
        )
