"""BFHM phase 1: bucket joins, termination, and the two policies (§5.2)."""

import pytest

from repro.common.functions import SumFunction
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.bucket import BFHMBucketData, BFHMMeta
from repro.core.bfhm.estimation import BFHMEstimator, TerminationPolicy
from repro.sketches.hybrid import HybridBloomFilter
from repro.tpch.queries import q1, q2


def bucket(number, members, m_bits=4096):
    """members: list of (join_value, score)."""
    hybrid = HybridBloomFilter(m_bits)
    for value, _ in members:
        hybrid.insert(value)
    scores = [s for _, s in members]
    return BFHMBucketData(
        bucket=number,
        min_score=min(scores),
        max_score=max(scores),
        count=len(members),
        filter=hybrid,
    )


class TestBucketJoin:
    def _estimator(self):
        metas = (
            BFHMMeta(10, 4096, (0, 1)),
            BFHMMeta(10, 4096, (0, 1)),
        )
        return BFHMEstimator(
            platform=None, signatures=("L", "R"), metas=metas,
            function=SumFunction(),
        )

    def test_joinable_buckets_produce_estimate(self):
        estimator = self._estimator()
        left = bucket(1, [("b", 0.82)])
        right = bucket(0, [("b", 0.91), ("b", 0.92)])
        estimate = estimator._bucket_join(left, right)
        assert estimate is not None
        # Fig. 6(c) row 1: two estimated tuples, scores in [1.73, 1.74]
        assert estimate.cardinality == pytest.approx(2, rel=0.01)
        assert estimate.min_score == pytest.approx(0.82 + 0.91)
        assert estimate.max_score == pytest.approx(0.82 + 0.92)

    def test_disjoint_buckets_return_none(self):
        estimator = self._estimator()
        left = bucket(0, [("a", 1.0)], m_bits=1 << 20)
        right = bucket(0, [("zz", 0.91)], m_bits=1 << 20)
        assert estimator._bucket_join(left, right) is None

    def test_kth_bound_policies(self):
        estimator = self._estimator()
        left0 = bucket(0, [("b", 0.93)])
        right0 = bucket(0, [("b", 0.91), ("b", 0.92)])
        left1 = bucket(1, [("c", 0.82)])
        right1 = bucket(1, [("c", 0.85)])
        estimator.results.append(estimator._bucket_join(left0, right0))
        estimator.results.append(estimator._bucket_join(left1, right1))
        # tuples (by min desc): 1.84 x2, then 1.67
        assert estimator.kth_bound(
            3, TerminationPolicy.CONSERVATIVE
        ) == pytest.approx(0.82 + 0.85)
        assert estimator.kth_bound(
            3, TerminationPolicy.AGGRESSIVE
        ) == pytest.approx(0.82 + 0.85)
        assert estimator.kth_bound(10) is None

    def test_unexamined_best_uses_bucket_boundaries(self):
        # next unfetched bucket of L is 1 => boundary 0.9; R's best
        # boundary is 1.0; sum bound = 1.9 (the paper's worked arithmetic)
        estimator = self._estimator()
        estimator._next_index[0] = 1  # bucket 0 already fetched
        assert estimator.unexamined_best(0) == pytest.approx(0.9 + 1.0)

    def test_exhausted_side_has_no_unexamined(self):
        estimator = self._estimator()
        estimator._next_index[0] = 2
        assert estimator.unexamined_best(0) is None
        assert estimator.side_exhausted(0)


class TestPolicies:
    @pytest.mark.parametrize("policy", list(TerminationPolicy))
    @pytest.mark.parametrize("query_factory", [q1, q2], ids=["Q1", "Q2"])
    def test_both_policies_reach_full_recall(self, fresh_setup, policy,
                                             query_factory):
        """Aggressive termination relies on the §5.3 repair loop; recall
        must still be perfect."""
        query = query_factory(15)
        algorithm = BFHMRankJoin(fresh_setup.platform, policy=policy)
        algorithm.prepare(query)
        result = algorithm.execute(query)
        truth = fresh_setup.ground_truth(query, 15)
        assert result.recall_against(truth) == 1.0

    def test_aggressive_fetches_no_more_buckets(self, fresh_setup):
        query = q2(10)
        conservative = BFHMRankJoin(
            fresh_setup.platform, policy=TerminationPolicy.CONSERVATIVE
        )
        conservative.prepare(query)
        conservative_result = conservative.execute(query)
        aggressive = BFHMRankJoin(
            fresh_setup.platform, policy=TerminationPolicy.AGGRESSIVE
        )
        aggressive_result = aggressive.execute(query)
        assert (
            aggressive_result.details["buckets_fetched"]
            <= conservative_result.details["buckets_fetched"] + 2
        )
