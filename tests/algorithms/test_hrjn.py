"""The HRJN operator (§4.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.functions import ProductFunction, SumFunction
from repro.common.types import ScoredRow
from repro.core.hrjn import LEFT, RIGHT, HRJNOperator, hrjn_join
from repro.errors import QueryError
from repro.relational.naive import naive_rank_join


def rows(specs):
    return [ScoredRow(f"r{i}", value, score) for i, (value, score) in enumerate(specs)]


class TestOperator:
    def test_produces_join_tuples(self):
        operator = HRJNOperator(SumFunction(), 2)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        produced = operator.add(RIGHT, ScoredRow("r1", "a", 0.8))
        assert len(produced) == 1
        assert produced[0].score == pytest.approx(1.7)

    def test_no_join_without_matching_value(self):
        operator = HRJNOperator(SumFunction(), 2)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        assert operator.add(RIGHT, ScoredRow("r1", "b", 0.8)) == []

    def test_threshold_formula(self):
        operator = HRJNOperator(SumFunction(), 1)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        operator.add(LEFT, ScoredRow("l2", "b", 0.5))
        operator.add(RIGHT, ScoredRow("r1", "c", 0.8))
        operator.add(RIGHT, ScoredRow("r2", "d", 0.6))
        # S = max(f(s̄_L, ŝ_R), f(ŝ_L, s̄_R)) = max(0.5+0.8, 0.9+0.6)
        assert operator.threshold() == pytest.approx(1.5)

    def test_threshold_none_until_both_sides_seen(self):
        operator = HRJNOperator(SumFunction(), 1)
        assert operator.threshold() is None
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        assert operator.threshold() is None

    def test_termination_at_threshold(self):
        operator = HRJNOperator(SumFunction(), 1)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        operator.add(RIGHT, ScoredRow("r1", "a", 0.9))
        # result 1.8 >= threshold 1.8: nothing deeper can beat it
        assert operator.terminated()

    def test_not_terminated_without_k_results(self):
        operator = HRJNOperator(SumFunction(), 5)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        operator.add(RIGHT, ScoredRow("r1", "a", 0.9))
        assert not operator.terminated()

    def test_exhausted_inputs_terminate(self):
        operator = HRJNOperator(SumFunction(), 5)
        assert operator.terminated(exhausted=(True, True))

    def test_unsorted_input_rejected(self):
        operator = HRJNOperator(SumFunction(), 1)
        operator.add(LEFT, ScoredRow("l1", "a", 0.5))
        with pytest.raises(QueryError):
            operator.add(LEFT, ScoredRow("l2", "a", 0.9))

    def test_invalid_arguments(self):
        with pytest.raises(QueryError):
            HRJNOperator(SumFunction(), 0)
        with pytest.raises(QueryError):
            HRJNOperator(SumFunction(), 1).add(7, ScoredRow("x", "a", 0.5))

    def test_tuples_seen(self):
        operator = HRJNOperator(SumFunction(), 1)
        operator.add(LEFT, ScoredRow("l1", "a", 0.9))
        operator.add(RIGHT, ScoredRow("r1", "a", 0.9))
        assert operator.tuples_seen() == (1, 1)


class TestHrjnJoin:
    def test_matches_naive_on_fixed_input(self):
        left = rows([("a", 0.9), ("b", 0.8), ("a", 0.3)])
        right = rows([("a", 0.7), ("b", 0.95), ("c", 0.2)])
        results, _ = hrjn_join(left, right, SumFunction(), 2)
        truth = naive_rank_join(left, right, SumFunction(), 2)
        assert [t.score for t in results] == [t.score for t in truth]

    def test_early_termination_saves_depth(self):
        # a perfect top pair lets HRJN stop after a handful of tuples
        left = rows([("hit", 1.0)] + [(f"l{i}", 0.5 - i / 1000) for i in range(200)])
        right = rows([("hit", 1.0)] + [(f"r{i}", 0.5 - i / 1000) for i in range(200)])
        _, (seen_left, seen_right) = hrjn_join(left, right, SumFunction(), 1)
        assert seen_left + seen_right < 20

    relation = st.lists(
        st.tuples(st.sampled_from("abcdef"),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=0, max_size=40,
    )

    @given(relation, relation, st.integers(min_value=1, max_value=10),
           st.sampled_from(["sum", "product"]))
    @settings(max_examples=60, deadline=None)
    def test_always_matches_naive(self, left_spec, right_spec, k, fn_name):
        function = SumFunction() if fn_name == "sum" else ProductFunction()
        left = rows(left_spec)
        right = [ScoredRow(f"s{i}", v, s) for i, (v, s) in enumerate(right_spec)]
        results, _ = hrjn_join(left, right, function, k)
        truth = naive_rank_join(left, right, function, k)
        assert [round(t.score, 9) for t in results] == [
            round(t.score, 9) for t in truth
        ]
