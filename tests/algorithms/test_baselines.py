"""Hive, Pig, and DRJN baselines (§3, §7.1)."""

from repro.core.indexes import DRJN_TABLE
from repro.tpch.queries import q1, q2


class TestHive:
    def test_materializes_full_join(self, shared_setup):
        """Hive computes the whole join result before ranking (§3.1)."""
        result = shared_setup.engine.execute(q1(3), algorithm="hive")
        join_size = len(shared_setup.data.lineitems)
        assert result.details["join_records"] == join_size

    def test_scans_base_tables_fully(self, shared_setup):
        result = shared_setup.engine.execute(q1(3), algorithm="hive")
        store = shared_setup.platform.store
        expected = (store.backing("part").raw_cell_count()
                    + store.backing("lineitem").raw_cell_count())
        assert result.metrics.kv_reads >= expected

    def test_cost_independent_of_k(self, shared_setup):
        """The naive plan does all the work regardless of k."""
        small = shared_setup.engine.execute(q1(1), algorithm="hive")
        large = shared_setup.engine.execute(q1(100), algorithm="hive")
        assert small.metrics.kv_reads == large.metrics.kv_reads

    def test_two_jobs_of_startup(self, shared_setup):
        result = shared_setup.engine.execute(q1(3), algorithm="hive")
        model = shared_setup.platform.cost_model
        assert result.metrics.sim_time_s >= 2 * model.mr_job_startup_s


class TestPig:
    def test_three_jobs_of_startup(self, shared_setup):
        result = shared_setup.engine.execute(q1(3), algorithm="pig")
        model = shared_setup.platform.cost_model
        assert result.metrics.sim_time_s >= 3 * model.mr_job_startup_s

    def test_early_projection_beats_hive_bandwidth(self, shared_setup):
        """Pig strips payload columns before the shuffle (§3.1)."""
        pig = shared_setup.engine.execute(q1(10), algorithm="pig")
        hive = shared_setup.engine.execute(q1(10), algorithm="hive")
        assert pig.metrics.network_bytes < hive.metrics.network_bytes / 3

    def test_faster_than_hive(self, shared_setup):
        pig = shared_setup.engine.execute(q1(10), algorithm="pig")
        hive = shared_setup.engine.execute(q1(10), algorithm="hive")
        assert pig.metrics.sim_time_s < hive.metrics.sim_time_s

    def test_quantile_sampling_ran(self, shared_setup):
        result = shared_setup.engine.execute(q1(10), algorithm="pig")
        assert "quantiles" in result.details


class TestDRJN:
    def test_index_size_capped_by_matrix_dimensions(self, shared_setup):
        """§7.2: DRJN's index is a fixed-size matrix (KB–MB at any data
        scale) — its cell count is bounded by buckets × partitions, unlike
        the inverted lists which grow with the data."""
        from repro.baselines.drjn import (
            DEFAULT_JOIN_PARTITIONS,
            DEFAULT_SCORE_BUCKETS,
        )

        store = shared_setup.platform.store
        drjn = store.backing(DRJN_TABLE)
        cells_per_relation = DEFAULT_SCORE_BUCKETS * DEFAULT_JOIN_PARTITIONS
        # 2 queries x 2 relations, plus the per-partition meta cells
        cap = 4 * (cells_per_relation + DEFAULT_JOIN_PARTITIONS)
        assert drjn.raw_cell_count() <= cap

    def test_pull_phase_scans_everything(self, shared_setup):
        """Each pull round's map job reads the full base tables, driving
        DRJN's dollar cost orders above BFHM's."""
        drjn = shared_setup.engine.execute(q2(10), algorithm="drjn")
        bfhm = shared_setup.engine.execute(q2(10), algorithm="bfhm")
        assert drjn.metrics.kv_reads > 50 * bfhm.metrics.kv_reads

    def test_time_trails_coordinator_algorithms(self, shared_setup):
        """Fig. 8: DRJN trails ISL/BFHM by orders of magnitude (map jobs
        scan the whole dataset per round)."""
        drjn = shared_setup.engine.execute(q1(10), algorithm="drjn")
        isl = shared_setup.engine.execute(q1(10), algorithm="isl")
        assert drjn.metrics.sim_time_s > 10 * isl.metrics.sim_time_s

    def test_server_side_filter_limits_bandwidth(self, shared_setup):
        """The §7.1 optimization: only tuples above the bound cross the
        network, so DRJN ships far less than Hive despite scanning as much."""
        drjn = shared_setup.engine.execute(q1(10), algorithm="drjn")
        hive = shared_setup.engine.execute(q1(10), algorithm="hive")
        assert drjn.metrics.network_bytes < hive.metrics.network_bytes / 5

    def test_rounds_reported(self, shared_setup):
        result = shared_setup.engine.execute(q1(10), algorithm="drjn")
        assert result.details["rounds"] >= 1
        assert result.details["pulled_left"] >= 1
