"""The §5.3 repair cascade, end to end (ISSUE 3).

A crafted score distribution — dense, mutually non-joining high-score
fillers over small Bloom filters, with every real match buried in deep
buckets — forces the full cascade: phase-1 termination fires on
false-positive-inflated cardinality estimates, phase 2 materializes fewer
than k results, the purge bound overshoots so excluded pairs are
re-admitted, and ``run_until(k + (k - k'))`` / forced fetches repair the
recall over multiple rounds.  The tests pin the cascade's telemetry to
independently-counted store accesses and to 100% recall.
"""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.common.serialization import encode_float, encode_str
from repro.core.bfhm.algorithm import BFHMRankJoin, _ReverseMappingCache
from repro.core.bfhm.bucket import encode_reverse_value, reverse_row_key
from repro.core.bfhm.estimation import BFHMEstimator
from repro.core.indexes import BFHM_TABLE
from repro.platform import Platform
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding, load_relation
from repro.relational.naive import naive_rank_join
from repro.store.client import HTable, Put

#: non-joining filler tuples per side, spread over the top score buckets
N_FILLERS = 40
#: matching pairs buried in the deep buckets
N_MATCHES = 6
CASCADE_K = 5


def _load(platform: Platform, table: str, rows) -> None:
    htable = platform.store.create_table(table, {"d"})
    htable.put_batch([
        Put(key).add("d", "j", encode_str(value)).add("d", "s", encode_float(score))
        for key, value, score in rows
    ])
    htable.flush()


def _cascade_setup():
    """Platform + prepared BFHM whose execution provably cascades.

    The top ~5 buckets hold only fillers with disjoint join values; with
    ``fp_rate=0.3`` the per-bucket filters are small enough that filler
    bucket pairs intersect spuriously, so estimation reaches k "estimated"
    tuples and terminates long before any bucket holding a real match is
    fetched — every result must then come from repair rounds.
    """
    platform = Platform(EC2_PROFILE)
    left = [(f"L{i:03d}", f"lv{i}", 0.95 - 0.012 * i) for i in range(N_FILLERS)]
    right = [(f"R{i:03d}", f"rv{i}", 0.95 - 0.012 * i) for i in range(N_FILLERS)]
    for i in range(N_MATCHES):
        left.append((f"LM{i}", f"m{i}", 0.42 - 0.01 * i))
        right.append((f"RM{i}", f"m{i}", 0.42 - 0.01 * i))
    _load(platform, "cascade_l", left)
    _load(platform, "cascade_r", right)
    query = RankJoinQuery.of(
        RelationBinding("cascade_l", "j", "s"),
        RelationBinding("cascade_r", "j", "s"),
        "sum", CASCADE_K,
    )
    algorithm = BFHMRankJoin(platform, num_buckets=10, fp_rate=0.3)
    algorithm.prepare(query)
    return platform, algorithm, query


class TestRepairCascade:
    def test_cascade_repairs_recall_over_multiple_rounds(self):
        platform, algorithm, query = _cascade_setup()
        result = algorithm.execute(query)
        truth = naive_rank_join(
            load_relation(platform.store, query.left),
            load_relation(platform.store, query.right),
            query.function, CASCADE_K,
        )
        # the crafted distribution needs ≥2 repair rounds AND phase-2
        # re-admission past an overshooting purge bound ...
        assert result.details["repair_rounds"] >= 2
        assert result.details["readmitted_pairs"] > 0
        assert result.details["purge_bound"] > truth[-1].score
        # ... and the §5.3 loop still guarantees 100% recall
        assert result.recall_against(truth) == 1.0

    def test_details_equal_independently_counted_store_accesses(self, monkeypatch):
        platform, algorithm, query = _cascade_setup()
        counted = {"reverse_rows": 0, "blob_gets": 0}
        real_multi_get = HTable.multi_get
        real_get = HTable.get

        def counting_multi_get(self, gets):
            rows = real_multi_get(self, gets)
            if self.name == BFHM_TABLE:
                counted["reverse_rows"] += sum(
                    1
                    for get, row in zip(gets, rows)
                    if get.row.startswith("R") and not row.empty
                )
            return rows

        def counting_get(self, get):
            if self.name == BFHM_TABLE and get.row.startswith("B"):
                counted["blob_gets"] += 1
            return real_get(self, get)

        monkeypatch.setattr(HTable, "multi_get", counting_multi_get)
        monkeypatch.setattr(HTable, "get", counting_get)
        result = algorithm.execute(query)
        assert result.details["reverse_rows_fetched"] == counted["reverse_rows"]
        assert result.details["buckets_fetched"] == counted["blob_gets"]

    def test_repair_trace_sums_to_details(self):
        _, algorithm, query = _cascade_setup()
        result = algorithm.execute(query)
        trace = algorithm.last_repair_trace
        assert trace[0].round == 0
        assert [entry.round for entry in trace] == list(range(len(trace)))
        assert len(trace) - 1 == result.details["repair_rounds"]
        assert (sum(entry.buckets_fetched for entry in trace)
                == result.details["buckets_fetched"])
        assert (sum(entry.reverse_rows for entry in trace)
                == result.details["reverse_rows_fetched"])
        assert (sum(entry.readmitted_pairs for entry in trace)
                == result.details["readmitted_pairs"])
        assert trace[0].purge_bound == result.details["purge_bound"]
        # every repair round made progress: fetched buckets or grew the
        # materialized result set
        for previous, entry in zip(trace, trace[1:]):
            assert (entry.buckets_fetched > 0
                    or entry.actual_results > previous.actual_results)


class TestForceFetchBothSides:
    def test_repair_advances_both_sides_per_round(self, monkeypatch):
        """Regression: `force_fetch(0) or force_fetch(1)` short-circuited,
        starving side 1 while side 0 had buckets — one-sided exhaustion
        burned one repair round per bucket instead of one per *pair*.

        With estimation stubbed out, every bucket must arrive through the
        forced-fetch path; advancing both sides per round bounds the round
        count by the deeper side, not the sum.
        """
        platform = Platform(EC2_PROFILE)
        # left spans 4 score buckets, right 8 — unequal depths
        left = [(f"L{i}", f"m{i}", 0.95 - 0.1 * i) for i in range(4)]
        right = [(f"R{i}", f"m{i}", 0.95 - 0.1 * i) for i in range(8)]
        _load(platform, "force_l", left)
        _load(platform, "force_r", right)
        query = RankJoinQuery.of(
            RelationBinding("force_l", "j", "s"),
            RelationBinding("force_r", "j", "s"),
            "sum", 100,  # > total results: stays in the k' < k branch
        )
        algorithm = BFHMRankJoin(platform, num_buckets=10)
        algorithm.prepare(query)
        monkeypatch.setattr(BFHMEstimator, "run_until", lambda self, k: None)
        result = algorithm.execute(query)
        trace = algorithm.last_repair_trace
        depths = [len(algorithm.update_manager.meta(s).buckets)
                  for s in (query.left.signature, query.right.signature)]
        assert result.details["repair_rounds"] <= max(depths) + 1
        # both sides advance while both still have buckets
        assert trace[1].buckets_fetched == 2
        # recall survives the stubbed estimation: the loop fetched everything
        truth = naive_rank_join(
            load_relation(platform.store, query.left),
            load_relation(platform.store, query.right),
            query.function, query.k,
        )
        assert result.recall_against(truth) == 1.0


class TestReverseMappingCache:
    def test_counts_only_nonempty_rows(self):
        """Regression: ``rows_fetched`` counted empty RowResults from
        missing reverse rows, inflating the `reverse_rows_fetched` detail
        the planner calibrates against."""
        platform = Platform(EC2_PROFILE)
        family = "sig"
        htable = platform.store.create_table(BFHM_TABLE, {family})
        htable.put(Put(reverse_row_key(0, 1)).add(
            family, "row1", encode_reverse_value("jv", 0.5)
        ))
        htable.flush()
        cache = _ReverseMappingCache(platform)
        rows = cache.fetch(family, [(0, 1), (0, 2), (0, 3)])
        assert len(rows) == 3
        assert rows[(0, 1)][0].join_value == "jv"
        assert rows[(0, 2)] == [] and rows[(0, 3)] == []
        assert cache.rows_fetched == 1  # only the row that exists
        # cached: repeated fetches never re-read or re-count
        cache.fetch(family, [(0, 1), (0, 2)])
        assert cache.rows_fetched == 1
