"""BFHM end-to-end query behaviour (§5.2–5.3)."""

import pytest

from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.indexes import BFHM_TABLE
from repro.tpch.queries import q1, q2


class TestSurgicalAccess:
    def test_reads_fraction_of_reverse_mappings(self, shared_setup):
        """BFHM's "surgical accuracy" (§7.2): it fetches candidate tuples
        only, not the dataset."""
        result = shared_setup.engine.execute(q1(10), algorithm="bfhm")
        base_cells = shared_setup.platform.store.backing("lineitem").raw_cell_count()
        assert result.metrics.kv_reads < base_cells / 10

    def test_dollar_cost_beats_isl(self, shared_setup):
        """Fig. 7(c): BFHM is the clear dollar-cost winner."""
        bfhm = shared_setup.engine.execute(q1(10), algorithm="bfhm")
        isl = shared_setup.engine.execute(q1(10), algorithm="isl")
        assert bfhm.metrics.kv_reads <= isl.metrics.kv_reads

    def test_no_mapreduce_in_query_path(self, shared_setup):
        result = shared_setup.engine.execute(q1(10), algorithm="bfhm")
        model = shared_setup.platform.cost_model
        assert result.metrics.sim_time_s < model.mr_job_startup_s


class TestEstimationBehaviour:
    def test_q2_fetches_more_buckets_than_q1(self, shared_setup):
        """Skewed Q2 scores force deeper descent into the histogram."""
        q1_result = shared_setup.engine.execute(q1(10), algorithm="bfhm")
        q2_result = shared_setup.engine.execute(q2(10), algorithm="bfhm")
        assert (q2_result.details["buckets_fetched"]
                >= q1_result.details["buckets_fetched"])

    def test_details_reported(self, shared_setup):
        result = shared_setup.engine.execute(q1(10), algorithm="bfhm")
        for key in ("buckets_fetched", "estimated_results",
                    "reverse_rows_fetched", "repair_rounds"):
            assert key in result.details

    def test_false_positives_filtered_in_phase2(self, shared_setup):
        """Results carry true join values — Bloom noise never survives the
        reverse-mapping equality check."""
        result = shared_setup.engine.execute(q1(25), algorithm="bfhm")
        for t in result.tuples:
            assert t.left_key.startswith("P")
            assert t.right_key.startswith("L")
            assert t.join_value  # a real join value, never a bit position


class TestConfiguration:
    @pytest.mark.parametrize("num_buckets", [10, 100, 500])
    def test_bucket_count_sweep_preserves_recall(self, fresh_setup, num_buckets):
        """§7.1 used 100/1000 (EC2) and 100/500 (LC) buckets."""
        query = q1(10)
        algorithm = BFHMRankJoin(fresh_setup.platform, num_buckets=num_buckets)
        algorithm.prepare(query)
        result = algorithm.execute(query)
        truth = fresh_setup.ground_truth(query, 10)
        assert result.recall_against(truth) == 1.0

    def test_more_buckets_narrower_fetches(self, fresh_setup):
        query = q2(10)
        coarse = BFHMRankJoin(fresh_setup.platform, num_buckets=10)
        coarse.prepare(query)
        coarse_result = coarse.execute(query)
        # a separate platform so the index tables do not collide
        from tests.conftest import _make_setup

        fine_setup = _make_setup()
        fine = BFHMRankJoin(fine_setup.platform, num_buckets=200)
        fine.prepare(query)
        fine_result = fine.execute(query)
        # finer histograms pull fewer irrelevant tuples
        assert (fine_result.details["reverse_rows_fetched"]
                <= coarse_result.details["reverse_rows_fetched"])

    def test_index_bytes_reported(self, fresh_setup):
        algorithm = BFHMRankJoin(fresh_setup.platform)
        reports = algorithm.prepare(q1(1))
        assert len(reports) == 2
        for report in reports:
            assert report.index_bytes > 0
            assert report.build_time_s > 0
            index = fresh_setup.platform.store.backing(BFHM_TABLE)
            assert report.index_bytes <= index.total_size + index.disk_size
