"""BFHM online updates (§6): records, replay, write-back policies."""

import pytest

from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.bucket import blob_row_key
from repro.core.bfhm.updates import (
    BFHMUpdateManager,
    WriteBackPolicy,
    parse_record_qualifier,
    record_qualifier,
)
from repro.core.indexes import BFHM_TABLE
from repro.errors import IndexError_
from repro.sketches.histogram import score_to_bucket
from repro.tpch.queries import q1


def prepared_algorithm(setup, **kwargs) -> BFHMRankJoin:
    algorithm = BFHMRankJoin(setup.platform, **kwargs)
    algorithm.prepare(q1(1))
    return algorithm


class TestRecordCodec:
    def test_roundtrip(self):
        qualifier = record_qualifier(42, "i", "row-7")
        assert parse_record_qualifier(qualifier) == (42, "i", "row-7")

    def test_rowkeys_with_pipes_survive(self):
        qualifier = record_qualifier(1, "d", "weird|row|key")
        assert parse_record_qualifier(qualifier) == (1, "d", "weird|row|key")

    def test_non_records_ignored(self):
        assert parse_record_qualifier("blob") is None
        assert parse_record_qualifier("min") is None
        assert parse_record_qualifier("uXXX|i|r") is None
        assert parse_record_qualifier("u000001|x|r") is None


class TestInsertReplay:
    def test_insert_visible_after_replay(self, fresh_setup):
        algorithm = prepared_algorithm(fresh_setup)
        manager = algorithm.update_manager
        query = q1(3)
        signature = query.left.signature

        # insert a part that will dominate the top-1 result
        manager.apply_insert(signature, "PNEW", "winner", 0.999)
        manager.apply_insert(
            query.right.signature, "LNEW", "winner", 0.999
        )
        result = algorithm.execute(query)
        assert result.tuples[0].left_key == "PNEW"
        assert result.tuples[0].right_key == "LNEW"
        assert result.tuples[0].score == pytest.approx(0.999 * 0.999)

    def test_insert_populates_empty_bucket(self, fresh_setup):
        algorithm = prepared_algorithm(fresh_setup)
        manager = algorithm.update_manager
        signature = q1(1).left.signature
        meta_before = manager.meta(signature)
        empty = next(
            b for b in range(meta_before.num_buckets)
            if b not in meta_before.buckets
        )
        from repro.sketches.histogram import bucket_bounds

        low, high = bucket_bounds(empty, meta_before.num_buckets)
        score = (low + high) / 2
        manager.apply_insert(signature, "PX", "vx", score)
        assert empty in manager.meta(signature).buckets

    def test_delete_removes_tuple_from_results(self, fresh_setup):
        algorithm = prepared_algorithm(fresh_setup)
        query = q1(1)
        before = algorithm.execute(query)
        winner = before.tuples[0]
        left = next(
            r for r in fresh_setup.ground_truth(query, 1)
            if r.left_key == winner.left_key
        )
        algorithm.update_manager.apply_delete(
            query.left.signature, winner.left_key,
            winner.join_value, left.left_score,
        )
        after = algorithm.execute(query)
        assert all(t.left_key != winner.left_key for t in after.tuples)


class TestWriteBackPolicies:
    def _bucket_has_records(self, setup, signature: str, bucket: int) -> bool:
        table = setup.platform.store.backing(BFHM_TABLE)
        row = table.read_row(blob_row_key(bucket), families={signature})
        return any(
            parse_record_qualifier(cell.qualifier) is not None for cell in row
        )

    def test_eager_purges_records_during_query(self, fresh_setup):
        algorithm = prepared_algorithm(
            fresh_setup, write_back=WriteBackPolicy.EAGER
        )
        manager = algorithm.update_manager
        query = q1(5)
        signature = query.left.signature
        manager.apply_insert(signature, "PNEW", "winner", 0.999)
        family = manager.meta(signature).family
        bucket = score_to_bucket(0.999, manager.meta(signature).num_buckets)
        assert self._bucket_has_records(fresh_setup, family, bucket)
        algorithm.execute(query)
        assert not self._bucket_has_records(fresh_setup, family, bucket)
        assert manager.writebacks >= 1

    def test_lazy_flushes_after_query(self, fresh_setup):
        algorithm = prepared_algorithm(
            fresh_setup, write_back=WriteBackPolicy.LAZY
        )
        manager = algorithm.update_manager
        query = q1(5)
        signature = query.left.signature
        manager.apply_insert(signature, "PNEW", "winner", 0.999)
        algorithm.execute(query)  # flush_pending runs post-result
        family = manager.meta(signature).family
        bucket = score_to_bucket(0.999, manager.meta(signature).num_buckets)
        assert not self._bucket_has_records(fresh_setup, family, bucket)

    def test_offline_sweep(self, fresh_setup):
        algorithm = prepared_algorithm(
            fresh_setup, write_back=WriteBackPolicy.OFFLINE
        )
        manager = algorithm.update_manager
        signature = q1(1).left.signature
        manager.apply_insert(signature, "PNEW", "winner", 0.999)
        swept = manager.offline_sweep(signature)
        assert swept == 1
        family = manager.meta(signature).family
        bucket = score_to_bucket(0.999, manager.meta(signature).num_buckets)
        assert not self._bucket_has_records(fresh_setup, family, bucket)

    def test_writeback_threshold_defers_small_batches(self, fresh_setup):
        algorithm = prepared_algorithm(
            fresh_setup, write_back=WriteBackPolicy.EAGER, writeback_threshold=5
        )
        manager = algorithm.update_manager
        query = q1(5)
        signature = query.left.signature
        manager.apply_insert(signature, "PNEW", "winner", 0.999)
        algorithm.execute(query)
        # below threshold: the record must still be pending
        family = manager.meta(signature).family
        bucket = score_to_bucket(0.999, manager.meta(signature).num_buckets)
        assert self._bucket_has_records(fresh_setup, family, bucket)

    def test_unregistered_signature_rejected(self, fresh_setup):
        manager = BFHMUpdateManager(fresh_setup.platform)
        with pytest.raises(IndexError_):
            manager.meta("never-built")


class TestRecallUnderUpdates:
    @pytest.mark.parametrize("policy", list(WriteBackPolicy))
    def test_recall_after_mixed_mutations(self, fresh_setup, policy):
        algorithm = prepared_algorithm(fresh_setup, write_back=policy)
        manager = algorithm.update_manager
        query = q1(10)
        left_sig = query.left.signature
        right_sig = query.right.signature

        for i in range(8):
            manager.apply_insert(left_sig, f"PN{i}", f"newv{i}", 0.999 - i / 1000)
            manager.apply_insert(right_sig, f"LN{i}", f"newv{i}", 0.999 - i / 2000)
        manager.apply_delete(left_sig, "PN3", "newv3", 0.999 - 3 / 1000)

        result = algorithm.execute(query)
        expected_pairs = {(f"PN{i}", f"LN{i}") for i in range(8) if i != 3}
        got_pairs = result.pairs()
        assert expected_pairs & got_pairs  # new high scorers surface
        assert all(t.left_key != "PN3" for t in result.tuples)
