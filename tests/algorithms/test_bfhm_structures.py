"""BFHM bucket codecs and index layout (§5.1, Fig. 5)."""

import pytest

from repro.common.serialization import decode_float, decode_str
from repro.core.bfhm.bucket import (
    META_ROW,
    Q_BLOB,
    Q_COUNT,
    Q_MAX,
    Q_MIN,
    BFHMMeta,
    blob_row_key,
    decode_blob,
    decode_bucket_list,
    decode_reverse_value,
    encode_blob,
    encode_bucket_list,
    encode_reverse_value,
    reverse_row_key,
)
from repro.core.bfhm.index import BFHMIndexBuilder
from repro.core.indexes import BFHM_TABLE
from repro.errors import IndexError_
from repro.relational.binding import load_relation
from repro.sketches.histogram import score_to_bucket
from repro.sketches.hybrid import HybridBloomFilter
from repro.tpch.queries import q1


class TestCodecs:
    def test_blob_roundtrip(self):
        hybrid = HybridBloomFilter(4096)
        for i in range(50):
            hybrid.insert(f"value-{i % 7}")
        blob = hybrid.to_blob()
        assert decode_blob(encode_blob(blob)) == blob

    def test_truncated_blob_rejected(self):
        with pytest.raises(IndexError_):
            decode_blob(b"short")

    def test_reverse_value_roundtrip(self):
        encoded = encode_reverse_value("join-val", 0.375)
        row = decode_reverse_value("rk", encoded)
        assert row.row_key == "rk"
        assert row.join_value == "join-val"
        assert row.score == 0.375

    def test_bucket_list_roundtrip(self):
        assert decode_bucket_list(encode_bucket_list([0, 3, 17])) == [0, 3, 17]
        assert decode_bucket_list(encode_bucket_list([])) == []

    def test_row_keys_sort_by_bucket(self):
        assert blob_row_key(1) < blob_row_key(2)
        assert reverse_row_key(1, 5) < reverse_row_key(1, 6)
        # blob rows (B...) sort apart from reverse rows (R...)
        assert blob_row_key(99999) < reverse_row_key(0, 0)

    def test_meta_upper_boundary(self):
        meta = BFHMMeta(num_buckets=10, m_bits=64, buckets=(0, 3))
        assert meta.upper_boundary(0) == pytest.approx(1.0)
        assert meta.upper_boundary(3) == pytest.approx(0.7)


class TestIndexLayout:
    def test_blob_rows_cover_all_scores(self, shared_setup):
        store = shared_setup.platform.store
        query = q1(1)
        builder = BFHMIndexBuilder(shared_setup.platform)
        meta = builder.read_meta(shared_setup.platform, query.left.signature)
        relation = load_relation(store, query.left)
        expected_buckets = {
            score_to_bucket(row.score, meta.num_buckets) for row in relation
        }
        assert set(meta.buckets) == expected_buckets

    def test_blob_row_contents(self, shared_setup):
        store = shared_setup.platform.store
        query = q1(1)
        builder = BFHMIndexBuilder(shared_setup.platform)
        meta = builder.read_meta(shared_setup.platform, query.left.signature)
        signature = meta.family
        relation = load_relation(store, query.left)
        index = store.backing(BFHM_TABLE)

        bucket = meta.buckets[0]
        members = [r for r in relation
                   if score_to_bucket(r.score, meta.num_buckets) == bucket]
        row = index.read_row(blob_row_key(bucket), families={signature})
        assert decode_float(row.value(signature, Q_MIN)) == pytest.approx(
            min(m.score for m in members)
        )
        assert decode_float(row.value(signature, Q_MAX)) == pytest.approx(
            max(m.score for m in members)
        )
        assert int(decode_str(row.value(signature, Q_COUNT))) == len(members)
        blob = decode_blob(row.value(signature, Q_BLOB))
        assert blob.item_count == len(members)

    def test_reverse_mappings_complete(self, shared_setup):
        """Every indexed tuple appears in exactly one reverse-mapping row,
        keyed by its bucket and its join value's bit position."""
        store = shared_setup.platform.store
        query = q1(1)
        builder = BFHMIndexBuilder(shared_setup.platform)
        meta = builder.read_meta(shared_setup.platform, query.left.signature)
        signature = meta.family
        index = store.backing(BFHM_TABLE)
        probe = HybridBloomFilter(meta.m_bits)

        for scored in load_relation(store, query.left):
            bucket = score_to_bucket(scored.score, meta.num_buckets)
            position = probe.position(scored.join_value)
            row = index.read_row(
                reverse_row_key(bucket, position), families={signature}
            )
            value = row.value(signature, scored.row_key)
            assert value is not None
            decoded = decode_reverse_value(scored.row_key, value)
            assert decoded.join_value == scored.join_value
            assert decoded.score == pytest.approx(scored.score)

    def test_meta_row_fields(self, shared_setup):
        query = q1(1)
        builder = BFHMIndexBuilder(shared_setup.platform)
        meta = builder.read_meta(shared_setup.platform, query.left.signature)
        assert meta.num_buckets == builder.num_buckets
        assert meta.m_bits > 0
        assert list(meta.buckets) == sorted(meta.buckets)

    def test_shared_filter_size_across_relations(self, shared_setup):
        """Both relations of a query share one m (bitwise-AND needs it)."""
        query = q1(1)
        builder = BFHMIndexBuilder(shared_setup.platform)
        left = builder.read_meta(shared_setup.platform, query.left.signature)
        right = builder.read_meta(shared_setup.platform, query.right.signature)
        assert left.m_bits == right.m_bits

    def test_meta_row_key_does_not_collide_with_buckets(self):
        assert META_ROW not in {blob_row_key(i) for i in range(100000)}
