"""Every algorithm returns exactly the ground-truth top-k scores.

This is the paper's central correctness claim exercised across all six
approaches on the shared TPC-H workload (both queries, several ks), plus a
property-based sweep over random relations for the coordinator algorithms.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.common.serialization import encode_float, encode_str
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.relational.naive import naive_rank_join
from repro.store.client import Put
from repro.tpch.queries import q1, q2

ALGORITHMS = ["hive", "pig", "ijlmr", "isl", "bfhm", "drjn"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("query_factory", [q1, q2], ids=["Q1", "Q2"])
@pytest.mark.parametrize("k", [1, 10, 50])
def test_recall_is_perfect(shared_setup, algorithm, query_factory, k):
    query = query_factory(k)
    truth = shared_setup.ground_truth(query, k)
    result = shared_setup.engine.execute(query, algorithm=algorithm)
    assert result.recall_against(truth) == 1.0
    assert len(result.tuples) == len(truth)
    # scores must be in non-increasing order
    scores = result.scores()
    assert scores == sorted(scores, reverse=True)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_k_larger_than_result_set(shared_setup, algorithm):
    """STOP AFTER k with k beyond the join size returns everything."""
    query = q1(10_000)
    truth = shared_setup.ground_truth(query, 10_000)
    result = shared_setup.engine.execute(query, algorithm=algorithm)
    assert result.recall_against(truth) == 1.0
    assert len(result.tuples) == len(truth)


# -- property-based sweep over synthetic relations ---------------------------

join_values = st.sampled_from(["a", "b", "c", "d", "e"])
scores = st.floats(min_value=0.0, max_value=1.0)
relation = st.lists(st.tuples(join_values, scores), min_size=1, max_size=25)


@given(left=relation, right=relation,
       k=st.integers(min_value=1, max_value=8),
       fn=st.sampled_from(["sum", "product"]))
@settings(max_examples=25, deadline=None)
def test_coordinator_algorithms_on_random_relations(left, right, k, fn):
    """ISL and BFHM against naive ground truth on arbitrary relations."""
    platform_setup = _load_synthetic(left, right)
    setup, query = platform_setup
    query = RankJoinQuery.of(query.left, query.right, fn, k)
    truth = naive_rank_join(
        _scored(left, "L"), _scored(right, "R"), query.function, k
    )
    for algorithm in ("isl", "bfhm"):
        result = setup.engine.execute(query, algorithm=algorithm)
        assert result.recall_against(truth) == 1.0, (
            f"{algorithm} missed results for k={k} fn={fn}"
        )


def _scored(spec, prefix):
    from repro.common.types import ScoredRow

    return [ScoredRow(f"{prefix}{i}", v, s) for i, (v, s) in enumerate(spec)]


def _load_synthetic(left, right):
    setup = build_setup(EC2_PROFILE, micro_scale=0.05, seed=99)
    store = setup.platform.store
    for name, spec, prefix in (("syn_left", left, "L"), ("syn_right", right, "R")):
        htable = store.create_table(name, {"d"})
        for i, (value, score) in enumerate(spec):
            htable.put(
                Put(f"{prefix}{i}")
                .add("d", "jv", encode_str(value))
                .add("d", "sc", encode_float(score))
            )
        htable.flush()
    query = RankJoinQuery.of(
        RelationBinding("syn_left", join_column="jv", score_column="sc"),
        RelationBinding("syn_right", join_column="jv", score_column="sc"),
        "sum",
        1,
    )
    return setup, query
