"""scatter_gather: queue-model pricing, determinism, fallbacks.

The contract pinned here (see the module docstring of
``repro.cluster.executor``): results gather in task order; counters are
absorbed unchanged; round time = max over per-server queues plus dispatch
overhead; and the resulting metrics are a pure function of store state and
task list — independent of pool size and thread scheduling.
"""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.executor import (
    ScatterPool,
    ScatterTask,
    in_scatter,
    scatter_gather,
    shared_pool,
)
from repro.platform import Platform
from repro.store.client import Get, Put


def _loaded(num_servers):
    platform = Platform(EC2_PROFILE, num_servers=num_servers)
    htable = platform.store.create_table(
        "t", {"d"}, split_keys=[f"r{i}" for i in range(1, 8)]
    )
    for i in range(32):
        put = Put(f"r{i % 8}x{i:02d}")
        put.add("d", "q", b"v" * 16)
        htable.put(put)
    htable.flush()
    return platform, htable


class TestFallbacks:
    def test_empty_round(self):
        platform, _ = _loaded(num_servers=4)
        assert scatter_gather(platform.ctx, []) == []

    def test_single_server_runs_inline(self):
        platform, _ = _loaded(num_servers=1)
        seen = []
        tasks = [ScatterTask(0, lambda i=i: seen.append(i) or i) for i in range(3)]
        assert scatter_gather(platform.ctx, tasks) == [0, 1, 2]
        assert seen == [0, 1, 2]  # serial, in task order, caller's thread
        assert "fanout_rounds" not in platform.metrics.counters

    def test_same_server_tasks_run_inline(self):
        platform, _ = _loaded(num_servers=4)
        tasks = [ScatterTask(2, lambda i=i: i) for i in range(3)]
        assert scatter_gather(platform.ctx, tasks) == [0, 1, 2]
        assert "fanout_rounds" not in platform.metrics.counters

    def test_nested_scatter_runs_inline(self):
        platform, _ = _loaded(num_servers=4)
        ctx = platform.ctx

        def inner(value):
            assert in_scatter()
            return value * 10

        def outer(server_id):
            nested = [ScatterTask(s, lambda s=s: inner(s)) for s in range(4)]
            return scatter_gather(ctx, nested)

        tasks = [ScatterTask(s, lambda s=s: outer(s)) for s in range(4)]
        results = scatter_gather(ctx, tasks)
        assert results == [[0, 10, 20, 30]] * 4
        # only the outer round fans out; inner rounds ran inline
        assert platform.metrics.counters["fanout_rounds"] == 1


class TestQueueModel:
    def test_round_costs_max_queue_plus_dispatch(self):
        platform, _ = _loaded(num_servers=4)
        ctx, model = platform.ctx, platform.cost_model
        times = {0: 0.3, 1: 0.1, 2: 0.2}
        tasks = [
            ScatterTask(server, lambda t=t: ctx.metrics.advance_time(t))
            for server, t in times.items()
        ]
        before = platform.metrics.snapshot().sim_time_s
        scatter_gather(ctx, tasks)
        delta = platform.metrics.snapshot().sim_time_s - before
        expected = max(times.values()) + model.fanout_dispatch_s * 2
        assert delta == pytest.approx(expected)

    def test_same_server_tasks_queue_behind_each_other(self):
        platform, _ = _loaded(num_servers=4)
        ctx, model = platform.ctx, platform.cost_model
        tasks = [
            ScatterTask(0, lambda: ctx.metrics.advance_time(0.2)),
            ScatterTask(0, lambda: ctx.metrics.advance_time(0.2)),
            ScatterTask(1, lambda: ctx.metrics.advance_time(0.3)),
        ]
        before = platform.metrics.snapshot().sim_time_s
        scatter_gather(ctx, tasks)
        delta = platform.metrics.snapshot().sim_time_s - before
        # server 0's queue is 0.4 (two tasks back to back) > server 1's 0.3
        assert delta == pytest.approx(0.4 + model.fanout_dispatch_s)

    def test_counters_absorbed_and_round_bumped(self):
        platform, _ = _loaded(num_servers=4)
        ctx = platform.ctx

        def charge(server_id):
            ctx.metrics.add_network(100)
            ctx.metrics.add_kv_reads(5)
            return server_id

        before = platform.metrics.snapshot()
        tasks = [ScatterTask(s, lambda s=s: charge(s)) for s in range(4)]
        assert scatter_gather(ctx, tasks, label="unit") == [0, 1, 2, 3]
        delta = platform.metrics.snapshot() - before
        assert delta.network_bytes == 400
        assert delta.kv_reads == 20
        assert delta.counters["fanout_rounds"] == 1
        assert delta.counters["fanout_tasks"] == 4
        assert delta.counters["fanout_rounds_unit"] == 1
        assert delta.counters["fanout_overlap_saved_s"] >= 0


class TestDeterminism:
    def _multi_get_metrics(self, pool):
        """One scatter multi-get's metric delta, run on ``pool``."""
        import repro.cluster.executor as executor_module

        original = executor_module._SHARED_POOL
        executor_module._SHARED_POOL = pool
        try:
            platform, htable = _loaded(num_servers=4)
            before = platform.metrics.snapshot()
            gets = [Get(f"r{i % 8}x{i:02d}", families={"d"}) for i in range(32)]
            rows = htable.multi_get(gets)
            return [row.row for row in rows], platform.metrics.snapshot() - before
        finally:
            executor_module._SHARED_POOL = original
            pool.shutdown()

    def test_metrics_independent_of_pool_size(self):
        baseline_rows, baseline = self._multi_get_metrics(ScatterPool())
        for max_workers in (1, 2, 16):
            rows, delta = self._multi_get_metrics(ScatterPool(max_workers))
            assert rows == baseline_rows
            assert delta == baseline, f"pool size {max_workers} changed metrics"

    def test_repeated_rounds_identical(self):
        platform, htable = _loaded(num_servers=4)
        gets = [Get(f"r{i % 8}x{i:02d}", families={"d"}) for i in range(32)]
        deltas = []
        for _ in range(3):
            before = platform.metrics.snapshot()
            htable.multi_get(gets)
            deltas.append(platform.metrics.snapshot() - before)
        for delta in deltas[1:]:
            # time via approx: deltas subtract growing float totals, so
            # the last ulp wobbles even though every charge is identical
            assert delta.sim_time_s == pytest.approx(deltas[0].sim_time_s)
            assert delta.network_bytes == deltas[0].network_bytes
            assert delta.kv_reads == deltas[0].kv_reads
            assert delta.counters == pytest.approx(deltas[0].counters)

    def test_shared_pool_survives_shutdown(self):
        pool = shared_pool()
        pool.shutdown()
        platform, htable = _loaded(num_servers=4)
        gets = [Get(f"r{i % 8}x{i:02d}", families={"d"}) for i in range(8)]
        assert len(htable.multi_get(gets)) == 8  # lazily recreated
