"""ClusterTopology / RegionBalancer: node->server assignment invariants."""

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.simulation import SimCluster
from repro.cluster.topology import ClusterTopology, LocalityBalancer, RegionBalancer
from repro.platform import Platform
from repro.store.client import Put


@pytest.fixture()
def cluster():
    return SimCluster(EC2_PROFILE)


class TestConstruction:
    def test_default_is_single_server(self, cluster):
        topology = ClusterTopology(cluster)
        assert topology.num_servers == 1
        assert not topology.parallel

    def test_multi_server_is_parallel(self, cluster):
        topology = ClusterTopology(cluster, num_servers=4)
        assert topology.num_servers == 4
        assert topology.parallel

    def test_zero_servers_rejected(self, cluster):
        with pytest.raises(ValueError):
            ClusterTopology(cluster, num_servers=0)

    def test_clamped_to_worker_count(self, cluster):
        topology = ClusterTopology(cluster, num_servers=999)
        assert topology.num_servers == len(cluster.workers)

    def test_every_server_owns_a_node(self, cluster):
        topology = ClusterTopology(cluster, num_servers=3)
        for server in topology.servers:
            assert server.node_ids

    def test_round_robin_stripes_workers(self, cluster):
        topology = ClusterTopology(cluster, num_servers=3)
        for index, worker in enumerate(cluster.workers):
            assert topology.server_for_node(worker.node_id) == index % 3

    def test_master_routes_to_server_zero(self, cluster):
        topology = ClusterTopology(cluster, num_servers=4)
        assert topology.server_for_node(cluster.master.node_id) == 0

    def test_bad_balancer_rejected(self, cluster):
        class Broken(RegionBalancer):
            def server_for_worker(self, worker_index, num_servers):
                return num_servers + 5

        with pytest.raises(ValueError):
            ClusterTopology(cluster, num_servers=2, balancer=Broken())


class TestRegionRouting:
    def _regions(self, num_servers):
        platform = Platform(EC2_PROFILE, num_servers=num_servers)
        htable = platform.store.create_table(
            "t", {"d"}, split_keys=[f"r{i}" for i in range(1, 8)]
        )
        for i in range(8):
            put = Put(f"r{i}")
            put.add("d", "q", b"v")
            htable.put(put)
        return platform.ctx.topology, platform.store.backing("t").regions

    def test_regions_span_all_servers(self):
        topology, regions = self._regions(num_servers=4)
        assert topology.spread(list(regions)) == 4

    def test_assignments_preserve_key_order_within_groups(self):
        topology, regions = self._regions(num_servers=4)
        groups = topology.assignments(list(regions))
        ordered = [id(region) for region in regions]
        for group in groups.values():
            indices = [ordered.index(id(region)) for region in group]
            assert indices == sorted(indices)

    def test_assignments_cover_every_region_once(self):
        topology, regions = self._regions(num_servers=3)
        groups = topology.assignments(list(regions))
        grouped = [id(r) for group in groups.values() for r in group]
        assert sorted(grouped) == sorted(id(r) for r in regions)

    def test_single_server_groups_to_one(self):
        topology, regions = self._regions(num_servers=1)
        assert topology.spread(list(regions)) == 1

    def test_describe_lists_every_server(self):
        topology, _ = self._regions(num_servers=4)
        text = topology.describe()
        for server in topology.servers:
            assert server.name in text


class TestLocalityBalancer:
    def test_assigns_contiguous_blocks(self):
        assert LocalityBalancer().assign(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_split_keeps_blocks_contiguous(self):
        assigned = LocalityBalancer().assign(5, 2)
        assert assigned == sorted(assigned)
        assert set(assigned) == {0, 1}

    def test_every_server_owns_a_node(self):
        cluster = SimCluster(EC2_PROFILE)
        topology = ClusterTopology(cluster, num_servers=3, balancer=LocalityBalancer())
        for server in topology.servers:
            assert server.node_ids

    def test_adjacent_regions_share_servers(self):
        """Round-robin region placement + block worker assignment means a
        run of consecutive regions spans far fewer servers than striping."""
        platform = Platform(
            EC2_PROFILE, num_servers=4, balancer=LocalityBalancer()
        )
        htable = platform.store.create_table(
            "t", {"d"}, split_keys=[f"r{i}" for i in range(1, 8)]
        )
        htable.put(Put("r0").add("d", "q", b"v"))
        regions = list(platform.store.backing("t").regions)
        striped = Platform(EC2_PROFILE, num_servers=4)
        # first two regions (one narrow fetch round's worth of key range)
        assert platform.ctx.topology.spread(regions[:2]) == 1
        assert striped.ctx.topology.spread(regions[:2]) == 2

    def test_colocated_bfhm_bucket_fetches_beat_round_robin(self):
        """The satellite claim, on the simulated clock: the BFHM query's
        bucket blob + reverse-mapping fetch rounds — batched multi-gets
        over *adjacent* key ranges — price lower when adjacent regions
        are co-located than under round-robin striping.  Pinned on the
        deterministic fetch-heavy regime (k=50: many buckets drained per
        query); the workload matches the identity-grid setup exactly.
        """
        from repro.bench.harness import build_setup
        from repro.tpch.queries import q1

        def bfhm_time(balancer):
            setup = build_setup(
                EC2_PROFILE, micro_scale=0.2, seed=42,
                num_servers=4, balancer=balancer,
            )
            setup.engine.algorithm("bfhm").prepare(q1(1))
            result = setup.engine.execute(q1(50), algorithm="bfhm")
            return result.metrics.sim_time_s

        assert bfhm_time(LocalityBalancer()) < bfhm_time(None)
