"""Process-pool backend: registry contract, wire codec, pool lifecycle.

The properties pinned here (module docstrings of ``repro.common.registry``,
``repro.cluster.wire``, ``repro.cluster.procpool``): only registered
functions cross the process boundary; row blocks round-trip cells
byte-for-byte; pool results come back in ref order with per-task metric
snapshots; and live collectors/routers can never be pickled across.
"""

import os
import pickle

import pytest

from repro.cluster.metrics import MetricsCollector
from repro.cluster.procpool import (
    MAX_PROCESS_WORKERS,
    WORKERS_ENV,
    ProcessScatterPool,
    default_worker_count,
    shared_process_pool,
    worker_metrics,
)
from repro.cluster.wire import decode_rows, encode_rows
from repro.common.registry import FnRef, fn_ref, lookup, proc_fn, resolve
from repro.serving.metrics import ThreadLocalMetricsRouter
from repro.store.cell import Cell, RowResult


@proc_fn("test.echo")
def _echo(payload):
    return payload


@proc_fn("test.charge")
def _charge(payload):
    metrics = worker_metrics()
    metrics.advance_time(payload["time_s"])
    metrics.add_kv_reads(payload["kv"])
    return payload["kv"]


@proc_fn("test.boom")
def _boom(payload):
    raise RuntimeError(payload)


class TestRegistry:
    def test_fn_ref_resolves_registered_name(self):
        ref = fn_ref("test.echo", 7)
        assert isinstance(ref, FnRef)
        assert lookup(ref) is _echo
        assert resolve(ref)() == 7

    def test_unknown_name_rejected_on_parent_side(self):
        with pytest.raises(KeyError):
            fn_ref("test.never_registered")

    def test_reregistration_same_function_is_idempotent(self):
        proc_fn("test.echo")(_echo)
        assert lookup(fn_ref("test.echo")) is _echo

    def test_name_conflict_rejected(self):
        with pytest.raises(ValueError):

            @proc_fn("test.echo")
            def _other(payload):  # pragma: no cover - must not register
                return payload

    def test_refs_are_picklable(self):
        ref = fn_ref("test.echo", {"rows": [1, 2]})
        assert pickle.loads(pickle.dumps(ref)) == ref

    def test_resolve_binds_payload_as_first_argument(self):
        @proc_fn("test.add")
        def _add(payload, increment):
            return payload + increment

        assert resolve(fn_ref("test.add", 40))(2) == 42


class TestWireCodec:
    def _rows(self):
        row_a = RowResult("ra")
        row_a.cells.append(Cell("ra", "d", "q1", b"\x00\xffblob", 7))
        row_a.cells.append(Cell("ra", "d", "q2", b"", 8))
        row_b = RowResult("rb")
        row_b.cells.append(Cell("rb", "e", "q", b"v", 9, True))
        return [row_a, row_b]

    def test_round_trip_preserves_every_cell_field(self):
        decoded = decode_rows(encode_rows(self._rows()))
        assert [tag for tag, _ in decoded] == [None, None]
        cells = [
            (c.row, c.family, c.qualifier, c.value, c.timestamp, c.is_delete)
            for _, row in decoded
            for c in row.cells
        ]
        assert cells == [
            ("ra", "d", "q1", b"\x00\xffblob", 7, False),
            ("ra", "d", "q2", b"", 8, False),
            ("rb", "e", "q", b"v", 9, True),
        ]

    def test_round_trip_preserves_tags(self):
        decoded = decode_rows(encode_rows(self._rows(), ["left", "right"]))
        assert [tag for tag, _ in decoded] == ["left", "right"]

    def test_encoding_is_deterministic(self):
        assert encode_rows(self._rows()) == encode_rows(self._rows())

    def test_tag_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_rows(self._rows(), ["only-one"])

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_rows(b"XX1" + b"\x00" * 8)

    def test_truncated_block_rejected(self):
        block = encode_rows(self._rows())
        with pytest.raises(ValueError):
            decode_rows(block[: len(block) // 2])


class TestWorkerCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_worker_count() == 3

    def test_default_is_capped(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert 1 <= default_worker_count() <= MAX_PROCESS_WORKERS


class TestProcessScatterPool:
    @pytest.fixture()
    def pool(self):
        pool = ProcessScatterPool(max_workers=2)
        yield pool
        pool.shutdown()

    def test_results_in_ref_order_with_snapshots(self, pool):
        refs = [fn_ref("test.echo", i) for i in range(5)]
        outcomes = pool.run(refs)
        assert [result for result, _ in outcomes] == [0, 1, 2, 3, 4]
        for _, snapshot in outcomes:
            assert snapshot.sim_time_s == 0.0

    def test_worker_charges_ship_back_as_snapshots(self, pool):
        outcomes = pool.run(
            [fn_ref("test.charge", {"time_s": 1.5, "kv": 10 * (i + 1)}) for i in range(2)]
        )
        assert [result for result, _ in outcomes] == [10, 20]
        assert [snap.sim_time_s for _, snap in outcomes] == [1.5, 1.5]
        assert [snap.kv_reads for _, snap in outcomes] == [10, 20]

    def test_empty_batch_never_creates_workers(self):
        pool = ProcessScatterPool(max_workers=2)
        assert pool.run([]) == []
        assert pool._executor is None

    def test_task_exception_propagates(self, pool):
        with pytest.raises(RuntimeError, match="kaboom"):
            pool.run([fn_ref("test.boom", "kaboom")])

    def test_configure_same_size_keeps_live_executor(self, pool):
        pool.run([fn_ref("test.echo", 1)])
        executor = pool._executor
        pool.configure(2)
        assert pool._executor is executor

    def test_configure_new_size_tears_down_and_recreates(self, pool):
        pool.run([fn_ref("test.echo", 1)])
        old = pool._executor
        pool.configure(3)
        assert pool._executor is None
        assert pool.max_workers == 3
        outcomes = pool.run([fn_ref("test.echo", 2)])
        assert outcomes[0][0] == 2
        assert pool._executor is not old

    def test_shared_pool_is_process_wide(self):
        assert shared_process_pool() is shared_process_pool()


class TestProcessBoundaryGuards:
    def test_router_refuses_to_pickle(self):
        router = ThreadLocalMetricsRouter(MetricsCollector())
        with pytest.raises(TypeError, match="MetricsSnapshot"):
            pickle.dumps(router)

    def test_worker_metrics_outside_worker_is_throwaway(self):
        first = worker_metrics()
        first.advance_time(5.0)
        assert worker_metrics().sim_time_s == 0.0


class TestProcessScatterRounds:
    """scatter_gather's process branch: same fold, same prices as threads."""

    def _platform(self, parallelism):
        from repro.cluster.costmodel import EC2_PROFILE
        from repro.platform import Platform

        return Platform(EC2_PROFILE, num_servers=4, parallelism=parallelism)

    def _tasks(self, ctx):
        from repro.cluster.executor import ScatterTask

        def make(server_id, time_s):
            payload = {"time_s": time_s, "kv": 5}

            def run():
                # the thread path charges the ambient (scoped) context,
                # exactly like a store-touching task; the proc form names
                # the same work against the worker-ambient collector
                ctx.metrics.advance_time(time_s)
                ctx.metrics.add_kv_reads(5)
                return 5

            return ScatterTask(server_id, run, proc=fn_ref("test.charge", payload))

        return [make(0, 0.5), make(1, 0.25), make(2, 0.25), make(0, 0.125)]

    def test_process_round_prices_like_thread_round(self):
        from repro.cluster.executor import scatter_gather

        results = {}
        snaps = {}
        for parallelism in ("thread", "process"):
            platform = self._platform(parallelism)
            results[parallelism] = scatter_gather(
                platform.ctx, self._tasks(platform.ctx), label="test"
            )
            snaps[parallelism] = platform.metrics.snapshot()
        assert results["thread"] == results["process"] == [5, 5, 5, 5]
        assert snaps["thread"] == snaps["process"]
        # 3 distinct servers: max queue 0.625 + 2 dispatch overheads
        model = self._platform("thread").cost_model
        assert snaps["process"].sim_time_s == pytest.approx(
            0.625 + 2 * model.fanout_dispatch_s
        )
        assert snaps["process"].kv_reads == 20

    def test_round_missing_proc_falls_back_to_threads(self):
        from repro.cluster.executor import ScatterTask, scatter_gather

        platform = self._platform("process")
        tasks = [
            ScatterTask(0, lambda: "a", proc=fn_ref("test.echo", "a")),
            ScatterTask(1, lambda: "b"),  # no picklable form offered
        ]
        assert scatter_gather(platform.ctx, tasks) == ["a", "b"]
        assert platform.metrics.counters["fanout_rounds"] == 1.0
