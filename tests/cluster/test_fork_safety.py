"""Fork/spawn safety audit: pools and the lock tracer across ``fork()``.

A forked child inherits every module-global object but none of the
parent's threads or child processes.  The hazards pinned here:

* ``ScatterPool`` / ``ProcessScatterPool`` — submitting to an inherited
  executor whose workers only exist in the parent would hang forever; the
  pools remember their creating PID and rebuild lazily per process, and
  teardown in the wrong process must never join another process's
  workers.
* ``LockTracer`` — the patched ``threading`` factories and a possibly
  mid-update ``_graph_lock`` must not survive into the child; an at-fork
  hook restores the real factories and resets the tracer.
"""

import os
import threading

import pytest

from repro.cluster.executor import ScatterPool, shared_pool
from repro.cluster.procpool import ProcessScatterPool
from repro.common import locktrace
from repro.common.locktrace import LockTracer


class TestScatterPoolPidGuard:
    def test_inherited_executor_is_dropped_and_rebuilt(self):
        pool = ScatterPool(max_workers=2)
        try:
            inherited = pool.executor()
            pool._pid = os.getpid() + 1  # simulate: created by another process
            rebuilt = pool.executor()
            assert rebuilt is not inherited
            assert pool._pid == os.getpid()
            assert rebuilt.submit(lambda: 42).result(timeout=10) == 42
        finally:
            pool.shutdown()
            inherited.shutdown(wait=True)

    def test_shutdown_never_joins_another_processes_threads(self):
        pool = ScatterPool(max_workers=2)
        foreign = pool.executor()
        pool._pid = os.getpid() + 1
        pool.shutdown()  # must only clear state, not join foreign workers
        try:
            # the executor this process actually created is untouched
            assert foreign.submit(lambda: 1).result(timeout=10) == 1
        finally:
            foreign.shutdown(wait=True)


class TestProcessPoolPidGuard:
    def test_inherited_executor_is_dropped_without_joining(self):
        pool = ProcessScatterPool(max_workers=1)
        pool._executor = object()  # stand-in for an inherited live executor
        pool._pid = os.getpid() + 1
        pool.shutdown()  # foreign PID: clears state, no shutdown() call
        assert pool._executor is None
        assert pool._pid is None

    def test_configure_in_child_does_not_join_parents_workers(self):
        pool = ProcessScatterPool(max_workers=1)
        pool._executor = object()
        pool._pid = os.getpid() + 1
        pool.configure(2)  # would raise if it called .shutdown() on object()
        assert pool._executor is None
        assert pool.max_workers == 2


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only platform audit")
class TestRealFork:
    def _assert_child_ok(self, child_main) -> None:
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process exits hard
            code = 1
            try:
                if child_main():
                    code = 0
            except BaseException:
                code = 1
            finally:
                os._exit(code)
        _, status = os.waitpid(pid, 0)
        assert os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0

    def test_forked_child_rebuilds_shared_scatter_pool(self):
        parent_executor = shared_pool().executor()  # live handle to inherit
        assert parent_executor.submit(lambda: 1).result(timeout=10) == 1

        def child_main():
            executor = shared_pool().executor()
            if executor is parent_executor:
                return False
            return executor.submit(lambda: 42).result(timeout=10) == 42

        self._assert_child_ok(child_main)
        # the parent's pool still works after the child ran
        assert shared_pool().executor() is parent_executor
        assert parent_executor.submit(lambda: 2).result(timeout=10) == 2

    def test_forked_child_uninstalls_lock_tracer(self):
        tracer = LockTracer()
        tracer.install()
        try:

            def child_main():
                factories_restored = (
                    threading.Lock is locktrace._REAL_LOCK
                    and threading.RLock is locktrace._REAL_RLOCK
                    and threading.Condition is locktrace._REAL_CONDITION
                )
                return factories_restored and not tracer._installed

            self._assert_child_ok(child_main)
            # the parent's tracer is still installed and functional
            assert tracer._installed
            assert threading.Lock is not locktrace._REAL_LOCK
        finally:
            tracer.uninstall()


class TestAtForkHandlerUnit:
    """The handler's effect, without paying for a real fork."""

    def test_handler_restores_factories_and_resets_tracer(self):
        tracer = LockTracer()
        tracer.install()
        lock = threading.Lock()  # traced: created inside the window? (site
        # is this test file, so it passes through untraced — fine either way)
        try:
            locktrace._uninstall_in_forked_child()
            assert threading.Lock is locktrace._REAL_LOCK
            assert not tracer._installed
            assert tracer.edges() == []
            # reinstalling afterwards works from the clean state
            tracer.install()
            assert tracer._installed
        finally:
            tracer.uninstall()
        assert lock is not None

    def test_handler_is_a_noop_without_an_installed_tracer(self):
        assert locktrace._INSTALLED is None
        locktrace._uninstall_in_forked_child()
        assert threading.Lock is locktrace._REAL_LOCK
