"""Shared helpers for the async-maintenance suite.

Every test needs the same rig: a loaded platform with all Q2 indexes
built, both relations wrapped in interceptors, and a pipeline over them.
``make_rig`` builds a fresh one (mutation tests cannot share state); the
helpers compare logical store/index state between two rigs so async
pipelines can be checked against synchronous twins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import ExperimentSetup, build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.indexes import IJLMR_TABLE, ISL_TABLE
from repro.core.isl import ISLRankJoin
from repro.maintenance.interceptor import MaintainedRelation
from repro.maintenance.worker import MaintenancePipeline
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.queries import q2
from repro.tpch.updates import generate_refresh_sets

SCALE = 0.2
SEED = 42

#: tables whose logical state defines consistency for these tests
STATE_TABLES = ("orders", "lineitem", IJLMR_TABLE, ISL_TABLE)


@dataclass
class Rig:
    """One loaded platform + interceptors + (optional) pipeline."""

    setup: ExperimentSetup
    relations: "dict[str, MaintainedRelation]"
    pipeline: "MaintenancePipeline | None" = None

    @property
    def platform(self):
        """The rig's simulated platform."""
        return self.setup.platform

    def refreshes(self, count: int = 1):
        """Deterministic TPC-H refresh sets for this rig's data."""
        return generate_refresh_sets(self.setup.data, count=count)


def make_rig(pipeline_kwargs: "dict | None" = None, **relation_kwargs) -> Rig:
    """A fresh rig; ``pipeline_kwargs=None`` skips the pipeline (sync twin)."""
    setup = build_setup(EC2_PROFILE, micro_scale=SCALE, seed=SEED)
    platform = setup.platform
    algorithms = {
        "ijlmr": IJLMRRankJoin(platform),
        "isl": ISLRankJoin(platform),
        "bfhm": BFHMRankJoin(platform),
    }
    for algorithm in algorithms.values():
        algorithm.prepare(q2(1))
        setup.engine.register(algorithm.name.lower(), algorithm)
    relations = {
        "orders": MaintainedRelation(
            platform, orders_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
            **relation_kwargs,
        ),
        "lineitem": MaintainedRelation(
            platform, lineitem_by_order_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
            **relation_kwargs,
        ),
    }
    pipeline = None
    if pipeline_kwargs is not None:
        pipeline = MaintenancePipeline(
            platform, relations.values(), **pipeline_kwargs
        )
    return Rig(setup, relations, pipeline)


def logical_cells(platform, table_name):
    """Visible cells as (row, family, qualifier, value) — no timestamps.

    Batches share one timestamp where singles draw one each, so state
    equivalence is at the value level.
    """
    return {
        (row.row, cell.family, cell.qualifier, cell.value)
        for row in platform.store.backing(table_name).all_rows()
        for cell in row
    }


def assert_same_state(rig_a: Rig, rig_b: Rig, label: str = "") -> None:
    """Both rigs expose identical logical base + index state."""
    for table in STATE_TABLES:
        assert logical_cells(rig_a.platform, table) == logical_cells(
            rig_b.platform, table
        ), f"{table} state diverged {label}"


def submit_refresh(rig: Rig, refresh) -> "list[int]":
    """Enqueue one TPC-H refresh set; returns the logged sequences."""
    pipeline = rig.pipeline
    return [
        pipeline.submit_insert_batch(
            "orders", [(o["orderkey"], o) for o in refresh.insert_orders]
        ),
        pipeline.submit_insert_batch(
            "lineitem", [(i["rowkey"], i) for i in refresh.insert_lineitems]
        ),
        pipeline.submit_delete_batch("orders", refresh.delete_orders),
        pipeline.submit_delete_batch("lineitem", refresh.delete_lineitems),
    ]


def apply_refresh_sync(rig: Rig, refresh) -> None:
    """The synchronous twin of :func:`submit_refresh`."""
    rig.relations["orders"].insert_batch(
        [(o["orderkey"], o) for o in refresh.insert_orders]
    )
    rig.relations["lineitem"].insert_batch(
        [(i["rowkey"], i) for i in refresh.insert_lineitems]
    )
    rig.relations["orders"].delete_batch(refresh.delete_orders)
    rig.relations["lineitem"].delete_batch(refresh.delete_lineitems)
