"""Asynchronous maintenance pipeline: enqueue, drain, watermarks, DLQ.

The tier-1 contract of :class:`~repro.maintenance.worker.
MaintenancePipeline`: a fully drained pipeline leaves exactly the state a
synchronous interceptor would; watermarks and staleness reports track the
log precisely; poisoned records dead-letter without blocking the rest;
retries back off on the simulated clock.  (Crash sweeps live in the
``chaos``-marked suite.)
"""

from __future__ import annotations

import pytest

from repro.errors import MaintenanceError, WALError, WorkerCrashError
from repro.maintenance.consistency import RetryPolicy
from repro.maintenance.faults import (
    CrashInjector,
    DrainPoint,
    FaultPlan,
    SlowDrainInjector,
    StoreFaultInjector,
)
from repro.maintenance.worker import BackgroundDrainer
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch.queries import q2

from tests.maintenance.rig import (
    apply_refresh_sync,
    assert_same_state,
    make_rig,
    submit_refresh,
)


class TestEnqueueDrain:
    def test_drained_pipeline_matches_synchronous_twin(self):
        async_rig = make_rig(pipeline_kwargs={"batch_size": 3})
        sync_rig = make_rig()
        for refresh_a, refresh_b in zip(
            async_rig.refreshes(2), sync_rig.refreshes(2)
        ):
            submit_refresh(async_rig, refresh_a)
            apply_refresh_sync(sync_rig, refresh_b)
        assert async_rig.pipeline.lag() > 0
        async_rig.pipeline.drain_all()
        assert async_rig.pipeline.lag() == 0
        assert_same_state(async_rig, sync_rig, "after drain")

    def test_queries_see_full_recall_after_drain(self):
        rig = make_rig(pipeline_kwargs={})
        for refresh in rig.refreshes(2):
            submit_refresh(rig, refresh)
        rig.pipeline.drain_all()
        query = q2(15)
        left = load_relation(rig.platform.store, query.left)
        right = load_relation(rig.platform.store, query.right)
        truth = naive_rank_join(left, right, query.function, 15)
        for algorithm in ("ijlmr", "isl", "bfhm"):
            result = rig.setup.engine.execute(query, algorithm=algorithm)
            assert result.recall_against(truth) == 1.0, algorithm

    def test_insert_then_delete_of_same_row_converges(self):
        """Log order is apply order: a row inserted and then deleted
        through the pipeline must vanish from base and indexes."""
        rig = make_rig(pipeline_kwargs={})
        refresh = rig.refreshes(1)[0]
        order = refresh.insert_orders[0]
        rig.pipeline.submit_insert("orders", order["orderkey"], order)
        rig.pipeline.submit_delete("orders", order["orderkey"])
        rig.pipeline.drain_all()
        assert rig.platform.store.backing("orders").read_row(
            order["orderkey"]
        ).empty

    def test_empty_submissions_are_not_logged(self):
        rig = make_rig(pipeline_kwargs={})
        assert rig.pipeline.submit_insert_batch("orders", []) == 0
        assert rig.pipeline.submit_delete_batch("orders", []) == 0
        assert rig.pipeline.lag() == 0
        assert rig.pipeline.drain_batch() == 0

    def test_unknown_table_rejected_at_submit(self):
        rig = make_rig(pipeline_kwargs={})
        with pytest.raises(MaintenanceError):
            rig.pipeline.submit_delete("nope", "r1")


class TestWatermarks:
    def test_sequences_and_watermarks_track_the_log(self):
        rig = make_rig(pipeline_kwargs={"batch_size": 2})
        refresh = rig.refreshes(1)[0]
        sequences = submit_refresh(rig, refresh)
        assert sequences == [1, 2, 3, 4]
        assert rig.pipeline.applied_sequence == 0
        assert rig.pipeline.lag() == 4

        assert rig.pipeline.drain_batch() == 2
        assert rig.pipeline.applied_sequence == 2
        assert rig.pipeline.lag() == 2

        rig.pipeline.drain_all()
        assert rig.pipeline.applied_sequence == 4
        for table in ("orders", "lineitem"):
            staleness = rig.pipeline.staleness(table)
            assert staleness.fresh
            assert staleness.pending == 0

    def test_staleness_reports_per_table_lag(self):
        rig = make_rig(pipeline_kwargs={})
        refresh = rig.refreshes(1)[0]
        rig.pipeline.submit_delete_batch("orders", refresh.delete_orders)
        orders = rig.pipeline.staleness("orders")
        lineitem = rig.pipeline.staleness("lineitem")
        assert orders.pending == 1 and not orders.fresh
        assert lineitem.pending == 0 and lineitem.fresh

    def test_drain_until_is_read_your_writes(self):
        rig = make_rig(pipeline_kwargs={"batch_size": 1})
        refresh = rig.refreshes(1)[0]
        sequences = submit_refresh(rig, refresh)
        rig.pipeline.drain_until(sequences[1])
        assert rig.pipeline.applied_sequence >= sequences[1]
        assert rig.pipeline.lag() > 0  # later submissions still pending

    def test_drain_until_beyond_log_raises(self):
        rig = make_rig(pipeline_kwargs={})
        with pytest.raises(WALError):
            rig.pipeline.drain_until(5)

    def test_backlog_bytes_returns_to_zero(self):
        rig = make_rig(pipeline_kwargs={})
        submit_refresh(rig, rig.refreshes(1)[0])
        assert rig.pipeline.backlog_bytes() > 0
        rig.pipeline.drain_all()
        assert rig.pipeline.backlog_bytes() == 0


class TestRetriesAndBackoff:
    def test_transient_faults_retried_to_same_state(self):
        faults = FaultPlan([StoreFaultInjector(failures_per_mutation=2)])
        flaky = make_rig(
            pipeline_kwargs={
                "faults": faults,
                "retry_policy": RetryPolicy(
                    max_attempts=6, initial_backoff_s=0.05
                ),
            }
        )
        clean = make_rig()
        submit_refresh(flaky, flaky.refreshes(1)[0])
        apply_refresh_sync(clean, clean.refreshes(1)[0])
        flaky.pipeline.drain_all()
        assert faults.injectors[0].injected > 0
        assert_same_state(flaky, clean, "under transient store faults")

    def test_backoff_is_charged_to_simulated_time(self):
        policy = RetryPolicy(max_attempts=4, initial_backoff_s=0.5)
        rig = make_rig(
            pipeline_kwargs={
                "faults": FaultPlan(
                    [StoreFaultInjector(failures_per_mutation=2)]
                ),
                "retry_policy": policy,
            }
        )
        submit_refresh(rig, rig.refreshes(1)[0])
        before = rig.platform.metrics.sim_time_s
        rig.pipeline.drain_all()
        charged = rig.platform.metrics.sim_time_s - before
        # every mutation waited out at least the first two backoff steps
        assert charged >= policy.backoff_s(0) + policy.backoff_s(1)

    def test_slow_drain_throttles_batches(self):
        rig = make_rig(
            pipeline_kwargs={
                "batch_size": 8,
                "faults": FaultPlan([SlowDrainInjector(1)]),
            }
        )
        submit_refresh(rig, rig.refreshes(1)[0])
        assert rig.pipeline.drain_batch() == 1
        assert rig.pipeline.lag() == 3


class TestDeadLetters:
    def _poisoned_rig(self, **pipeline_extra):
        faults = FaultPlan([StoreFaultInjector(poison_mutations=1)])
        rig = make_rig(
            pipeline_kwargs={
                "faults": faults,
                "retry_policy": RetryPolicy(max_attempts=2),
                **pipeline_extra,
            }
        )
        return rig, faults

    def test_poisoned_record_dead_letters_without_blocking(self):
        rig, _ = self._poisoned_rig()
        refresh = rig.refreshes(1)[0]
        submit_refresh(rig, refresh)
        rig.pipeline.drain_all()
        stats = rig.pipeline.stats()
        assert stats["dead_letters"] == 1
        assert stats["mutation_failures"] == 1
        # the checkpoint moved past the poisoned entry: the rest applied
        assert stats["applied_sequence"] == stats["last_sequence"]
        assert rig.pipeline.lag() == 0

    def test_dead_letters_can_be_retried_after_recovery(self):
        rig, faults = self._poisoned_rig()
        refresh = rig.refreshes(1)[0]
        submit_refresh(rig, refresh)
        rig.pipeline.drain_all()
        assert len(rig.pipeline.dead_letters) == 1
        # the store "recovers": stop injecting and re-apply the DLQ
        faults.injectors.clear()
        assert rig.pipeline.retry_dead_letters() == 1
        assert rig.pipeline.dead_letters == []

        clean = make_rig()
        apply_refresh_sync(clean, clean.refreshes(1)[0])
        assert_same_state(rig, clean, "after DLQ retry")

    def test_halt_on_dead_letter_stops_the_pipeline(self):
        rig, _ = self._poisoned_rig(halt_on_dead_letter=True)
        submit_refresh(rig, rig.refreshes(1)[0])
        from repro.maintenance.consistency import MutationFailedError

        with pytest.raises(MutationFailedError):
            rig.pipeline.drain_all()
        with pytest.raises(MaintenanceError):
            rig.pipeline.drain_batch()
        rig.pipeline.recover()
        rig.pipeline.drain_all()  # poisoned entry stays dead-lettered
        assert rig.pipeline.lag() == 0


class TestCrashSmoke:
    """One representative crash/recover cycle stays in tier-1; the full
    drain-point × occurrence sweep is in the chaos suite."""

    def test_crash_after_apply_recovers_to_clean_state(self):
        crashed = make_rig(
            pipeline_kwargs={
                "batch_size": 2,
                "faults": FaultPlan(
                    [CrashInjector(DrainPoint.AFTER_APPLY, occurrence=1)]
                ),
            }
        )
        clean = make_rig()
        submit_refresh(crashed, crashed.refreshes(1)[0])
        apply_refresh_sync(clean, clean.refreshes(1)[0])

        with pytest.raises(WorkerCrashError):
            crashed.pipeline.drain_all()
        assert crashed.pipeline.crashed
        with pytest.raises(MaintenanceError):
            crashed.pipeline.drain_batch()

        replayable = crashed.pipeline.recover()
        assert replayable > 0
        crashed.pipeline.drain_all()
        assert crashed.pipeline.lag() == 0
        assert crashed.pipeline.stats()["recoveries"] == 1
        assert_same_state(crashed, clean, "after crash recovery")

    def test_recover_without_crash_is_harmless(self):
        rig = make_rig(pipeline_kwargs={})
        submit_refresh(rig, rig.refreshes(1)[0])
        before = rig.pipeline.lag()
        assert rig.pipeline.recover() == before
        assert rig.pipeline.lag() == before
        rig.pipeline.drain_all()
        assert rig.pipeline.lag() == 0


class TestBackgroundDrainer:
    def test_drainer_empties_the_backlog(self):
        rig = make_rig(pipeline_kwargs={"batch_size": 2})
        drainer = BackgroundDrainer(rig.pipeline, interval_s=0.001).start()
        try:
            submit_refresh(rig, rig.refreshes(1)[0])
        finally:
            drainer.stop(drain=True)
        assert rig.pipeline.lag() == 0
        clean = make_rig()
        apply_refresh_sync(clean, clean.refreshes(1)[0])
        assert_same_state(rig, clean, "after background drain")
