"""Chaos suite: crash the maintenance worker at every drain point.

The §6 recovery claim, proven by sweep: wherever the worker dies —
batch start, after delete resolution, after the mutations applied, after
the checkpoint — replaying the WAL from the last durable checkpoint with
original timestamps converges to the never-crashed run's exact state,
and every algorithm's query results are pinned to the clean twin's.

Marked ``chaos`` and excluded from tier-1 (run via ``make chaos``): the
sweep builds a fresh platform per scenario.
"""

from __future__ import annotations

import pytest

from repro.errors import WorkerCrashError
from repro.maintenance.consistency import RetryPolicy
from repro.maintenance.faults import (
    CrashInjector,
    DrainPoint,
    FaultPlan,
    SlowDrainInjector,
    StoreFaultInjector,
)
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch.queries import q2

from tests.maintenance.rig import (
    apply_refresh_sync,
    assert_same_state,
    make_rig,
    submit_refresh,
)

pytestmark = pytest.mark.chaos

K = 10
ALGORITHMS = ("ijlmr", "isl", "bfhm")


def _result_pin(rig):
    """Frozen query outcome: the tuple set every algorithm returns."""
    query = q2(K)
    pins = {}
    for algorithm in ALGORITHMS:
        result = rig.setup.engine.execute(query, algorithm=algorithm)
        pins[algorithm] = [(t.as_pair(), t.score) for t in result.tuples]
    return pins


@pytest.fixture(scope="module")
def clean_twin():
    """One never-crashed run: final state + pinned query results."""
    rig = make_rig()
    for refresh in rig.refreshes(2):
        apply_refresh_sync(rig, refresh)
    return rig, _result_pin(rig)


@pytest.mark.parametrize("occurrence", [1, 2])
@pytest.mark.parametrize("point", DrainPoint.ALL)
def test_crash_anywhere_recovers_exactly(point, occurrence, clean_twin):
    clean_rig, clean_pins = clean_twin
    rig = make_rig(
        pipeline_kwargs={
            "batch_size": 2,
            "faults": FaultPlan([CrashInjector(point, occurrence=occurrence)]),
        }
    )
    for refresh in rig.refreshes(2):
        submit_refresh(rig, refresh)

    with pytest.raises(WorkerCrashError) as crash:
        rig.pipeline.drain_all()
    assert crash.value.point == point
    assert rig.pipeline.crashed

    rig.pipeline.recover()
    rig.pipeline.drain_all()
    assert rig.pipeline.lag() == 0
    assert not rig.pipeline.crashed

    assert_same_state(rig, clean_rig, f"crash@{point}#{occurrence}")
    assert _result_pin(rig) == clean_pins


def test_repeated_crashes_still_converge(clean_twin):
    """A worker that dies on every single batch (crash, recover, crash
    again at the next batch) still drains to the clean state."""
    clean_rig, clean_pins = clean_twin
    rig = make_rig(pipeline_kwargs={"batch_size": 1})
    for refresh in rig.refreshes(2):
        submit_refresh(rig, refresh)

    crashes = 0
    while rig.pipeline.lag() > 0:
        # occurrence=2: each round checkpoints one record before dying,
        # so the run converges even though every drain attempt crashes
        rig.pipeline.faults = FaultPlan(
            [CrashInjector(DrainPoint.AFTER_APPLY, occurrence=2)]
        )
        try:
            rig.pipeline.drain_all()
        except WorkerCrashError:
            crashes += 1
            rig.pipeline.recover()
        rig.pipeline.faults = None
    assert crashes >= 2
    assert_same_state(rig, clean_rig, "after repeated crashes")
    assert _result_pin(rig) == clean_pins


def test_crash_with_store_faults_and_throttle(clean_twin):
    """The full storm: transient store failures, a throttled worker, and
    a crash mid-drain — recovery still pins the clean results."""
    clean_rig, clean_pins = clean_twin
    faults = FaultPlan(
        [
            StoreFaultInjector(failures_per_mutation=1),
            SlowDrainInjector(2),
            CrashInjector(DrainPoint.AFTER_CHECKPOINT, occurrence=2),
        ]
    )
    rig = make_rig(
        pipeline_kwargs={
            "batch_size": 4,
            "faults": faults,
            "retry_policy": RetryPolicy(max_attempts=6, initial_backoff_s=0.01),
        }
    )
    for refresh in rig.refreshes(2):
        submit_refresh(rig, refresh)

    with pytest.raises(WorkerCrashError):
        rig.pipeline.drain_all()
    rig.pipeline.recover()
    rig.pipeline.drain_all()

    assert rig.pipeline.lag() == 0
    assert rig.pipeline.stats()["dead_letters"] == 0
    assert_same_state(rig, clean_rig, "under the combined storm")
    assert _result_pin(rig) == clean_pins


def test_slow_drain_grows_staleness_under_ingest():
    """A lagging worker accumulates exactly the backlog the staleness
    contract reports — and catches up once the throttle lifts."""
    rig = make_rig(
        pipeline_kwargs={"batch_size": 8, "faults": FaultPlan([SlowDrainInjector(1)])}
    )
    refreshes = rig.refreshes(2)
    lags = []
    for refresh in refreshes:
        submit_refresh(rig, refresh)
        rig.pipeline.drain_batch()  # throttled to one record
        lags.append(rig.pipeline.lag())
    assert lags[-1] > lags[0]  # ingest outruns the throttled drain
    assert rig.pipeline.lag() == sum(
        rig.pipeline.staleness(t).pending for t in rig.pipeline.tables
    )
    rig.pipeline.faults = None
    rig.pipeline.drain_all()
    assert rig.pipeline.lag() == 0


def test_delete_resolution_survives_crash_between_base_and_index():
    """The poster-child §6 hazard: crash after the delete resolved (and
    the base tombstones landed) but before the checkpoint.  Replay must
    use the *persisted* resolution — re-resolving would find nothing and
    strand index entries."""
    clean = make_rig()
    rig = make_rig(
        pipeline_kwargs={
            "batch_size": 1,
            "faults": FaultPlan(
                [CrashInjector(DrainPoint.AFTER_APPLY, occurrence=1)]
            ),
        }
    )
    refresh = rig.refreshes(1)[0]
    rig.pipeline.submit_delete_batch("orders", refresh.delete_orders)
    clean.relations["orders"].delete_batch(
        clean.refreshes(1)[0].delete_orders
    )

    with pytest.raises(WorkerCrashError):
        rig.pipeline.drain_all()
    record = rig.pipeline.log.entries_after(0)[0].payload
    assert record.resolved is not None  # resolution persisted pre-crash

    rig.pipeline.recover()
    rig.pipeline.drain_all()
    assert_same_state(rig, clean, "delete replay from persisted resolution")


def test_chaos_counters_describe_the_run():
    rig = make_rig(
        pipeline_kwargs={
            "faults": FaultPlan(
                [CrashInjector(DrainPoint.BATCH_START, occurrence=1)]
            ),
        }
    )
    submit_refresh(rig, rig.refreshes(1)[0])
    with pytest.raises(WorkerCrashError):
        rig.pipeline.drain_all()
    stats = rig.pipeline.stats()
    assert stats["crashed"] is True
    assert stats["records_applied"] == 0  # died before any work
    rig.pipeline.recover()
    rig.pipeline.drain_all()
    stats = rig.pipeline.stats()
    assert stats["recoveries"] == 1
    assert stats["records_applied"] == stats["records_submitted"]
