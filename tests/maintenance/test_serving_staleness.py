"""Bounded staleness at the serving layer.

:meth:`QueryServer.attach_maintenance` wires an async pipeline into
admission control: ``stale_ok`` serves through lag (and EXPLAIN surfaces
it), ``wait`` drains read-your-writes, ``bounded`` drains inputs to
within ``max_lag``, ``shed`` rejects, and ``max_backlog`` pushes back on
new queries when the worker cannot keep up.  The plan cache revalidates
against the pipeline's applied-sequence watermarks.
"""

from __future__ import annotations

import pytest

from repro.errors import ServerOverloadedError, StalenessBoundExceededError
from repro.maintenance.consistency import MutationFailedError
from repro.query.explain import render_plan
from repro.serving.server import QueryServer
from repro.tpch.queries import q2

from tests.maintenance.rig import make_rig, submit_refresh

QUERY = q2(5)


@pytest.fixture()
def served_rig():
    rig = make_rig(pipeline_kwargs={"batch_size": 2})
    server = QueryServer(rig.platform, workers=2)
    try:
        yield rig, server
    finally:
        server.close()


def _backlog(rig) -> int:
    submit_refresh(rig, rig.refreshes(1)[0])
    return rig.pipeline.lag()


class TestPolicies:
    def test_unknown_policy_rejected(self, served_rig):
        rig, server = served_rig
        with pytest.raises(ValueError):
            server.attach_maintenance(rig.pipeline, policy="eventually")

    def test_stale_ok_serves_through_lag_and_explains_it(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="stale_ok")
        lag = _backlog(rig)
        plan = server.explain(QUERY)
        assert plan.staleness  # at least one lagging input reported
        assert sum(plan.staleness.values()) <= lag
        assert "staleness: table" in render_plan(plan)
        served = server.execute(QUERY, algorithm="isl")
        assert served.ok
        assert rig.pipeline.lag() == lag  # nothing drained

    def test_wait_policy_is_read_your_writes(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="wait")
        _backlog(rig)
        target = rig.pipeline.log.last_sequence
        served = server.execute(QUERY, algorithm="isl")
        assert served.ok
        assert rig.pipeline.applied_sequence >= target
        assert server.stats()["drains_triggered"] == 1
        # a second query with nothing pending triggers no drain
        server.execute(QUERY, algorithm="isl")
        assert server.stats()["drains_triggered"] == 1

    def test_bounded_policy_drains_to_within_the_bound(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="bounded", max_lag=1)
        _backlog(rig)
        served = server.execute(QUERY, algorithm="isl")
        assert served.ok
        for binding in QUERY.inputs:
            assert rig.pipeline.lag(binding.table) <= 1

    def test_shed_policy_rejects_then_recovers(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="shed", max_lag=0)
        _backlog(rig)
        with pytest.raises(StalenessBoundExceededError):
            server.execute(QUERY, algorithm="isl")
        assert server.stats()["staleness_rejects"] == 1
        rig.pipeline.drain_all()
        assert server.execute(QUERY, algorithm="isl").ok

    def test_backpressure_sheds_new_queries(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="stale_ok", max_backlog=2)
        lag = _backlog(rig)
        assert lag > 2
        with pytest.raises(ServerOverloadedError):
            server.execute(QUERY, algorithm="isl")
        assert server.stats()["backpressure_shed"] == 1
        rig.pipeline.drain_all()
        assert server.execute(QUERY, algorithm="isl").ok


class TestPlanCacheWatermarks:
    def test_drain_invalidates_cached_plans_via_watermark(self, served_rig):
        """A drain moves the applied-sequence watermark even when nothing
        bumps the statistics versions, and cached plans must notice."""
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline, policy="stale_ok")
        server.explain(QUERY)
        before = server.plan_cache.stats()
        server.explain(QUERY)
        assert server.plan_cache.stats()["hits"] == before["hits"] + 1

        _backlog(rig)
        rig.pipeline.drain_all()  # watermark moved; versions untouched
        server.explain(QUERY)
        assert (
            server.plan_cache.stats()["invalidations"]
            == before["invalidations"] + 1
        )


class TestMaintenanceVisibility:
    def test_stats_surface_pipeline_counters(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline)
        _backlog(rig)
        maintenance = server.stats()["maintenance"]
        assert maintenance["backlog"] == rig.pipeline.lag()
        assert maintenance["dead_letters"] == 0
        rig.pipeline.drain_all()
        assert server.stats()["maintenance"]["backlog"] == 0

    def test_maintenance_failures_counted_not_swallowed(self, served_rig):
        rig, server = served_rig
        server.attach_maintenance(rig.pipeline)
        with pytest.raises(MutationFailedError):
            with server.maintenance("orders"):
                raise MutationFailedError("stuck store")
        assert server.stats()["maintenance_failures"] == 1
