"""Row/cell wire codec for shipping store data to worker processes.

Process-parallel map waves hand each worker one split's rows.  Rather than
pickling live :class:`~repro.store.cell.RowResult` objects (whose layout is
an implementation detail), splits cross the boundary as a deterministic
byte block built from each cell's frozen on-wire fields — the same
``(row, family, qualifier, value, timestamp)`` quintuple whose sizes the
simulated byte accounting is defined over, with cell *values* (including
PR-5's frozen Golomb blob bytes) passed through verbatim.  Encoding is a
pure function of the row list, so a block is reproducible and
diff-friendly in tests.

Layout (all integers big-endian)::

    block  := magic "RW1" + u32 row_count + row*
    row    := str(row_key) + tag + u32 cell_count + cell*
    tag    := u32 length + bytes | u32 0xFFFFFFFF          (absent)
    cell   := str(family) + str(qualifier) + u32 vlen + value
              + u64 timestamp + u8 is_delete
    str(s) := u32 length + utf-8 bytes

Tags carry :class:`~repro.mapreduce.job.UnionTableInput`'s source-table
labels.  Tombstones never appear in scan output, but the flag is encoded
anyway so the codec round-trips any cell.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.store.cell import Cell, RowResult

MAGIC = b"RW1"
_NO_TAG = 0xFFFFFFFF
_U32 = struct.Struct(">I")
_CELL_TAIL = struct.Struct(">QB")


def _pack_str(out: "list[bytes]", text: str) -> None:
    raw = text.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def encode_rows(
    rows: "Iterable[RowResult]", tags: "list[str] | None" = None
) -> bytes:
    """Encode ``rows`` (with optional per-row source tags) as one block."""
    rows = list(rows)
    if tags is not None and len(tags) != len(rows):
        raise ValueError(f"{len(tags)} tags for {len(rows)} rows")
    out: "list[bytes]" = [MAGIC, _U32.pack(len(rows))]
    for index, row in enumerate(rows):
        _pack_str(out, row.row)
        if tags is None:
            out.append(_U32.pack(_NO_TAG))
        else:
            _pack_str(out, tags[index])
        out.append(_U32.pack(len(row.cells)))
        for cell in row.cells:
            _pack_str(out, cell.family)
            _pack_str(out, cell.qualifier)
            out.append(_U32.pack(len(cell.value)))
            out.append(cell.value)
            out.append(_CELL_TAIL.pack(cell.timestamp, int(cell.is_delete)))
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def take(self, length: int) -> bytes:
        raw = self.data[self.pos:self.pos + length]
        if len(raw) != length:
            raise ValueError("truncated row block")
        self.pos += length
        return raw

    def string(self) -> str:
        return self.take(self.u32()).decode("utf-8")


def decode_rows(block: bytes) -> "list[tuple[str | None, RowResult]]":
    """Inverse of :func:`encode_rows`: ``(tag, row)`` pairs in block order
    (``tag`` is None for untagged blocks)."""
    reader = _Reader(block)
    if reader.take(len(MAGIC)) != MAGIC:
        raise ValueError("not a row block (bad magic)")
    decoded: "list[tuple[str | None, RowResult]]" = []
    for _ in range(reader.u32()):
        row_key = reader.string()
        tag_length = reader.u32()
        tag = None if tag_length == _NO_TAG else reader.take(tag_length).decode("utf-8")
        row = RowResult(row_key)
        for _ in range(reader.u32()):
            family = reader.string()
            qualifier = reader.string()
            value = reader.take(reader.u32())
            timestamp, is_delete = _CELL_TAIL.unpack(reader.take(_CELL_TAIL.size))
            row.cells.append(
                Cell(row_key, family, qualifier, value, timestamp, bool(is_delete))
            )
        decoded.append((tag, row))
    return decoded
