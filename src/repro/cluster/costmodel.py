"""Deterministic cost model for the simulated cluster.

Parameters are calibrated to the two environments of §7.1:

* ``EC2_PROFILE`` — 1 master + 8 workers of m1.large class: modest disks,
  virtualized network with noticeable RPC latency, and the full Hadoop job
  startup overhead that dominates small MapReduce jobs.
* ``LC_PROFILE`` — the 5-node lab cluster: many cores, 10 local disks per
  node, low-latency LAN.

The absolute numbers are not the point (our substrate is a simulator, not
the authors' testbed); the *ratios* are what produce the paper's shapes:
RPC latency vs scan bandwidth decides coordinator-algorithm costs, and job
startup plus full-scan volume decides MapReduce costs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Resource prices for one simulated environment.

    All times are seconds, all bandwidths bytes/second.
    """

    name: str
    #: worker nodes available for regions and MR tasks
    worker_nodes: int
    #: map/reduce task slots per worker node
    task_slots_per_node: int
    #: one-way latency charged per RPC round trip (client <-> region server)
    rpc_latency_s: float
    #: network throughput between any two nodes
    network_bandwidth_bps: float
    #: sequential disk read bandwidth per node
    disk_seq_bandwidth_bps: float
    #: extra cost of a random (point) disk read
    disk_random_read_s: float
    #: CPU cost of processing one tuple/cell
    cpu_tuple_s: float
    #: fixed overhead of launching a MapReduce job
    mr_job_startup_s: float
    #: overhead of launching one wave of tasks
    mr_task_startup_s: float
    #: HDFS replication factor (writes are charged this many copies)
    hdfs_replication: int
    #: dollars per read-capacity-unit-hour block (DynamoDB: $0.01 per 50
    #: units per hour; see §7.1 footnote)
    dollars_per_rcu_hour: float = 0.01 / 50.0
    #: time dilation: the miniature benchmark dataset stands in for one
    #: ``data_scale``× larger, so per-byte and per-tuple *times* are scaled
    #: by it while per-job/per-RPC constants are not.  Byte and KV-read
    #: *counters* stay raw — only the simulated clock dilates.
    data_scale: float = 1.0
    #: coordinator CPU per BFHM blob entry decoded, as a fraction of the
    #: full per-tuple cost.  Profiles representing larger scale factors
    #: have proportionally more entries per bucket, hence a larger factor
    #: (LC stands in for scale 500, EC2 for scale 10).
    blob_decode_cpu_factor: float = 1.0
    #: client-side overhead of dispatching a scatter round to one *extra*
    #: region server (marshalling + an extra in-flight connection): a
    #: round touching S servers pays ``fanout_dispatch_s x (S - 1)`` on
    #: top of its slowest server queue.  Not dilated by ``data_scale`` —
    #: like ``rpc_latency_s`` it is a per-operation constant.
    fanout_dispatch_s: float = 0.0005

    def network_time(self, num_bytes: int) -> float:
        """Transfer time for ``num_bytes`` across the network."""
        return num_bytes * self.data_scale / self.network_bandwidth_bps

    def disk_seq_time(self, num_bytes: int) -> float:
        """Sequential-read time for ``num_bytes`` from one node's disks."""
        return num_bytes * self.data_scale / self.disk_seq_bandwidth_bps

    def cpu_time(self, num_tuples: int) -> float:
        """Processing time for ``num_tuples`` tuples on one core."""
        return num_tuples * self.cpu_tuple_s * self.data_scale

    def scatter_round_time(self, per_server_seconds: "list[float]") -> float:
        """Simulated time of one parallel scatter round.

        ``per_server_seconds`` holds each touched server's queue — the
        summed simulated time of the tasks it served.  The round costs
        the slowest queue (servers work concurrently) plus the dispatch
        overhead of every server beyond the first.  With one server this
        degenerates to the serial sum, so a "scatter" that lands on a
        single server prices identically to the seed serial path.
        """
        if not per_server_seconds:
            return 0.0
        return max(per_server_seconds) + self.fanout_dispatch_s * (
            len(per_server_seconds) - 1
        )

    def dollars(self, kv_reads: int) -> float:
        """Dollar cost of ``kv_reads`` key-value reads.

        Follows the paper's DynamoDB-based accounting: every KV pair read is
        one unit of read capacity (all pairs < 1 KB), and read throughput is
        priced per provisioned-unit-hour.  We price the units directly so
        cost is proportional to reads, as in Figures 7(c,f)/8(c,f).
        """
        return kv_reads * self.dollars_per_rcu_hour


#: Amazon EC2, 1+8 m1.large nodes (2 vCPU, 7.5 GB RAM, instance storage);
#: the benchmark dataset (micro-scale TPC-H) stands in for scale factor 10
EC2_PROFILE = CostModel(
    name="EC2",
    worker_nodes=8,
    task_slots_per_node=2,
    rpc_latency_s=0.004,
    network_bandwidth_bps=80e6,
    disk_seq_bandwidth_bps=90e6,
    disk_random_read_s=0.0015,
    cpu_tuple_s=2.0e-6,
    mr_job_startup_s=12.0,
    mr_task_startup_s=1.5,
    hdfs_replication=3,
    data_scale=2000.0,
    blob_decode_cpu_factor=0.15,
    fanout_dispatch_s=0.0008,
)

#: in-house lab cluster, 5 nodes x 32 cores x 64 GB RAM x 10 disks; the
#: benchmark dataset stands in for scale factor 500 (hence bigger dilation)
LC_PROFILE = CostModel(
    name="LC",
    worker_nodes=5,
    task_slots_per_node=16,
    rpc_latency_s=0.0003,
    network_bandwidth_bps=1e9,
    disk_seq_bandwidth_bps=800e6,
    disk_random_read_s=0.006,
    cpu_tuple_s=0.4e-6,
    mr_job_startup_s=8.0,
    mr_task_startup_s=0.8,
    hdfs_replication=3,
    data_scale=5000.0,
    blob_decode_cpu_factor=1.0,
    fanout_dispatch_s=0.00006,
)


def ec2_profile_with_nodes(worker_nodes: int) -> CostModel:
    """The EC2 profile resized to ``worker_nodes`` workers (the paper's
    3-, 5-, and 9-node EC2 clusters are 1 master + 2/4/8 workers)."""
    import dataclasses

    return dataclasses.replace(
        EC2_PROFILE, name=f"EC2x{worker_nodes}", worker_nodes=worker_nodes
    )
