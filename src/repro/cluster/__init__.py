"""Simulated cluster: nodes, cost model, metrics, and the simulation context.

The paper evaluates on real clusters (EC2 and a lab cluster) with three
metrics: query turnaround time, network bandwidth, and dollar cost (§7.1).
This subpackage supplies the substitute: a deterministic cost model that
charges every store/RPC/MapReduce operation for the resources it would have
consumed, accumulated in a :class:`MetricsCollector`.
"""

from repro.cluster.costmodel import CostModel, EC2_PROFILE, LC_PROFILE
from repro.cluster.metrics import MetricsCollector, MetricsSnapshot
from repro.cluster.simulation import Node, SimCluster, SimContext

__all__ = [
    "CostModel",
    "EC2_PROFILE",
    "LC_PROFILE",
    "MetricsCollector",
    "MetricsSnapshot",
    "Node",
    "SimCluster",
    "SimContext",
]
