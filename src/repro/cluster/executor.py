"""Scatter/gather execution over a shared region-server thread pool.

This is the execution half of the multi-server topology: callers split a
batched store operation into one :class:`ScatterTask` per region server
and hand the batch to :func:`scatter_gather`, which

1. runs every task **concurrently on real threads** (one process-wide
   :class:`ScatterPool`, shared by all platforms, created lazily);
2. captures each task's simulated charges on a private per-task
   :class:`~repro.cluster.metrics.MetricsCollector` via the serving
   layer's :class:`~repro.serving.metrics.ThreadLocalMetricsRouter`;
3. gathers results **in task order** (never completion order) and folds
   the captured charges back into the caller's collector: byte / KV-read
   counters are absorbed unchanged (the work happened, wherever it ran),
   while simulated time is re-priced as one *parallel round* —

       round = max over servers of (sum of that server's task times)
               + fanout_dispatch_s x (servers - 1)

   the per-server queueing model (:meth:`CostModel.scatter_round_time`).
   Tasks on the same server queue behind each other; distinct servers
   overlap; each extra server costs a fixed dispatch overhead.

Determinism: charges are captured per task and combined in task order, so
the resulting simulated metrics are a pure function of the store state and
the task list — independent of thread scheduling, pool size, and
completion order.  ``tests/cluster/test_executor.py`` pins this.

Fallbacks run the tasks inline, serially, on the caller's thread (charges
flow through untouched, exactly the seed behaviour): single-server
topologies, batches whose tasks all land on one server, and *nested*
scatters — a task that itself calls :func:`scatter_gather` (detected with
a thread-local flag) must not block waiting on the same bounded pool that
is running it, the classic shared-pool deadlock.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.metrics import MetricsCollector
from repro.common.registry import FnRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.simulation import SimContext

#: capacity of the process-wide pool.  Sized for fan-out breadth (the
#: paper's clusters run 2-8 region servers), not CPU parallelism — tasks
#: are short and the simulated clock, not wall-clock, carries the model.
SCATTER_POOL_WORKERS = 8


class ScatterPool:
    """Process-wide lazily-created thread pool for scatter rounds.

    One pool serves every platform in the process: scatter rounds are
    synchronous (submit then gather), so rounds from different serving
    threads interleave safely, and a bounded worker count keeps thread
    explosion impossible.  Nested rounds never reach the pool (see
    :func:`scatter_gather`), so a full pool cannot deadlock on itself.
    """

    def __init__(self, max_workers: int = SCATTER_POOL_WORKERS) -> None:
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._executor: "ThreadPoolExecutor | None" = None
        self._pid: "int | None" = None

    def executor(self) -> ThreadPoolExecutor:
        """The pool, created on first use and re-created after a fork.

        A ``fork()``ed child inherits this object but *not* the pool's
        worker threads (only the forking thread survives in the child), so
        submitting to an inherited executor would hang forever.  The
        creating PID is remembered and a stale executor is dropped —
        without joining threads that don't exist here — and rebuilt
        lazily, per process.
        """
        with self._lock:
            if self._executor is not None and self._pid != os.getpid():
                self._executor = None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="scatter",
                )
                self._pid = os.getpid()
            return self._executor

    def shutdown(self) -> None:
        """Tear the pool down (tests); the next round recreates it."""
        with self._lock:
            executor = self._executor
            created_here = self._pid == os.getpid()
            self._executor = None
            self._pid = None
        if executor is not None and created_here:
            executor.shutdown(wait=True)


_SHARED_POOL = ScatterPool()


def shared_pool() -> ScatterPool:
    """The process-wide pool shared by every scatter/gather caller."""
    return _SHARED_POOL


@dataclass(frozen=True)
class ScatterTask:
    """One server's share of a scatter round.

    ``run`` executes that server's slice of the batched operation and
    charges its work through the ambient context metrics; it must only
    touch thread-safe state (lock-free store reads, routed metrics).

    ``proc`` optionally names the same work as a registered, picklable
    task (:class:`~repro.common.registry.FnRef`).  When every task of a
    round carries one and the context runs ``parallelism="process"``, the
    round executes on the spawn-based process pool instead of threads —
    same results, same fold discipline, same simulated charges (workers
    ship :class:`~repro.cluster.metrics.MetricsSnapshot` deltas back).
    Store-touching tasks cannot offer a ``proc`` form: a worker process
    has no live store to read.
    """

    server_id: int
    run: Callable[[], Any]
    proc: "FnRef | None" = None


_scatter_state = threading.local()


def in_scatter() -> bool:
    """Whether the calling thread is executing inside a scatter task."""
    return getattr(_scatter_state, "active", False)


def scatter_gather(
    ctx: "SimContext",
    tasks: "list[ScatterTask]",
    label: "str | None" = None,
) -> "list[Any]":
    """Run ``tasks`` as one parallel round; return results in task order.

    Charges the caller one per-server-queue round (module docstring) and
    bumps ``fanout_rounds`` / ``fanout_tasks`` / ``fanout_overlap_saved_s``
    (plus ``fanout_rounds_<label>``) on the caller's collector.  Falls
    back to inline serial execution — charges untouched — when the
    topology is single-server, all tasks share a server, or the caller is
    itself a scatter task.
    """
    if not tasks:
        return []
    server_ids = {task.server_id for task in tasks}
    if not ctx.topology.parallel or len(server_ids) <= 1 or in_scatter():
        return [task.run() for task in tasks]

    # imported here: serving builds on cluster, not the other way around
    from repro.serving.metrics import install_router

    router = install_router(ctx)

    if ctx.parallelism == "process" and all(
        task.proc is not None for task in tasks
    ):
        # every task named a registered picklable form: run the round in
        # worker processes; each ships back (result, charge snapshot)
        from repro.cluster.procpool import shared_process_pool

        outcomes = shared_process_pool().run([task.proc for task in tasks])
        results = [result for result, _ in outcomes]
        snapshots = [snapshot for _, snapshot in outcomes]
    else:
        rate = router.base.dollars_per_kv_read
        collectors = [
            MetricsCollector(dollars_per_kv_read=rate) for _ in tasks
        ]

        def _execute(task: ScatterTask, collector: MetricsCollector) -> Any:
            _scatter_state.active = True
            try:
                with router.scoped(collector):
                    return task.run()
            finally:
                _scatter_state.active = False

        executor = shared_pool().executor()
        futures = [
            executor.submit(_execute, task, collector)
            for task, collector in zip(tasks, collectors)
        ]
        results = [future.result() for future in futures]
        snapshots = [collector.snapshot() for collector in collectors]

    # fold captured charges back in *task order* — combination must not
    # depend on which thread/process finished first, nor on the backend
    per_server: "dict[int, float]" = {}
    for task, captured in zip(tasks, snapshots):
        router.active.absorb_counts(captured)
        per_server[task.server_id] = (
            per_server.get(task.server_id, 0.0) + captured.sim_time_s
        )
    queue_times = list(per_server.values())
    metrics = ctx.metrics
    metrics.advance_time(ctx.cost_model.scatter_round_time(queue_times))
    metrics.bump("fanout_rounds")
    metrics.bump("fanout_tasks", len(tasks))
    metrics.bump("fanout_overlap_saved_s", sum(queue_times) - max(queue_times))
    if label is not None:
        metrics.bump(f"fanout_rounds_{label}")
    return results
