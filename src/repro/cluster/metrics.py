"""Metric accumulation for the paper's three evaluation axes (§7.1).

A :class:`MetricsCollector` accumulates:

* **simulated time** — advanced by every charged operation; parallel
  sections (MapReduce waves) are advanced once by their critical path;
* **network bytes** — every byte that crosses node boundaries, including
  HDFS replication copies and MapReduce shuffle traffic;
* **kv reads** — key-value pairs read from the store (the DynamoDB
  read-capacity-unit dollar cost driver);

plus free-form named counters used by tests and reports (e.g. peak reducer
memory, tuples shuffled).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable copy of a collector's totals, used in results/reports."""

    sim_time_s: float
    network_bytes: int
    kv_reads: int
    disk_bytes_read: int
    dollars: float
    counters: dict[str, float]

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Difference of two snapshots (for measuring a query in isolation)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) - value
        return MetricsSnapshot(
            sim_time_s=self.sim_time_s - other.sim_time_s,
            network_bytes=self.network_bytes - other.network_bytes,
            kv_reads=self.kv_reads - other.kv_reads,
            disk_bytes_read=self.disk_bytes_read - other.disk_bytes_read,
            dollars=self.dollars - other.dollars,
            counters=counters,
        )


@dataclass
class MetricsCollector:
    """Mutable accumulator of simulation costs."""

    dollars_per_kv_read: float = 0.01 / 50.0
    sim_time_s: float = 0.0
    network_bytes: int = 0
    kv_reads: int = 0
    disk_bytes_read: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def advance_time(self, seconds: float) -> None:
        """Advance the simulated clock by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by negative {seconds}")
        self.sim_time_s += seconds

    def add_network(self, num_bytes: int) -> None:
        """Account bytes crossing node boundaries."""
        self.network_bytes += num_bytes

    def add_kv_reads(self, count: int) -> None:
        """Account key-value pairs read from the store."""
        self.kv_reads += count

    def add_disk_read(self, num_bytes: int) -> None:
        self.disk_bytes_read += num_bytes

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def record_peak(self, name: str, value: float) -> None:
        """Track the maximum of a quantity (e.g. reducer memory footprint)."""
        if value > self.counters.get(name, float("-inf")):
            self.counters[name] = value

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite a named counter (e.g. rebasing a per-phase peak)."""
        self.counters[name] = value

    def absorb_counts(self, captured: MetricsSnapshot) -> None:
        """Fold another collector's totals into this one **without its
        simulated time**.

        The scatter/gather executor captures each parallel task's charges
        on a private collector, then absorbs the byte / KV-read / named
        counters here (that work happened regardless of where it ran) and
        charges the round's *time* separately as the max over per-server
        queues — the whole point of fan-out is that task times overlap.
        """
        self.network_bytes += captured.network_bytes
        self.kv_reads += captured.kv_reads
        self.disk_bytes_read += captured.disk_bytes_read
        for name, value in captured.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of the current totals."""
        return MetricsSnapshot(
            sim_time_s=self.sim_time_s,
            network_bytes=self.network_bytes,
            kv_reads=self.kv_reads,
            disk_bytes_read=self.disk_bytes_read,
            dollars=self.kv_reads * self.dollars_per_kv_read,
            counters=dict(self.counters),
        )

    def reset(self) -> None:
        """Zero all totals (indices and data stay; only metering restarts)."""
        self.sim_time_s = 0.0
        self.network_bytes = 0
        self.kv_reads = 0
        self.disk_bytes_read = 0
        self.counters.clear()
