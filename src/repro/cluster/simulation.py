"""Cluster topology and the shared simulation context.

A :class:`SimCluster` is a set of worker :class:`Node` objects plus one
coordinator/master node.  Regions and HDFS blocks are placed on workers;
the MapReduce runtime asks the cluster where data lives to schedule local
tasks (the locality property §4.1.2 relies on: "the Hadoop framework
ensures that each mapper is executed on the NoSQL store node storing its
input region data").

:class:`SimContext` bundles everything a component needs to run and be
metered: the cluster, the cost model, the metrics collector, and a
monotonic timestamp oracle for store mutations.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel, EC2_PROFILE
from repro.cluster.metrics import MetricsCollector
from repro.cluster.topology import ClusterTopology, RegionBalancer


@dataclass(frozen=True, slots=True)
class Node:
    """One machine of the simulated cluster."""

    node_id: int
    hostname: str
    is_master: bool = False


class SimCluster:
    """Nodes plus round-robin placement state."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.master = Node(0, "master", is_master=True)
        self.workers = [
            Node(i + 1, f"worker-{i + 1}") for i in range(cost_model.worker_nodes)
        ]
        self._placement_cycle = itertools.cycle(range(len(self.workers)))

    @property
    def nodes(self) -> list[Node]:
        return [self.master, *self.workers]

    def next_worker(self) -> Node:
        """Round-robin worker selection for region/block placement."""
        return self.workers[next(self._placement_cycle)]

    def worker_by_id(self, node_id: int) -> Node:
        for node in self.workers:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no worker with node_id {node_id}")

    @property
    def total_task_slots(self) -> int:
        return len(self.workers) * self.cost_model.task_slots_per_node


@dataclass
class SimContext:
    """Shared state threaded through the store, MapReduce, and algorithms."""

    cost_model: CostModel = EC2_PROFILE
    cluster: SimCluster = None  # type: ignore[assignment]
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    #: region servers the workers are grouped into; 1 (the default) keeps
    #: every fan-out entry point on the seed serial path bit-for-bit
    num_servers: int = 1
    #: worker->server assignment strategy (default: round-robin striping)
    balancer: "RegionBalancer | None" = None
    #: wall-clock execution backend for fan-out sections: "thread" (the
    #: default shared ScatterPool — overlaps simulated latency only) or
    #: "process" (spawn-based ProcessScatterPool — real CPU parallelism
    #: for registered, picklable tasks; see repro.cluster.procpool).
    #: Simulated metrics are identical under either setting by design.
    parallelism: str = "thread"
    _timestamp: int = 0

    def __post_init__(self) -> None:
        if self.parallelism not in ("thread", "process"):
            raise ValueError(
                f"parallelism must be 'thread' or 'process', "
                f"got {self.parallelism!r}"
            )
        if self.cluster is None:
            self.cluster = SimCluster(self.cost_model)
        self.topology = ClusterTopology(
            self.cluster, num_servers=self.num_servers, balancer=self.balancer
        )
        # mutation timestamps must stay strictly monotonic even when many
        # serving threads write through one context
        self._timestamp_lock = threading.Lock()

    @classmethod
    def with_profile(
        cls,
        cost_model: CostModel,
        num_servers: int = 1,
        balancer: "RegionBalancer | None" = None,
        parallelism: str = "thread",
    ) -> "SimContext":
        return cls(
            cost_model=cost_model,
            num_servers=num_servers,
            balancer=balancer,
            parallelism=parallelism,
        )

    def next_timestamp(self) -> int:
        """Monotonic mutation timestamp (HBase-style version ordering)."""
        with self._timestamp_lock:
            self._timestamp += 1
            return self._timestamp

    @property
    def current_timestamp(self) -> int:
        return self._timestamp

    # -- convenience charging helpers -------------------------------------

    def charge_rpc(self, request_bytes: int, response_bytes: int) -> None:
        """Charge one coordinator<->server round trip: latency + transfer."""
        model = self.cost_model
        total = request_bytes + response_bytes
        self.metrics.add_network(total)
        self.metrics.advance_time(model.rpc_latency_s + model.network_time(total))

    def charge_server_read(self, num_bytes: int, num_cells: int, sequential: bool = True) -> None:
        """Charge a server-side read of ``num_cells`` cells totalling
        ``num_bytes`` bytes, plus dollar-cost read units."""
        model = self.cost_model
        self.metrics.add_kv_reads(num_cells)
        self.metrics.add_disk_read(num_bytes)
        seek = 0.0 if sequential else model.disk_random_read_s
        self.metrics.advance_time(
            seek + model.disk_seq_time(num_bytes) + model.cpu_time(num_cells)
        )
