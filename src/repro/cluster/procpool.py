"""The process-pool execution backend: real CPU parallelism for hot paths.

The thread-based :class:`~repro.cluster.executor.ScatterPool` overlaps
simulated *latency*, but every byte of Python compute — Golomb blob
encoding during BFHM builds, ISL score-key construction, MapReduce map
functions — still serializes on the GIL.  :class:`ProcessScatterPool` runs
registered tasks (:mod:`repro.common.registry`) in **spawn**-based worker
processes instead, so the wall-clock benches see the fan-out too.

Contract (the PR-9 discipline, now across a process boundary):

* tasks are :class:`~repro.common.registry.FnRef` payloads — named
  registered functions plus picklable arguments; store rows travel as
  :mod:`repro.cluster.wire` blocks, never as live objects;
* each worker invocation runs under a **fresh, process-local**
  :class:`~repro.cluster.metrics.MetricsCollector` (exposed to task code
  via :func:`worker_metrics`) and ships its immutable snapshot back —
  collectors are never shared or pickled across the boundary;
* the parent folds results and metric deltas **in task order**, so the
  simulated metrics stay a pure function of the task list — independent
  of pool size, scheduling, and whether the backend is threads or
  processes.

Spawn (not fork) is deliberate: a forked child would inherit the parent's
thread-pool handles, lock-tracer state, and half-initialized locks; spawn
children rebuild their world from imports.  The pool itself is also
fork-safe on the *parent* side — it remembers the PID that created its
executor and lazily re-creates it in any process that inherited the object
(see the executor/locktrace counterpart audit in ``tests/cluster``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.cluster.metrics import MetricsCollector, MetricsSnapshot
from repro.common.registry import FnRef, lookup

#: environment override for the worker count (benchmarks, CI)
WORKERS_ENV = "REPRO_PROCESS_WORKERS"
#: hard cap — index builds fan out per region, not per core-times-many
MAX_PROCESS_WORKERS = 8


def default_worker_count() -> int:
    """Worker processes to run by default: ``REPRO_PROCESS_WORKERS`` if
    set, else every core up to :data:`MAX_PROCESS_WORKERS`."""
    configured = os.environ.get(WORKERS_ENV)
    if configured:
        return max(1, int(configured))
    return max(1, min(MAX_PROCESS_WORKERS, os.cpu_count() or 1))


#: the invoked task's ambient collector (one per worker invocation);
#: module-global because a worker process runs one task at a time
_WORKER_COLLECTOR: "MetricsCollector | None" = None


def worker_metrics() -> MetricsCollector:
    """The collector a registered task charges while running in a worker.

    Outside a worker invocation this returns a throwaway collector, so
    task functions can charge unconditionally and still be runnable on
    the serial/thread paths (where the caller's own metering applies).
    """
    collector = _WORKER_COLLECTOR
    return collector if collector is not None else MetricsCollector()


def _invoke(ref: FnRef) -> "tuple[Any, MetricsSnapshot]":
    """Worker-side entry: run one registered task under a fresh collector
    and return ``(result, charge snapshot)``."""
    global _WORKER_COLLECTOR
    collector = MetricsCollector()
    _WORKER_COLLECTOR = collector
    try:
        result = lookup(ref)(ref.payload)
    finally:
        _WORKER_COLLECTOR = None
    return result, collector.snapshot()


class ProcessScatterPool:
    """Process-wide lazily-created spawn pool for registered tasks.

    Mirrors :class:`~repro.cluster.executor.ScatterPool`'s lifecycle: one
    pool per process, created on first use, torn down by tests via
    :meth:`shutdown`, re-created on next use.  ``configure`` resizes it
    (tearing down a live executor of a different size); the creating PID
    is remembered so a forked child never submits to inherited, dead
    worker handles.
    """

    def __init__(self, max_workers: "int | None" = None) -> None:
        self._lock = threading.Lock()
        self._max_workers = max_workers
        self._executor: "ProcessPoolExecutor | None" = None
        self._pid: "int | None" = None

    @property
    def max_workers(self) -> int:
        """The size the next-created executor will have."""
        with self._lock:
            return self._max_workers or default_worker_count()

    def configure(self, max_workers: "int | None") -> None:
        """Pin the worker count (None restores the default).  A live
        executor of a different size is shut down; the next task batch
        re-creates it at the new size."""
        with self._lock:
            if max_workers == self._max_workers:
                return  # idempotent: a live right-sized pool keeps running
            self._max_workers = max_workers
            executor = self._executor
            created_here = self._pid == os.getpid()
            self._executor = None
            self._pid = None
        if executor is not None and created_here:
            executor.shutdown(wait=True)

    def executor(self) -> ProcessPoolExecutor:
        """The pool, created on first use and re-created after a fork."""
        with self._lock:
            if self._executor is not None and self._pid != os.getpid():
                # inherited via fork: the worker processes belong to the
                # parent; drop the handle without joining someone else's
                # children and start fresh in this process
                self._executor = None
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._max_workers or default_worker_count(),
                    mp_context=multiprocessing.get_context("spawn"),
                )
                self._pid = os.getpid()
            return self._executor

    def shutdown(self) -> None:
        """Tear the pool down (tests); the next task batch recreates it."""
        with self._lock:
            executor = self._executor
            created_here = self._pid == os.getpid()
            self._executor = None
            self._pid = None
        if executor is not None and created_here:
            executor.shutdown(wait=True)

    def run(self, refs: "list[FnRef]") -> "list[tuple[Any, MetricsSnapshot]]":
        """Run every ref on the pool; results + charge snapshots **in ref
        order** (never completion order), exceptions propagated."""
        if not refs:
            return []
        executor = self.executor()
        futures = [executor.submit(_invoke, ref) for ref in refs]
        return [future.result() for future in futures]


_SHARED_PROCESS_POOL = ProcessScatterPool()


def shared_process_pool() -> ProcessScatterPool:
    """The process-wide pool shared by every process-parallel caller."""
    return _SHARED_PROCESS_POOL
