"""Multi-server topology: worker nodes grouped into region servers.

The seed store models one region server per table — every multi-region
RPC executes (and is charged) serially.  Real HBase deployments spread a
table's regions over N region-server processes, and a client multi-get or
parallel scan fans out to all of them at once, paying the *slowest
server's* queue rather than the sum of every region's work (§7's clusters
run 2–8 region servers).

:class:`ClusterTopology` supplies that mapping.  Worker :class:`~repro.
cluster.simulation.Node` objects are partitioned into ``num_servers``
region servers by a :class:`RegionBalancer`; a region is served by
whichever server owns its node.  Placement (``SimCluster.next_worker``)
already round-robins regions over workers, and the default balancer
round-robins workers over servers, so a table with R >= N regions spans
all N servers — the property the scatter benchmarks rely on.

The default topology is a single server (``num_servers=1``), for which
:attr:`ClusterTopology.parallel` is False and every scatter/gather entry
point falls back to the seed serial code path, byte-for-byte — the fig7/8
bit-identity guarantee.

Topology state is immutable after construction (the node->server map is
computed eagerly for every node the cluster can ever hand out), so lookups
are lock-free and thread-safe by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation imports us)
    from repro.cluster.simulation import Node, SimCluster
    from repro.store.region import Region


class RegionBalancer:
    """Strategy mapping a worker node to the region server that hosts it.

    The base class implements the default round-robin assignment: worker
    ``i`` (0-based position in the cluster's worker list) lands on server
    ``i % num_servers``.  With round-robin *region* placement this
    stripes consecutive key ranges across servers — the balanced layout
    HBase's balancer converges to, and the best case for scatter/gather.
    """

    def server_for_worker(self, worker_index: int, num_servers: int) -> int:
        """Server id (``0..num_servers-1``) for the worker at position
        ``worker_index`` of the cluster's worker list."""
        return worker_index % num_servers

    def assign(self, num_workers: int, num_servers: int) -> "list[int]":
        """Server id per worker position, for the whole cluster at once
        (strategies that need the total worker count override this)."""
        return [
            self.server_for_worker(index, num_servers)
            for index in range(num_workers)
        ]


class LocalityBalancer(RegionBalancer):
    """Contiguous-block assignment: adjacent workers share a server.

    Region placement round-robins over the worker list, so a small batch
    of *consecutive* regions (a BFHM bucket's blob + reverse-mapping
    fetches, a scan's next few regions) lands on consecutive workers.
    Under the default striping balancer those consecutive workers all sit
    on *different* servers — maximal fan-out, but every round pays the
    per-extra-server dispatch overhead.  Assigning workers in contiguous
    blocks co-locates adjacent regions instead, so narrow fetch rounds
    touch fewer servers and skip dispatch overhead they don't need, at
    the price of less overlap for genuinely wide rounds.  Round-robin
    stays the default; this strategy is opt-in per platform.
    """

    def assign(self, num_workers: int, num_servers: int) -> "list[int]":
        return [
            index * num_servers // max(num_workers, 1)
            for index in range(num_workers)
        ]


class RegionServer:
    """One region-server process: a server id plus the workers it owns."""

    __slots__ = ("server_id", "name", "node_ids")

    def __init__(self, server_id: int, node_ids: tuple[int, ...]) -> None:
        self.server_id = server_id
        self.name = f"rs-{server_id}"
        self.node_ids = node_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionServer({self.name}, nodes={list(self.node_ids)})"


class ClusterTopology:
    """Immutable assignment of a cluster's worker nodes to region servers."""

    def __init__(
        self,
        cluster: "SimCluster",
        num_servers: int = 1,
        balancer: "RegionBalancer | None" = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        workers = cluster.workers
        # more servers than workers would leave empty server processes;
        # clamp so every server owns at least one node
        self.num_servers = min(num_servers, len(workers)) if workers else 1
        self.balancer = balancer if balancer is not None else RegionBalancer()
        server_nodes: dict[int, list[int]] = {
            server_id: [] for server_id in range(self.num_servers)
        }
        self._server_of_node: dict[int, int] = {}
        assigned = self.balancer.assign(len(workers), self.num_servers)
        for index, worker in enumerate(workers):
            server_id = assigned[index]
            if not 0 <= server_id < self.num_servers:
                raise ValueError(
                    f"balancer assigned worker {worker.node_id} to "
                    f"server {server_id} (have {self.num_servers})"
                )
            server_nodes[server_id].append(worker.node_id)
            self._server_of_node[worker.node_id] = server_id
        # the master never hosts regions, but routing it somewhere keeps
        # server_for total over every node the simulation can mention
        self._server_of_node[cluster.master.node_id] = 0
        self.servers = tuple(
            RegionServer(server_id, tuple(nodes))
            for server_id, nodes in server_nodes.items()
        )

    @property
    def parallel(self) -> bool:
        """True when scatter/gather fan-out is worth engaging at all."""
        return self.num_servers > 1

    def server_for_node(self, node_id: int) -> int:
        """Region-server id hosting ``node_id``."""
        return self._server_of_node[node_id]

    def server_for(self, region: "Region") -> int:
        """Region-server id serving ``region`` (via its hosting node)."""
        return self._server_of_node[region.node.node_id]

    def assignments(self, regions: "list[Region]") -> "dict[int, list[Region]]":
        """Group ``regions`` by server id, preserving the input (key) order
        within each group and first-touch order across groups."""
        groups: dict[int, list[Region]] = {}
        for region in regions:
            groups.setdefault(self.server_for(region), []).append(region)
        return groups

    def spread(self, regions: "list[Region]") -> int:
        """How many distinct servers ``regions`` land on."""
        return len({self.server_for(region) for region in regions})

    def describe(self) -> str:
        """One line per server: ``rs-0: nodes [1, 3, 5, 7]``."""
        return "\n".join(
            f"{server.name}: nodes {list(server.node_ids)}"
            for server in self.servers
        )
