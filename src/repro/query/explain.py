"""EXPLAIN rendering: a :class:`QueryPlan` as a human-readable report.

The layout mirrors the paper's evaluation axes — one row per candidate
algorithm with its predicted simulated time, network bytes, KV read units
and dollar cost — followed by the winner's component breakdown and the
table statistics the estimates were derived from.  Rendering never
executes the query; everything shown comes from the planner's analytic
cost models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.planner import CostEstimate, QueryPlan


def _format_time(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:,.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def _format_bytes(num_bytes: float) -> str:
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024
    return f"{value:,.1f} GB"  # pragma: no cover - unreachable


def _breakdown_line(estimate: "CostEstimate") -> str:
    parts = [
        f"{component} {_format_time(seconds)}"
        for component, seconds in sorted(
            estimate.breakdown.items(), key=lambda item: -item[1]
        )
        if seconds > 0
    ]
    return " · ".join(parts) if parts else "(no cost components)"


def render_plan(plan: "QueryPlan") -> str:
    """Multi-line EXPLAIN report for ``plan``."""
    lines: list[str] = []
    query = plan.query
    lines.append(f"QUERY PLAN  {query.description}")
    lines.append(f"objective: minimize {plan.objective}")
    if getattr(plan, "servers", 1) > 1:
        lines.append(
            f"topology: {plan.servers} region servers "
            "(scatter/gather fan-out; overlap priced per server queue)"
        )
    lines.append("")

    header = (
        f"{'rank':>4}  {'algorithm':<10} {'est. time':>12} "
        f"{'est. network':>14} {'est. KV reads':>14} {'est. dollars':>13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rank, estimate in enumerate(plan.estimates, start=1):
        marker = " *" if rank == 1 else "  "
        lines.append(
            f"{rank:>3}{marker} {estimate.algorithm:<10} "
            f"{_format_time(estimate.time_s):>12} "
            f"{_format_bytes(estimate.network_bytes):>14} "
            f"{estimate.kv_reads:>14,} "
            f"{estimate.dollars:>13.6f}"
        )
    lines.append("")
    lines.append(f"chosen: {plan.best.algorithm}  (* = winner)")
    lines.append(f"  breakdown: {_breakdown_line(plan.best)}")
    for note in plan.best.notes:
        lines.append(f"  note: {note}")
    for table, pending in sorted(getattr(plan, "staleness", {}).items()):
        lines.append(
            f"  staleness: table {table} lags {pending} unapplied "
            "mutation(s) (async maintenance; estimates price applied state)"
        )
    lines.append("")

    lines.append("per-algorithm cost lines:")
    for comparison_line in render_comparison(plan).splitlines():
        lines.append(f"  {comparison_line}")
    lines.append("")

    for label, stats in plan.statistics.items():
        built = sorted(
            kind for kind, index in stats.indexes.items() if index.built
        )
        lines.append(
            f"{label}: {stats.binding.display_name} — {stats.row_count:,} rows, "
            f"{stats.distinct_join_values:,} join values, "
            f"{_format_bytes(stats.total_row_bytes)}, "
            f"indices built: {', '.join(built) if built else 'none'}"
        )
    return "\n".join(lines)


def render_comparison(plan: "QueryPlan") -> str:
    """Compact one-line-per-algorithm breakdown table (all candidates)."""
    lines = []
    for estimate in plan.estimates:
        lines.append(f"{estimate.algorithm}: {_breakdown_line(estimate)}")
    return "\n".join(lines)
