"""Query layer: specs, results, SQL parsing, planning, and the engine.

Only the leaf modules are imported eagerly: the algorithm base class
(``repro.core.base``) imports :mod:`repro.query.results`, so pulling the
planner (which reaches back into ``repro.core``) in at package-import time
would create a cycle.  Import the planner pieces from their modules::

    from repro.query.engine import RankJoinEngine
    from repro.query.planner import QueryPlan, QueryPlanner
    from repro.query.statistics import StatisticsCatalog
"""

from repro.query.parser import parse_rank_join
from repro.query.results import RankJoinResult
from repro.query.spec import RankJoinQuery

__all__ = ["parse_rank_join", "RankJoinResult", "RankJoinQuery"]
