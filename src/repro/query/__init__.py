"""Query layer: specs, results, SQL-dialect parsing, and the engine facade."""

from repro.query.parser import parse_rank_join
from repro.query.results import RankJoinResult
from repro.query.spec import RankJoinQuery

__all__ = ["parse_rank_join", "RankJoinResult", "RankJoinQuery"]
