"""The engine facade: one object, every algorithm, SQL in, results out.

Downstream users get a single entry point::

    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=1.0))
    engine = RankJoinEngine(platform)
    result = engine.sql("SELECT * FROM part P, lineitem L "
                        "WHERE P.partkey = L.partkey "
                        "ORDER BY P.retailprice * L.extendedprice "
                        "STOP AFTER 10")

With no explicit ``algorithm=`` the engine runs in ``"auto"`` mode: the
cost-based planner (:mod:`repro.query.planner`) prices every registered
algorithm against cached table statistics and executes the cheapest one.
``engine.explain(sql)`` renders that decision — per-algorithm cost
breakdowns included — without executing anything.
"""

from __future__ import annotations

from repro.baselines.drjn import DRJNRankJoin
from repro.baselines.hive import HiveRankJoin
from repro.baselines.pig import PigRankJoin
from repro.core.base import RankJoinAlgorithm
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.multi import BFHMCascadeRankJoin
from repro.core.hrjn_multi import MultiWayHRJNRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin
from repro.core.isl_multi import MultiWayISLRankJoin
from repro.errors import PlanningError
from repro.platform import Platform
from repro.query.parser import parse_rank_join
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.results import MultiRankJoinResult, RankJoinResult
from repro.query.spec import RankJoinQuery
from repro.query.statistics import StatisticsCatalog

#: algorithm name -> factory for two-way queries; lowercase keys
ALGORITHM_FACTORIES = {
    "hive": HiveRankJoin,
    "pig": PigRankJoin,
    "ijlmr": IJLMRRankJoin,
    "isl": ISLRankJoin,
    "bfhm": BFHMRankJoin,
    "drjn": DRJNRankJoin,
}

#: algorithm name -> factory for arity >= 3 queries; the names overlap the
#: two-way registry on purpose — ``algorithm="isl"`` or ``"bfhm"`` picks
#: the right variant for the query's arity, and ``"hrjn"`` is the
#: index-free n-way pipeline
MULTIWAY_FACTORIES = {
    "isl": MultiWayISLRankJoin,
    "hrjn": MultiWayHRJNRankJoin,
    "bfhm": BFHMCascadeRankJoin,
}

#: display names (algorithm.name / planner estimate labels) -> registry key
MULTIWAY_ALIASES = {
    "isl-nway": "isl",
    "hrjn-nway": "hrjn",
    "bfhm-cascade": "bfhm",
}

#: the planner-backed pseudo-algorithm name (and the engine-wide default)
AUTO = "auto"


class RankJoinEngine:
    """Holds one instance of every algorithm over a shared platform."""

    def __init__(
        self,
        platform: Platform,
        statistics_catalog: "StatisticsCatalog | None" = None,
        plan_cache=None,
        **algorithm_kwargs,
    ) -> None:
        self.platform = platform
        self._algorithms: dict[str, RankJoinAlgorithm] = {}
        self._multiway: dict[str, object] = {}
        self._algorithm_kwargs = algorithm_kwargs
        # the serving layer passes a shared catalog + plan cache so its
        # per-worker engines price queries against one set of statistics
        self.statistics = statistics_catalog or StatisticsCatalog(platform)
        self.planner = QueryPlanner(self, self.statistics, plan_cache=plan_cache)
        #: the QueryPlan behind the most recent ``algorithm="auto"`` run
        self.last_plan: "QueryPlan | None" = None

    def algorithm(self, name: str) -> RankJoinAlgorithm:
        """The (cached) two-way algorithm instance for ``name``."""
        key = name.lower()
        if key in self._algorithms:  # explicitly registered instances win
            return self._algorithms[key]
        if key not in ALGORITHM_FACTORIES:
            raise PlanningError(
                f"unknown algorithm {name!r}; choose from "
                f"{sorted(ALGORITHM_FACTORIES)} (or {AUTO!r})"
            )
        kwargs = self._algorithm_kwargs.get(key, {})
        self._algorithms[key] = ALGORITHM_FACTORIES[key](self.platform, **kwargs)
        return self._algorithms[key]

    def multiway_algorithm(self, name: str):
        """The (cached) arity >= 3 strategy instance for ``name``."""
        key = name.lower()
        if key in self._multiway:  # explicitly registered instances win,
            return self._multiway[key]  # even under a display-name alias
        key = MULTIWAY_ALIASES.get(key, key)
        if key in self._multiway:
            return self._multiway[key]
        if key not in MULTIWAY_FACTORIES:
            raise PlanningError(
                f"unknown multi-way algorithm {name!r}; choose from "
                f"{sorted(MULTIWAY_FACTORIES)} (or {AUTO!r})"
            )
        factory = MULTIWAY_FACTORIES[key]
        kwargs = dict(self._algorithm_kwargs.get(key, {}))
        if key == "bfhm":
            # the cascade shares the binary BFHM's tuning knobs but not its
            # write-back threshold (intermediates are rebuilt, not updated)
            kwargs.pop("writeback_threshold", None)
        self._multiway[key] = factory(self.platform, **kwargs)
        return self._multiway[key]

    def register(self, name: str, algorithm: RankJoinAlgorithm) -> None:
        """Plug in a custom or specially configured *two-way* algorithm
        instance (see :meth:`register_multiway` for arity >= 3)."""
        self._algorithms[name.lower()] = algorithm

    def register_multiway(self, name: str, algorithm) -> None:
        """Plug in a custom arity >= 3 strategy instance.

        The instance must provide ``prepare(query)``, ``execute(query)``
        and ``build_report(binding)`` (duck-typed, like the built-in
        multi-way strategies)."""
        self._multiway[name.lower()] = algorithm

    #: algorithm auto mode falls back to when planning is impossible
    #: (e.g. an empty relation has no statistics to price from) — matches
    #: the engine's pre-planner default, so such queries behave as before
    FALLBACK_ALGORITHM = "bfhm"
    #: the arity >= 3 fallback is the index-free HRJN pipeline: it needs no
    #: statistics and works over any inputs
    MULTIWAY_FALLBACK_ALGORITHM = "hrjn"

    def execute(
        self, query: RankJoinQuery, algorithm: str = AUTO
    ) -> "RankJoinResult | MultiRankJoinResult":
        """Run a bound query; ``algorithm="auto"`` lets the planner pick.

        Two-way queries run the classic algorithm registry and return a
        :class:`RankJoinResult`; arity >= 3 queries dispatch to the n-way
        strategies and return a :class:`MultiRankJoinResult`.
        """
        multiway = query.arity > 2
        name = algorithm.lower()
        if name == AUTO:
            try:
                self.last_plan = self.planner.plan(query)
                name = self.last_plan.chosen
            except PlanningError:
                self.last_plan = None
                name = (
                    self.MULTIWAY_FALLBACK_ALGORITHM
                    if multiway
                    else self.FALLBACK_ALGORITHM
                )
        instance = (
            self.multiway_algorithm(name) if multiway else self.algorithm(name)
        )
        # first-use execution may build indices as a side effect; note
        # which bindings lack one so the statistics cache can be refreshed
        unbuilt = [
            binding
            for binding in query.inputs
            if instance.build_report(binding) is None
        ]
        result = instance.execute(query)
        for binding in unbuilt:
            if instance.build_report(binding) is not None:
                self.statistics.invalidate(binding.table)
        return result

    def sql(
        self, text: str, algorithm: str = AUTO, family: str = "d"
    ) -> "RankJoinResult | MultiRankJoinResult":
        """Parse and run a SQL-dialect query (§1.1 syntax, any arity)."""
        return self.execute(parse_rank_join(text, family=family), algorithm)

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        query: RankJoinQuery,
        objective: str = "time",
        algorithms: "list[str] | None" = None,
    ) -> QueryPlan:
        """Price the candidate algorithms for ``query`` without executing."""
        return self.planner.plan(query, objective=objective, algorithms=algorithms)

    def explain(
        self,
        text_or_query: "str | RankJoinQuery",
        objective: str = "time",
        family: str = "d",
        algorithms: "list[str] | None" = None,
    ) -> QueryPlan:
        """EXPLAIN: plan a query (SQL text or bound spec) without running it.

        The returned :class:`QueryPlan` renders as a cost-breakdown table
        via ``str(plan)`` / ``plan.render()``.
        """
        if isinstance(text_or_query, str):
            query = parse_rank_join(text_or_query, family=family)
        else:
            query = text_or_query
        return self.plan(query, objective=objective, algorithms=algorithms)

    def invalidate_statistics(self, table: str) -> int:
        """Drop cached planner statistics over ``table`` (returns entries
        dropped).  Wired into online maintenance via
        :class:`repro.maintenance.interceptor.MaintainedRelation`."""
        return self.statistics.invalidate(table)

    # -- index lifecycle ----------------------------------------------------

    def prepare(self, query: RankJoinQuery, algorithms: "list[str] | None" = None):
        """Pre-build indices for a query across algorithms; returns the
        build reports (the Fig. 9 measurement)."""
        if query.arity > 2:
            names = algorithms or ["isl", "bfhm"]
            instances = [self.multiway_algorithm(name) for name in names]
        else:
            names = algorithms or ["ijlmr", "isl", "bfhm", "drjn"]
            instances = [self.algorithm(name) for name in names]
        reports = []
        for instance in instances:
            reports.extend(instance.prepare(query))
        if reports:
            # index builds change footprints the planner prices from
            for binding in query.inputs:
                self.statistics.invalidate(binding.table)
        return reports
