"""The engine facade: one object, every algorithm, SQL in, results out.

Downstream users get a single entry point::

    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=1.0))
    engine = RankJoinEngine(platform)
    result = engine.sql("SELECT * FROM part P, lineitem L "
                        "WHERE P.partkey = L.partkey "
                        "ORDER BY P.retailprice * L.extendedprice "
                        "STOP AFTER 10", algorithm="bfhm")
"""

from __future__ import annotations

from repro.baselines.drjn import DRJNRankJoin
from repro.baselines.hive import HiveRankJoin
from repro.baselines.pig import PigRankJoin
from repro.core.base import RankJoinAlgorithm
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin
from repro.errors import PlanningError
from repro.platform import Platform
from repro.query.parser import parse_rank_join
from repro.query.results import RankJoinResult
from repro.query.spec import RankJoinQuery

#: algorithm name -> factory; lowercase keys
ALGORITHM_FACTORIES = {
    "hive": HiveRankJoin,
    "pig": PigRankJoin,
    "ijlmr": IJLMRRankJoin,
    "isl": ISLRankJoin,
    "bfhm": BFHMRankJoin,
    "drjn": DRJNRankJoin,
}


class RankJoinEngine:
    """Holds one instance of every algorithm over a shared platform."""

    def __init__(self, platform: Platform, **algorithm_kwargs) -> None:
        self.platform = platform
        self._algorithms: dict[str, RankJoinAlgorithm] = {}
        self._algorithm_kwargs = algorithm_kwargs

    def algorithm(self, name: str) -> RankJoinAlgorithm:
        """The (cached) algorithm instance for ``name``."""
        key = name.lower()
        if key in self._algorithms:  # explicitly registered instances win
            return self._algorithms[key]
        if key not in ALGORITHM_FACTORIES:
            raise PlanningError(
                f"unknown algorithm {name!r}; choose from "
                f"{sorted(ALGORITHM_FACTORIES)}"
            )
        kwargs = self._algorithm_kwargs.get(key, {})
        self._algorithms[key] = ALGORITHM_FACTORIES[key](self.platform, **kwargs)
        return self._algorithms[key]

    def register(self, name: str, algorithm: RankJoinAlgorithm) -> None:
        """Plug in a custom or specially configured algorithm instance."""
        self._algorithms[name.lower()] = algorithm

    def execute(self, query: RankJoinQuery, algorithm: str = "bfhm") -> RankJoinResult:
        """Run a bound query with the chosen algorithm."""
        return self.algorithm(algorithm).execute(query)

    def sql(self, text: str, algorithm: str = "bfhm", family: str = "d") -> RankJoinResult:
        """Parse and run a SQL-dialect query (§1.1 syntax)."""
        return self.execute(parse_rank_join(text, family=family), algorithm)

    def prepare(self, query: RankJoinQuery, algorithms: "list[str] | None" = None):
        """Pre-build indices for a query across algorithms; returns the
        build reports (the Fig. 9 measurement)."""
        names = algorithms or ["ijlmr", "isl", "bfhm", "drjn"]
        reports = []
        for name in names:
            reports.extend(self.algorithm(name).prepare(query))
        return reports
