"""The cost-based query planner.

The paper's bottom line (§7.3) is that *no single rank-join algorithm wins
everywhere*: BFHM dominates on network traffic and dollar cost, ISL-style
coordinator algorithms win at small budgets and low-latency clusters, and
the MapReduce approaches only pay off at bulk scale.  The planner makes
that trade-off explicit: given a parsed :class:`RankJoinQuery` it

1. pulls :class:`~repro.query.statistics.TableStatistics` for both
   relations from the engine's :class:`StatisticsCatalog`,
2. prices every candidate algorithm with the platform's calibrated
   :class:`~repro.cluster.costmodel.CostModel` — RPC rounds and scan depth
   for coordinator algorithms (ISL), bucket and reverse-mapping probes for
   BFHM, job startup plus scan volume for the MapReduce family — and
3. returns a :class:`QueryPlan` ranking the candidates by the requested
   objective (simulated time, network bytes, or KV read units).

Estimates mirror the exact charging rules of the simulated substrate
(:mod:`repro.store.client`, :mod:`repro.store.scanner`,
:mod:`repro.mapreduce.runtime`), so a plan's numbers are directly
comparable to the metrics a real execution reports.  Planning itself is
side-effect free: it reads cached statistics (gathered unmetered) and
never touches the metered data path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.common.functions import AggregateFunction
from repro.errors import PlanningError
from repro.query.spec import RankJoinQuery
from repro.query.statistics import (
    BFHMIndexStatistics,
    StatisticsCatalog,
    TableStatistics,
)
from repro.sketches.histogram import bucket_bounds

# request/response framing constants of the metered store client — imported
# so planner estimates can never drift from the substrate's actual charges
# (the store layer does not import the query layer, so no cycle)
from repro.store.client import REQUEST_OVERHEAD_BYTES
from repro.store.scanner import RESPONSE_OVERHEAD_BYTES

#: objectives a plan can rank by -> CostEstimate attribute
OBJECTIVES = {
    "time": "time_s",
    "network": "network_bytes",
    "dollars": "kv_reads",
    "kv_reads": "kv_reads",
}

#: ISL discovers termination mid-batch but the scanner has already shipped
#: the whole batch; charge this many extra batches per side
ISL_OVERSHOOT_BATCHES = 1
#: slack for BFHM's §5.3 recall-repair loop (extra reverse-row traffic).
#: The simulation already models repair cascades explicitly, and calibration
#: against the Fig. 7/8 grids shows its reverse-row counts land within a few
#: rows of the measured ones — so no blanket padding by default.
BFHM_REPAIR_ALLOWANCE = 0.0
def _remote_fraction(workers: int) -> float:
    """Fraction of shuffle records crossing node boundaries (uniform
    partitioning over W workers leaves 1/W local)."""
    return 1.0 - 1.0 / max(1, workers)


# ---------------------------------------------------------------------------
# cost accumulation
# ---------------------------------------------------------------------------


class CostLedger:
    """Accumulates priced operations the way the simulator meters them.

    Each charging method mirrors one primitive of the metered substrate, so
    estimator code reads like the execution path it models.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.time_s = 0.0
        self.network_bytes = 0.0
        self.kv_reads = 0.0
        self.breakdown: dict[str, float] = {}

    def add_time(self, component: str, seconds: float) -> None:
        self.time_s += seconds
        self.breakdown[component] = self.breakdown.get(component, 0.0) + seconds

    def rpc(self, component: str, request_bytes: float, response_bytes: float) -> None:
        """One coordinator<->server round trip (SimContext.charge_rpc)."""
        total = request_bytes + response_bytes
        self.network_bytes += total
        self.add_time(
            component, self.model.rpc_latency_s + self.model.network_time(int(total))
        )

    def server_read(
        self, component: str, num_bytes: float, cells: float, sequential: bool = True
    ) -> None:
        """Server-side read (SimContext.charge_server_read)."""
        self.kv_reads += cells
        seek = 0.0 if sequential else self.model.disk_random_read_s
        self.add_time(
            component,
            seek
            + self.model.disk_seq_time(int(num_bytes))
            + self.model.cpu_time(int(cells)),
        )

    def server_read_rows(
        self, component: str, rows: float, num_bytes: float, cells: float
    ) -> None:
        """``rows`` independent random point reads (one seek *each*)."""
        self.kv_reads += cells
        self.add_time(
            component,
            rows * self.model.disk_random_read_s
            + self.model.disk_seq_time(int(num_bytes))
            + self.model.cpu_time(int(cells)),
        )

    def network(self, component: str, num_bytes: float) -> None:
        self.network_bytes += num_bytes
        self.add_time(component, self.model.network_time(int(num_bytes)))

    def cpu(self, component: str, tuples: float, factor: float = 1.0) -> None:
        self.add_time(component, self.model.cpu_time(int(tuples)) * factor)


@dataclass
class CostEstimate:
    """One candidate algorithm's predicted bill."""

    algorithm: str
    time_s: float
    network_bytes: int
    kv_reads: int
    dollars: float
    breakdown: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @classmethod
    def from_ledger(
        cls, algorithm: str, ledger: CostLedger, notes: "list[str] | None" = None
    ) -> "CostEstimate":
        return cls(
            algorithm=algorithm,
            time_s=ledger.time_s,
            network_bytes=int(ledger.network_bytes),
            kv_reads=int(ledger.kv_reads),
            dollars=ledger.model.dollars(int(ledger.kv_reads)),
            breakdown=dict(ledger.breakdown),
            notes=list(notes or []),
        )


@dataclass
class QueryPlan:
    """Ranked per-algorithm cost estimates for one query."""

    query: RankJoinQuery
    objective: str
    estimates: list[CostEstimate]
    statistics: "dict[str, TableStatistics]"

    @property
    def chosen(self) -> str:
        """Lowercase name of the winning algorithm."""
        return self.estimates[0].algorithm.lower()

    @property
    def best(self) -> CostEstimate:
        return self.estimates[0]

    def estimate(self, algorithm: str) -> CostEstimate:
        for est in self.estimates:
            if est.algorithm.lower() == algorithm.lower():
                return est
        raise PlanningError(f"no estimate for algorithm {algorithm!r}")

    def render(self) -> str:
        """Human-readable EXPLAIN table (see repro.query.explain)."""
        from repro.query.explain import render_plan

        return render_plan(self)

    def __str__(self) -> str:  # pragma: no cover - delegates to render()
        return self.render()


# ---------------------------------------------------------------------------
# score-distribution profiles
# ---------------------------------------------------------------------------


@dataclass
class _SideProfile:
    """Per-relation score distribution in planner-friendly form.

    Buckets are listed in descending-score order (= ascending bucket
    number), keeping only non-empty buckets — the same shape a built BFHM
    index exposes through its meta row.
    """

    buckets: list[int]
    counts: list[float]
    mins: list[float]
    maxes: list[float]
    num_buckets: int
    total: float

    @property
    def top_score(self) -> float:
        return self.maxes[0] if self.maxes else 0.0

    def mid(self, index: int) -> float:
        return (self.mins[index] + self.maxes[index]) / 2.0

    def upper_boundary(self, index: int) -> float:
        """Theoretical upper boundary of the bucket (what BFHM termination
        reasons with — it cannot see actual per-bucket maxima upfront)."""
        return bucket_bounds(self.buckets[index], self.num_buckets)[1]


def _profile(stats: TableStatistics) -> _SideProfile:
    histogram = stats.histogram
    buckets, counts, mins, maxes = [], [], [], []
    for b in histogram.non_empty_buckets():
        info = histogram.bucket(b)
        buckets.append(b)
        counts.append(float(info.count))
        mins.append(info.min_score)
        maxes.append(info.max_score)
    return _SideProfile(
        buckets=buckets,
        counts=counts,
        mins=mins,
        maxes=maxes,
        num_buckets=histogram.num_buckets,
        total=float(sum(counts)),
    )


def _join_selectivity(left: TableStatistics, right: TableStatistics) -> float:
    """P(two random tuples join) under the uniform join-key assumption.

    For foreign-key joins (the paper's Q1/Q2 shape) this reduces to
    ``1/|referenced keys|``, making the expected join size
    ``n_l * n_r / max(d_l, d_r)`` — exact under uniformity.
    """
    return 1.0 / max(left.distinct_join_values, right.distinct_join_values, 1)


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


class QueryPlanner:
    """Prices candidate algorithms for rank-join queries.

    The planner needs the engine only to read each algorithm's *tuning*
    (ISL batch sizing, BFHM bucket count, DRJN partitions), never to run
    anything.
    """

    #: bound on remembered plans (plans are cheap to rebuild; the cache
    #: only exists so repeated identical queries skip the simulations)
    PLAN_CACHE_LIMIT = 64

    def __init__(self, engine, catalog: "StatisticsCatalog | None" = None) -> None:
        self.engine = engine
        self.platform = engine.platform
        self.catalog = catalog or StatisticsCatalog(engine.platform)
        self._plan_cache: "dict[tuple, tuple[int, QueryPlan]]" = {}

    # -- public API ---------------------------------------------------------

    def plan(
        self,
        query: RankJoinQuery,
        objective: str = "time",
        algorithms: "list[str] | None" = None,
    ) -> QueryPlan:
        """Price ``algorithms`` (default: all registered factories) for
        ``query`` and return them ranked by ``objective``."""
        if objective not in OBJECTIVES:
            raise PlanningError(
                f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
            )
        from repro.query.engine import ALGORITHM_FACTORIES

        names = [name.lower() for name in (algorithms or sorted(ALGORITHM_FACTORIES))]
        # a plan is a pure function of (query, statistics, objective);
        # cache it until the statistics catalog sees an invalidation
        key = (
            query.left, query.right, query.k, repr(query.function),
            objective, tuple(names),
        )
        cached = self._plan_cache.get(key)
        if cached is not None and cached[0] == self.catalog.version:
            return cached[1]
        left = self.catalog.stats_for(query.left)
        right = self.catalog.stats_for(query.right)

        estimates = []
        for name in names:
            estimator = getattr(self, f"_estimate_{name}", None)
            if estimator is None:
                raise PlanningError(f"no cost model for algorithm {name!r}")
            estimates.append(estimator(query, left, right))

        attribute = OBJECTIVES[objective]
        estimates.sort(key=lambda est: (getattr(est, attribute), est.algorithm))
        plan = QueryPlan(
            query=query,
            objective=objective,
            estimates=estimates,
            statistics={"left": left, "right": right},
        )
        if len(self._plan_cache) >= self.PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = (self.catalog.version, plan)
        return plan

    # -- shared helpers ---------------------------------------------------------

    def _ledger(self) -> CostLedger:
        return CostLedger(self.platform.cost_model)

    @property
    def _parallelism(self) -> int:
        model = self.platform.cost_model
        return max(1, model.worker_nodes * model.task_slots_per_node)

    def _index_note(self, stats: TableStatistics, kind: str) -> str:
        if stats.index(kind).built:
            return f"{kind} index built for {stats.binding.display_name}"
        return (
            f"{kind} index NOT built for {stats.binding.display_name} "
            "(built on first use, outside the query bill)"
        )

    # -- ISL ---------------------------------------------------------------------

    def _isl_batch_rows(self, stats: TableStatistics) -> int:
        from repro.core.isl import MIN_BATCH_ROWS

        instance = self.engine.algorithm("isl")
        if instance.batch_rows is not None:
            return instance.batch_rows
        return max(MIN_BATCH_ROWS, int(stats.row_count * instance.batch_fraction))

    def _estimate_isl(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Coordinator HRJN over score-sorted index scans (§4.2, Alg. 4).

        Simulates the alternating batched pulls at histogram granularity:
        after each batch the HRJN threshold is recomputed from the current
        scan depths and the expected number of joined results above it is
        read off the bucket-pair grid.  Costs follow the scanner's metering:
        one RPC per batch, one KV read + sequential disk + CPU per cell.
        """
        ledger = self._ledger()
        sel = _join_selectivity(left, right)
        profiles = (_profile(left), _profile(right))
        batch = (self._isl_batch_rows(left), self._isl_batch_rows(right))

        consumed, batches = _simulate_hrjn(
            profiles, query.function, query.k, batch, sel
        )
        cell_bytes = []
        for side, stats in enumerate((left, right)):
            index = stats.index("isl")
            if index.built and index.cells:
                cell_bytes.append(index.avg_cell_bytes)
            else:
                # Cell layout: 8B header + score row key (16 hex chars) +
                # family (signature) + qualifier (base row key) + join value
                cell_bytes.append(
                    8.0
                    + 16.0
                    + len(stats.binding.signature)
                    + stats.avg_row_key_bytes
                    + stats.avg_join_value_bytes
                )

        for side in (0, 1):
            rounds = batches[side] + (ISL_OVERSHOOT_BATCHES if consumed[side] else 0)
            tuples = min(
                profiles[side].total, consumed[side] + ISL_OVERSHOOT_BATCHES * batch[side]
            )
            scanned_bytes = tuples * cell_bytes[side]
            ledger.server_read("index scan", scanned_bytes, tuples, sequential=True)
            for _ in range(rounds):
                ledger.rpc(
                    "batch RPCs",
                    RESPONSE_OVERHEAD_BYTES,
                    RESPONSE_OVERHEAD_BYTES + scanned_bytes / max(1, rounds),
                )

        notes = [
            f"scan depth ≈ {int(consumed[0])}+{int(consumed[1])} tuples in "
            f"{batches[0]}+{batches[1]} batches of {batch[0]}/{batch[1]} rows",
            self._index_note(left, "isl"),
        ]
        return CostEstimate.from_ledger("ISL", ledger, notes)

    # -- BFHM ---------------------------------------------------------------------

    def _bfhm_config(
        self, left: TableStatistics, right: TableStatistics
    ) -> "tuple[int, int, float]":
        """(num_buckets, m_bits, fp_rate) the BFHM instance would use."""
        from repro.sketches.bloom import single_hash_bit_count

        instance = self.engine.algorithm("bfhm")
        num_buckets = instance.builder.num_buckets
        fp_rate = instance.builder.fp_rate
        m_bits = instance.builder.m_bits
        for stats in (left, right):
            index = stats.index("bfhm")
            if isinstance(index, BFHMIndexStatistics) and index.built:
                return (index.num_buckets, index.m_bits, fp_rate)
        if m_bits is None:
            heaviest = 1
            for stats in (left, right):
                counts = stats.bucket_counts()
                heaviest = max(heaviest, max(counts) if counts else 1)
            m_bits = single_hash_bit_count(heaviest, fp_rate)
        return (num_buckets, m_bits, fp_rate)

    def _estimate_bfhm(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Two-phase statistical rank join (§5.2–5.3).

        Phase 1 is re-enacted against the score histograms: buckets are
        "fetched" alternately and joined via expected filter intersections
        until the paper's termination test fires.  Phase 2 prices the
        reverse-mapping point reads of the surviving bucket pairs.  When
        the BFHM index is built, actual blob sizes and reverse-row
        footprints replace the analytic estimates.
        """
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        num_buckets, m_bits, _ = self._bfhm_config(left, right)
        # re-project the statistics histograms onto the index's actual
        # bucket grid, so bucket numbers line up with stored blob rows
        profiles = (
            _reproject_profile(_profile(left), num_buckets),
            _reproject_profile(_profile(right), num_buckets),
        )

        sim = _simulate_bfhm(profiles, query.function, query.k, m_bits, sel)

        index_stats = (left.index("bfhm"), right.index("bfhm"))

        # meta row read: one random point get per relation
        meta_bytes = 60.0 + num_buckets * 2.0
        for _ in (left, right):
            ledger.server_read("meta read", meta_bytes, 3, sequential=False)
            ledger.rpc("meta read", REQUEST_OVERHEAD_BYTES, meta_bytes)

        # phase 1: bucket blob fetches
        for side in (0, 1):
            profile = profiles[side]
            index = index_stats[side]
            blobs = (
                index.bucket_blobs
                if isinstance(index, BFHMIndexStatistics) and index.built
                else {}
            )
            for bucket_index in sim.fetched[side]:
                count = profile.counts[bucket_index]
                bucket_number = profile.buckets[bucket_index]
                if bucket_number in blobs:
                    actual_count, blob_bytes = blobs[bucket_number]
                    count = float(actual_count)
                else:
                    blob_bytes = _golomb_blob_bytes(count, m_bits)
                ledger.server_read("bucket fetch", blob_bytes, 4, sequential=False)
                ledger.rpc("bucket fetch", REQUEST_OVERHEAD_BYTES, blob_bytes)
                ledger.cpu("blob decode", count, model.blob_decode_cpu_factor)

        # phase 2: reverse-mapping point reads (multi-gets, batched per
        # region) with slack for the recall-repair loop
        for side, stats in enumerate((left, right)):
            rows = sim.reverse_rows[side] * (1.0 + BFHM_REPAIR_ALLOWANCE)
            index = index_stats[side]
            if isinstance(index, BFHMIndexStatistics) and index.built and index.reverse_rows:
                row_bytes = index.avg_reverse_row_bytes
                row_cells = index.avg_reverse_row_cells
            else:
                row_cells = max(1.0, stats.row_count / max(1, m_bits))
                row_bytes = row_cells * (
                    8.0 + 16.0 + len(stats.binding.signature)
                    + stats.avg_row_key_bytes + stats.avg_join_value_bytes + 8.0
                )
            total_bytes = rows * row_bytes
            ledger.server_read_rows(
                "reverse fetch", rows, total_bytes, rows * row_cells
            )
            rpcs = min(int(math.ceil(rows)), model.worker_nodes) if rows else 0
            for _ in range(rpcs):
                ledger.rpc(
                    "reverse fetch",
                    REQUEST_OVERHEAD_BYTES,
                    total_bytes / max(1, rpcs),
                )

        notes = [
            f"est. {sim.buckets_fetched} bucket fetches, "
            f"{int(sim.reverse_rows[0] + sim.reverse_rows[1])} reverse rows",
            self._index_note(left, "bfhm"),
        ]
        return CostEstimate.from_ledger("BFHM", ledger, notes)

    # -- IJLMR -------------------------------------------------------------------

    def _estimate_ijlmr(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Single MapReduce job over the co-located inverted index (§4.1).

        Mappers scan the *whole* index (that is IJLMR's dollar-cost story),
        form per-join-value Cartesian products, and ship only local top-k
        lists; a sole reducer merges them.
        """
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count

        index_cells = 0.0
        index_bytes = 0.0
        for stats in (left, right):
            index = stats.index("ijlmr")
            if index.built:
                index_cells += index.cells
                index_bytes += index.total_bytes
            else:
                cell = (
                    8.0 + stats.avg_join_value_bytes + len(stats.binding.signature)
                    + stats.avg_row_key_bytes + 8.0
                )
                index_cells += stats.row_count
                index_bytes += stats.row_count * cell

        ledger.add_time("job startup", model.mr_job_startup_s)
        ledger.server_read("index scan", index_bytes, index_cells, sequential=True)
        # undo the serial charge and re-apply it as a parallel map wave:
        # tasks run on the region's node, slots-wide
        wave = (
            model.disk_seq_time(int(index_bytes))
            + model.cpu_time(int(index_cells + join_size))
        ) / self._parallelism
        serial = model.disk_seq_time(int(index_bytes)) + model.cpu_time(int(index_cells))
        ledger.add_time("index scan", wave - serial)
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # local top-k lists to the master (one list per mapper ≈ per worker)
        tuple_bytes = (
            left.avg_row_key_bytes + right.avg_row_key_bytes
            + left.avg_join_value_bytes + 3 * 8.0
        )
        mappers = max(1, model.worker_nodes)
        ledger.network("top-k collect", mappers * query.k * tuple_bytes)
        ledger.cpu("reducer merge", mappers * query.k)

        notes = [
            f"full index scan: {int(index_cells)} cells, "
            f"{int(join_size)} joined pairs",
            self._index_note(left, "ijlmr"),
        ]
        return CostEstimate.from_ledger("IJLMR", ledger, notes)

    # -- MapReduce baselines --------------------------------------------------------

    def _scan_both_tables(
        self, ledger: CostLedger, component: str,
        left: TableStatistics, right: TableStatistics, emitted_per_record: float,
    ) -> None:
        """Price a map wave that scans both base tables in full."""
        model = self.platform.cost_model
        total_bytes = left.total_row_bytes + right.total_row_bytes
        total_cells = left.total_cells + right.total_cells
        records = left.row_count + right.row_count
        ledger.server_read(component, total_bytes, total_cells, sequential=True)
        wave = (
            model.disk_seq_time(int(total_bytes))
            + model.cpu_time(int(records * (1 + emitted_per_record)))
        ) / self._parallelism
        serial = model.disk_seq_time(int(total_bytes)) + model.cpu_time(int(total_cells))
        ledger.add_time(component, wave - serial)
        ledger.add_time("task startup", model.mr_task_startup_s)

    def _estimate_hive(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Hive baseline (§3.1): two full MapReduce jobs plus a fetch stage,
        with **no early projection** — complete rows are shuffled and the
        full join result is materialized to HDFS twice (join + sort)."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count
        joined_row_bytes = left.avg_row_bytes + right.avg_row_bytes

        # job 1: join — full scan, full-row shuffle, join materialized
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "base scan", left, right, 1.0)
        shuffle = (left.total_row_bytes + right.total_row_bytes) * _remote_fraction(
            model.worker_nodes
        )
        ledger.network("shuffle", shuffle)
        ledger.cpu("reduce join", (left.row_count + right.row_count + join_size))
        ledger.network(
            "HDFS write", join_size * joined_row_bytes * (model.hdfs_replication - 1)
        )
        ledger.add_time("task startup", model.mr_task_startup_s)

        # job 2: sort — rescan the join result, shuffle, rewrite sorted
        ledger.add_time("job startup", model.mr_job_startup_s)
        join_bytes = join_size * joined_row_bytes
        ledger.add_time("sort scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("sort scan", join_size / self._parallelism)
        ledger.network("shuffle", join_bytes * _remote_fraction(model.worker_nodes))
        ledger.cpu("reduce sort", join_size)
        ledger.network("HDFS write", join_bytes * (model.hdfs_replication - 1))
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # final non-MR stage: fetch the k best from the sorted file
        ledger.network("fetch stage", query.k * joined_row_bytes)

        notes = [
            f"materializes {int(join_size)} joined rows twice (no projection)",
            "index-free: scans base tables in full",
        ]
        return CostEstimate.from_ledger("HIVE", ledger, notes)

    def _estimate_pig(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Pig baseline (§3.1): three jobs (join, sampling, top-k) with
        early projection and in-task combiner top-k lists."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count
        # early projection: row key + join value + score survive
        projected_bytes = (
            (left.avg_row_key_bytes + right.avg_row_key_bytes) / 2
            + left.avg_join_value_bytes + 8.0
        )
        joined_projected = (
            left.avg_row_key_bytes + right.avg_row_key_bytes
            + left.avg_join_value_bytes + 2 * 8.0
        )

        # job 1: join with early projection
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "base scan", left, right, 1.0)
        records = left.row_count + right.row_count
        ledger.network(
            "shuffle", records * projected_bytes * _remote_fraction(model.worker_nodes)
        )
        ledger.cpu("reduce join", records + join_size)
        ledger.network(
            "HDFS write", join_size * joined_projected * (model.hdfs_replication - 1)
        )
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # job 2: sampling for the balanced ORDER BY partitioner
        ledger.add_time("job startup", model.mr_job_startup_s)
        join_bytes = join_size * joined_projected
        ledger.add_time("sample scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("sample scan", join_size / self._parallelism)
        ledger.add_time("task startup", model.mr_task_startup_s)

        # job 3: top-k with combiner lists
        ledger.add_time("job startup", model.mr_job_startup_s)
        ledger.add_time("topk scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("topk scan", join_size / self._parallelism)
        mappers = max(1, model.worker_nodes)
        ledger.network("topk shuffle", mappers * query.k * joined_projected)
        ledger.cpu("reduce topk", mappers * query.k)
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        notes = [
            f"early projection keeps shuffle to {int(projected_bytes)} B/record",
            "index-free: scans base tables in full",
        ]
        return CostEstimate.from_ledger("PIG", ledger, notes)

    # -- DRJN ---------------------------------------------------------------------

    def _estimate_drjn(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """DRJN (§7.1 adaptation): matrix-row gets to estimate the stopping
        score, then per-round map-only pull jobs that scan the base tables
        in full behind a server-side score filter."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        instance = self.engine.algorithm("drjn")
        num_partitions = instance.num_join_partitions
        num_score_buckets = instance.num_score_buckets

        # walk matrix rows (one per score bucket, both relations) until the
        # estimated join cardinality covers k
        left_counts = _rebucket(_profile(left), num_score_buckets)
        right_counts = _rebucket(_profile(right), num_score_buckets)
        cum_l = cum_r = 0.0
        rows_fetched = 0
        boundary_bucket = num_score_buckets - 1
        for b in range(num_score_buckets):
            cum_l += left_counts[b]
            cum_r += right_counts[b]
            rows_fetched += 2
            if sel * cum_l * cum_r >= query.k and cum_l and cum_r:
                boundary_bucket = b
                break
        row_bytes = num_partitions * (8.0 + 20.0)
        for _ in range(rows_fetched):
            ledger.server_read("matrix fetch", row_bytes, num_partitions,
                               sequential=False)
            ledger.rpc("matrix fetch", REQUEST_OVERHEAD_BYTES, row_bytes)

        # one pull round: map-only job scanning both base tables with the
        # score-band filter, writing survivors to a temp table (no WAL)
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "pull scan", left, right, 0.2)
        pulled = cum_l + cum_r
        pulled_bytes = pulled * (
            left.avg_row_key_bytes + left.avg_join_value_bytes + 16.0
        )
        ledger.network("temp write", pulled_bytes)

        # coordinator scans the temp table and joins
        ledger.server_read("temp scan", pulled_bytes, pulled, sequential=True)
        batches = max(1, int(math.ceil(pulled / 100.0)))
        for _ in range(batches):
            ledger.rpc(
                "temp scan",
                RESPONSE_OVERHEAD_BYTES,
                RESPONSE_OVERHEAD_BYTES + pulled_bytes / batches,
            )
        ledger.cpu("coordinator join", pulled + sel * cum_l * cum_r)

        notes = [
            f"{rows_fetched} matrix rows to bucket {boundary_bucket}, "
            f"then pulls ≈ {int(pulled)} tuples via full scans",
            self._index_note(left, "drjn"),
        ]
        return CostEstimate.from_ledger("DRJN", ledger, notes)


# ---------------------------------------------------------------------------
# analytic simulations
# ---------------------------------------------------------------------------


def _simulate_hrjn(
    profiles: "tuple[_SideProfile, _SideProfile]",
    function: AggregateFunction,
    k: int,
    batch: "tuple[int, int]",
    selectivity: float,
) -> "tuple[list[float], list[int]]":
    """Expected HRJN scan depth under alternating batched pulls.

    Returns ``(tuples consumed per side, batches per side)`` at the point
    the threshold test is expected to fire.
    """
    consumed = [0.0, 0.0]
    batches = [0, 0]
    totals = [profiles[0].total, profiles[1].total]
    if not totals[0] or not totals[1]:
        return consumed, batches

    def current_score(side: int) -> float:
        """Score at the current scan depth (interpolated in-bucket)."""
        profile = profiles[side]
        remaining = consumed[side]
        for index in range(len(profile.counts)):
            count = profile.counts[index]
            if remaining <= count:
                fraction = remaining / count if count else 1.0
                return profile.maxes[index] - fraction * (
                    profile.maxes[index] - profile.mins[index]
                )
            remaining -= count
        return profile.mins[-1]

    def seen_counts(side: int) -> "list[float]":
        profile = profiles[side]
        remaining = consumed[side]
        seen = []
        for count in profile.counts:
            take = min(count, remaining)
            seen.append(take)
            remaining -= take
            if remaining <= 0:
                break
        return seen

    def results_above(threshold: float) -> float:
        """Expected joined results among seen tuples scoring >= threshold."""
        seen_l = seen_counts(0)
        seen_r = seen_counts(1)
        if not seen_l or not seen_r:
            return 0.0
        cum_r = [0.0]
        for value in seen_r:
            cum_r.append(cum_r[-1] + value)
        total = 0.0
        j_limit = len(seen_r)  # two-pointer: shrinks as mid_l decreases
        for i in range(len(seen_l)):
            if not seen_l[i]:
                continue
            mid_l = profiles[0].mid(i)
            while j_limit > 0 and function(
                mid_l, profiles[1].mid(j_limit - 1)
            ) < threshold:
                j_limit -= 1
            if j_limit == 0:
                break
            total += seen_l[i] * cum_r[j_limit]
        return total * selectivity

    side = 0
    while True:
        exhausted = [consumed[s] >= totals[s] for s in (0, 1)]
        if all(exhausted):
            break
        if exhausted[side]:
            side = 1 - side
        consumed[side] = min(totals[side], consumed[side] + batch[side])
        batches[side] += 1
        threshold = max(
            function(profiles[0].top_score, current_score(1)),
            function(current_score(0), profiles[1].top_score),
        )
        if results_above(threshold) >= k:
            break
        side = 1 - side
    return consumed, batches


@dataclass
class _BFHMSimulation:
    """Outcome of the analytic phase-1/phase-2 re-enactment."""

    fetched: "tuple[list[int], list[int]]"
    buckets_fetched: int
    reverse_rows: "tuple[float, float]"


def _simulate_bfhm(
    profiles: "tuple[_SideProfile, _SideProfile]",
    function: AggregateFunction,
    k: int,
    m_bits: int,
    selectivity: float,
) -> _BFHMSimulation:
    """Expected bucket fetches and reverse-row reads of a BFHM run.

    Re-enacts Algorithms 6/7 with expectations in place of filters: each
    bucket pair contributes its expected filter intersection (true matches
    plus false-positive bit overlaps), and the CONSERVATIVE termination
    bound is evaluated exactly as the estimator would.
    """
    fetched: tuple[list[int], list[int]] = ([], [])
    nxt = [0, 0]
    # results: (weight, min_score, max_score, common, left_idx, right_idx)
    results: "list[tuple[float, float, float, float, int, int]]" = []
    total_cardinality = 0.0

    def pair(left_index: int, right_index: int) -> "tuple[float, float] | None":
        """Expected (estimated-tuple weight, common bit positions) of one
        bucket join.

        The real estimator appends a result per *intersecting* pair and
        counts ``max(1, round(cardinality))`` estimated tuples for it; in
        expectation that is ``P(intersect) * max(1, E[card | intersect])``,
        which ``max(P(intersect), E[card])`` approximates from expectations
        alone (they agree in both the sparse and the dense regime).
        """
        c_l = profiles[0].counts[left_index]
        c_r = profiles[1].counts[right_index]
        true_common = min(selectivity * c_l * c_r, min(c_l, c_r))
        p_l = 1.0 - math.exp(-c_l / m_bits)
        p_r = 1.0 - math.exp(-c_r / m_bits)
        fp_common = max(0.0, m_bits * p_l * p_r - true_common)
        common = true_common + fp_common
        if common < 1e-6:
            return None
        p_intersect = 1.0 - math.exp(-common)
        weight = max(p_intersect, selectivity * c_l * c_r + fp_common)
        return weight, common

    def advance(side: int) -> bool:
        nonlocal total_cardinality
        if nxt[side] >= len(profiles[side].counts):
            return False
        index = nxt[side]
        nxt[side] += 1
        fetched[side].append(index)
        for other_index in fetched[1 - side]:
            left_index = index if side == 0 else other_index
            right_index = other_index if side == 0 else index
            joined = pair(left_index, right_index)
            if joined is None:
                continue
            weight, common = joined
            results.append((
                weight,
                function(profiles[0].mins[left_index], profiles[1].mins[right_index]),
                function(profiles[0].maxes[left_index], profiles[1].maxes[right_index]),
                common,
                left_index,
                right_index,
            ))
            total_cardinality += weight
        return True

    def kth_bound() -> "float | None":
        ordered = sorted(results, key=lambda r: -r[1])
        accumulated = 0.0
        for weight, min_score, _, _, _, _ in ordered:
            accumulated += weight
            if accumulated >= k:
                return min_score
        return None

    def unexamined_best(side: int) -> "float | None":
        if nxt[side] >= len(profiles[side].counts):
            return None
        other = profiles[1 - side]
        if not other.counts:
            return None
        mine = profiles[side].upper_boundary(nxt[side])
        theirs = other.upper_boundary(0)
        return function(mine, theirs) if side == 0 else function(theirs, mine)

    def should_terminate() -> bool:
        if total_cardinality < k:
            return False
        bound = kth_bound()
        if bound is None:
            return False
        for side in (0, 1):
            best = unexamined_best(side)
            if best is not None and best > bound + 1e-12:
                return False
        return True

    side = 0
    while not should_terminate():
        if nxt[0] >= len(profiles[0].counts) and nxt[1] >= len(profiles[1].counts):
            break
        if nxt[side] >= len(profiles[side].counts):
            side = 1 - side
        advance(side)
        side = 1 - side

    # phase 2: the §5.3 repair loop converges on the k-th *actual* result
    # score — every fetched pair whose max score could still beat it ends
    # up reverse-mapped.  Estimate that score from the true-match weights
    # (midpoint scores, no false positives), then count the reverse rows
    # of the surviving pairs (deduplicated per bucket — a bucket cannot
    # yield more reverse rows than it has tuples).
    def kth_actual_score() -> "float | None":
        """Solve for the score t with k expected true results above it.

        Each pair's expected true matches are smeared uniformly over the
        pair's attainable score range — bucket midpoints would
        systematically overestimate under skewed score distributions.
        """
        spans = []
        for _, min_score, max_score, _, left_index, right_index in results:
            true_weight = (
                selectivity
                * profiles[0].counts[left_index]
                * profiles[1].counts[right_index]
            )
            if true_weight > 0:
                spans.append((min_score, max_score, true_weight))
        if not spans:
            return None

        def above(t: float) -> float:
            total = 0.0
            for lo, hi, weight in spans:
                if hi <= t:
                    continue
                if lo >= t or hi == lo:
                    total += weight
                else:
                    total += weight * (hi - t) / (hi - lo)
            return total

        hi_bound = max(hi for _, hi, _ in spans)
        if above(0.0) < k:
            return None
        lo_t, hi_t = 0.0, hi_bound
        for _ in range(40):
            mid_t = (lo_t + hi_t) / 2
            if above(mid_t) >= k:
                lo_t = mid_t
            else:
                hi_t = mid_t
        return lo_t

    bound = kth_actual_score()
    # when the estimated purge bound overshoots the true k-th score (the
    # cardinality overcount of sparse bucket joins), the first purge drops
    # real results, the repair loop re-admits excluded pairs wholesale,
    # and essentially every fetched pair gets materialized
    purge_bound = kth_bound()
    if (
        bound is not None
        and purge_bound is not None
        and purge_bound > bound + 1e-12
    ):
        bound = None
    per_bucket: "tuple[dict[int, float], dict[int, float]]" = ({}, {})
    for weight, min_score, max_score, common, left_index, right_index in results:
        if bound is not None and max_score < bound - 1e-12:
            continue
        per_bucket[0][left_index] = per_bucket[0].get(left_index, 0.0) + common
        per_bucket[1][right_index] = per_bucket[1].get(right_index, 0.0) + common
    reverse = [0.0, 0.0]
    for side in (0, 1):
        for index, positions in per_bucket[side].items():
            reverse[side] += min(positions, profiles[side].counts[index])

    return _BFHMSimulation(
        fetched=fetched,
        buckets_fetched=len(fetched[0]) + len(fetched[1]),
        reverse_rows=(reverse[0], reverse[1]),
    )


def _golomb_blob_bytes(count: float, m_bits: int) -> float:
    """Approximate stored size of one Golomb-compressed bucket blob.

    Golomb coding of ``e`` set positions over ``m`` bits costs roughly
    ``e * (log2(m/e) + 1.6)`` bits, plus the fixed header/min/max/count
    columns of the blob row.
    """
    entries = max(1.0, count)
    per_entry_bits = math.log2(max(2.0, m_bits / entries)) + 1.6
    return 110.0 + entries * per_entry_bits / 8.0


def _reproject_profile(profile: _SideProfile, num_buckets: int) -> _SideProfile:
    """Merge a profile onto a different equi-width bucket grid.

    Bucket numbers of the result live on the ``num_buckets`` grid, so
    lookups against a built index's blob rows (which encode that grid)
    match.  A no-op when the grids already agree.
    """
    if num_buckets == profile.num_buckets:
        return profile
    merged: "dict[int, tuple[float, float, float]]" = {}
    for index, bucket in enumerate(profile.buckets):
        position = (bucket + 0.5) / profile.num_buckets
        target = min(num_buckets - 1, int(position * num_buckets))
        count, low, high = merged.get(
            target, (0.0, float("inf"), float("-inf"))
        )
        merged[target] = (
            count + profile.counts[index],
            min(low, profile.mins[index]),
            max(high, profile.maxes[index]),
        )
    buckets = sorted(merged)
    return _SideProfile(
        buckets=buckets,
        counts=[merged[b][0] for b in buckets],
        mins=[merged[b][1] for b in buckets],
        maxes=[merged[b][2] for b in buckets],
        num_buckets=num_buckets,
        total=profile.total,
    )


def _rebucket(profile: _SideProfile, num_buckets: int) -> "list[float]":
    """Project a profile's counts onto a coarser/finer equi-width grid."""
    counts = [0.0] * num_buckets
    for index, bucket in enumerate(profile.buckets):
        # midpoint of the profile bucket decides the target bucket
        position = (bucket + 0.5) / profile.num_buckets
        target = min(num_buckets - 1, int(position * num_buckets))
        counts[target] += profile.counts[index]
    return counts
