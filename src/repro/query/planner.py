"""The cost-based query planner.

The paper's bottom line (§7.3) is that *no single rank-join algorithm wins
everywhere*: BFHM dominates on network traffic and dollar cost, ISL-style
coordinator algorithms win at small budgets and low-latency clusters, and
the MapReduce approaches only pay off at bulk scale.  The planner makes
that trade-off explicit: given a parsed :class:`RankJoinQuery` it

1. pulls :class:`~repro.query.statistics.TableStatistics` for every
   input relation from the engine's :class:`StatisticsCatalog`,
2. prices every candidate algorithm with the platform's calibrated
   :class:`~repro.cluster.costmodel.CostModel` — RPC rounds and scan depth
   for coordinator algorithms (ISL), bucket and reverse-mapping probes for
   BFHM, job startup plus scan volume for the MapReduce family; arity >= 3
   queries price the three n-way strategies instead (n-way ISL, the
   index-free HRJN pipeline, and the left-deep BFHM cascade with per-stage
   components) — and
3. returns a :class:`QueryPlan` ranking the candidates by the requested
   objective (simulated time, network bytes, or KV read units).

Estimates mirror the exact charging rules of the simulated substrate
(:mod:`repro.store.client`, :mod:`repro.store.scanner`,
:mod:`repro.mapreduce.runtime`), so a plan's numbers are directly
comparable to the metrics a real execution reports.  Planning itself is
side-effect free: it reads cached statistics (gathered unmetered) and
never touches the metered data path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.common.functions import AggregateFunction
from repro.errors import PlanningError
from repro.query.spec import RankJoinQuery
from repro.query.statistics import (
    BFHMIndexStatistics,
    JoinProfile,
    StatisticsCatalog,
    TableStatistics,
    expected_bucket_join,
)
from repro.sketches.histogram import bucket_bounds, score_to_bucket

# request/response framing constants of the metered store client — imported
# so planner estimates can never drift from the substrate's actual charges
# (the store layer does not import the query layer, so no cycle)
from repro.store.client import REQUEST_OVERHEAD_BYTES
from repro.store.scanner import RESPONSE_OVERHEAD_BYTES

#: objectives a plan can rank by -> CostEstimate attribute
OBJECTIVES = {
    "time": "time_s",
    "network": "network_bytes",
    "dollars": "kv_reads",
    "kv_reads": "kv_reads",
}

#: the HRJN depth replay terminates on an *expected* result count, but the
#: execution terminates on the realized one, whose median sits ~1/3 below
#: the mean (Poisson median ≈ μ - 1/3) — without the correction the replay
#: systematically overshoots the k=1 cells by one alternation round
HRJN_MEDIAN_CORRECTION = 0.35

#: relative downward bias of the expected-results model itself: smearing
#: bucket-pair matches over score spans loses the within-bucket rank/score
#: coupling, measured at ~0.8% of k on the Fig. 7/8 grid (one alternation
#: round at k=50); folded into the termination target as a multiplier.
#: Calibration windows from the grid's μ trajectories (see ISSUE 4):
#: k=1 needs corr ≥ 0.348, k=10 needs corr < 0.439, k=50 needs
#: corr ≥ 0.727 — satisfied by 0.35 + 0.008·k
HRJN_RESULTS_BIAS = 0.008


def _remote_fraction(workers: int) -> float:
    """Fraction of shuffle records crossing node boundaries (uniform
    partitioning over W workers leaves 1/W local)."""
    return 1.0 - 1.0 / max(1, workers)


# ---------------------------------------------------------------------------
# cost accumulation
# ---------------------------------------------------------------------------


class CostLedger:
    """Accumulates priced operations the way the simulator meters them.

    Each charging method mirrors one primitive of the metered substrate, so
    estimator code reads like the execution path it models.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.time_s = 0.0
        self.network_bytes = 0.0
        self.kv_reads = 0.0
        self.breakdown: dict[str, float] = {}

    def add_time(self, component: str, seconds: float) -> None:
        self.time_s += seconds
        self.breakdown[component] = self.breakdown.get(component, 0.0) + seconds

    def rpc(self, component: str, request_bytes: float, response_bytes: float) -> None:
        """One coordinator<->server round trip (SimContext.charge_rpc)."""
        total = request_bytes + response_bytes
        self.network_bytes += total
        self.add_time(
            component, self.model.rpc_latency_s + self.model.network_time(int(total))
        )

    def server_read(
        self, component: str, num_bytes: float, cells: float, sequential: bool = True
    ) -> None:
        """Server-side read (SimContext.charge_server_read)."""
        self.kv_reads += cells
        seek = 0.0 if sequential else self.model.disk_random_read_s
        self.add_time(
            component,
            seek
            + self.model.disk_seq_time(int(num_bytes))
            + self.model.cpu_time(int(cells)),
        )

    def server_read_rows(
        self, component: str, rows: float, num_bytes: float, cells: float
    ) -> None:
        """``rows`` independent random point reads (one seek *each*)."""
        self.kv_reads += cells
        self.add_time(
            component,
            rows * self.model.disk_random_read_s
            + self.model.disk_seq_time(int(num_bytes))
            + self.model.cpu_time(int(cells)),
        )

    def network(self, component: str, num_bytes: float) -> None:
        self.network_bytes += num_bytes
        self.add_time(component, self.model.network_time(int(num_bytes)))

    def cpu(self, component: str, tuples: float, factor: float = 1.0) -> None:
        self.add_time(component, self.model.cpu_time(int(tuples)) * factor)

    def merge(
        self,
        other: "CostLedger",
        time_scale: float = 1.0,
        component: "str | None" = None,
    ) -> None:
        """Fold another ledger into this one.

        ``time_scale`` scales only the *time* — counters (bytes, KV reads)
        are always absorbed in full, matching the scatter/gather round
        model of :mod:`repro.cluster.executor` where fan-out hides latency
        behind the slowest server's queue but never removes work.
        ``component`` relabels the folded time under one component name
        (e.g. ``"fanout overlap"``) instead of keeping per-component lines.
        """
        self.network_bytes += other.network_bytes
        self.kv_reads += other.kv_reads
        for name, seconds in other.breakdown.items():
            self.add_time(component or name, seconds * time_scale)


@dataclass
class CostEstimate:
    """One candidate algorithm's predicted bill."""

    algorithm: str
    time_s: float
    network_bytes: int
    kv_reads: int
    dollars: float
    breakdown: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @classmethod
    def from_ledger(
        cls, algorithm: str, ledger: CostLedger, notes: "list[str] | None" = None
    ) -> "CostEstimate":
        return cls(
            algorithm=algorithm,
            time_s=ledger.time_s,
            network_bytes=int(ledger.network_bytes),
            kv_reads=int(ledger.kv_reads),
            dollars=ledger.model.dollars(int(ledger.kv_reads)),
            breakdown=dict(ledger.breakdown),
            notes=list(notes or []),
        )


@dataclass
class QueryPlan:
    """Ranked per-algorithm cost estimates for one query."""

    query: RankJoinQuery
    objective: str
    estimates: list[CostEstimate]
    statistics: "dict[str, TableStatistics]"
    #: per-input-table index lag at the time this plan was (re)surfaced:
    #: ``table -> pending mutation records`` (empty when every input is
    #: synchronously maintained or fully drained).  Refreshed on every
    #: ``QueryPlanner.plan`` call, including plan-cache hits, so EXPLAIN
    #: always reports the *current* staleness, not the staleness at
    #: pricing time.
    staleness: "dict[str, int]" = field(default_factory=dict)
    #: region servers the executor's scatter/gather layer can fan out
    #: across (1 = single-server topology, serial RPC rounds)
    servers: int = 1

    @property
    def chosen(self) -> str:
        """Lowercase name of the winning algorithm."""
        return self.estimates[0].algorithm.lower()

    @property
    def best(self) -> CostEstimate:
        return self.estimates[0]

    def estimate(self, algorithm: str) -> CostEstimate:
        for est in self.estimates:
            if est.algorithm.lower() == algorithm.lower():
                return est
        raise PlanningError(f"no estimate for algorithm {algorithm!r}")

    def render(self) -> str:
        """Human-readable EXPLAIN table (see repro.query.explain)."""
        from repro.query.explain import render_plan

        return render_plan(self)

    def __str__(self) -> str:  # pragma: no cover - delegates to render()
        return self.render()


# ---------------------------------------------------------------------------
# score-distribution profiles
# ---------------------------------------------------------------------------


@dataclass
class _SideProfile:
    """Per-relation score distribution in planner-friendly form.

    Buckets are listed in descending-score order (= ascending bucket
    number), keeping only non-empty buckets — the same shape a built BFHM
    index exposes through its meta row.
    """

    buckets: list[int]
    counts: list[float]
    mins: list[float]
    maxes: list[float]
    num_buckets: int
    total: float

    @property
    def top_score(self) -> float:
        return self.maxes[0] if self.maxes else 0.0

    def mid(self, index: int) -> float:
        return (self.mins[index] + self.maxes[index]) / 2.0

    def score_at_depth(self, consumed: float) -> float:
        """Score at a scan depth of ``consumed`` tuples (interpolated
        linearly within the frontier bucket)."""
        remaining = consumed
        for index in range(len(self.counts)):
            count = self.counts[index]
            if remaining <= count:
                fraction = remaining / count if count else 1.0
                return self.maxes[index] - fraction * (
                    self.maxes[index] - self.mins[index]
                )
            remaining -= count
        return self.mins[-1]

    def seen_at_depth(self, consumed: float) -> "list[float]":
        """Per-bucket tuple counts consumed by a depth-``consumed`` scan
        (truncated after the frontier bucket)."""
        remaining = consumed
        seen = []
        for count in self.counts:
            take = min(count, remaining)
            seen.append(take)
            remaining -= take
            if remaining <= 0:
                break
        return seen

    def upper_boundary(self, index: int) -> float:
        """Theoretical upper boundary of the bucket (what BFHM termination
        reasons with — it cannot see actual per-bucket maxima upfront)."""
        return bucket_bounds(self.buckets[index], self.num_buckets)[1]


def _profile(stats: TableStatistics) -> _SideProfile:
    histogram = stats.histogram
    buckets, counts, mins, maxes = [], [], [], []
    for b in histogram.non_empty_buckets():
        info = histogram.bucket(b)
        buckets.append(b)
        counts.append(float(info.count))
        mins.append(info.min_score)
        maxes.append(info.max_score)
    return _SideProfile(
        buckets=buckets,
        counts=counts,
        mins=mins,
        maxes=maxes,
        num_buckets=histogram.num_buckets,
        total=float(sum(counts)),
    )


def _bfhm_profile(stats: TableStatistics, num_buckets: int) -> _SideProfile:
    """Per-bucket profile the BFHM cascade replay runs against.

    When the BFHM index is built, the profile is read straight off its
    blob rows (actual per-bucket counts and min/max scores, in the exact
    bucket order the coordinator fetches); otherwise the statistics
    histogram is re-projected onto the index's bucket grid so bucket
    numbers line up with stored blob rows.
    """
    index = stats.index("bfhm")
    if isinstance(index, BFHMIndexStatistics) and index.built:
        rows = index.bucket_profile()
        if rows:
            return _SideProfile(
                buckets=[bucket for bucket, _, _, _ in rows],
                counts=[float(count) for _, count, _, _ in rows],
                mins=[low for _, _, low, _ in rows],
                maxes=[high for _, _, _, high in rows],
                num_buckets=index.num_buckets,
                total=float(sum(count for _, count, _, _ in rows)),
            )
    return _reproject_profile(_profile(stats), num_buckets)


def _join_selectivity(left: TableStatistics, right: TableStatistics) -> float:
    """P(two random tuples join) under the uniform join-key assumption.

    For foreign-key joins (the paper's Q1/Q2 shape) this reduces to
    ``1/|referenced keys|``, making the expected join size
    ``n_l * n_r / max(d_l, d_r)`` — exact under uniformity.
    """
    return 1.0 / max(left.distinct_join_values, right.distinct_join_values, 1)


def _project_join_vectors(
    profile: _SideProfile, join_profile: "JoinProfile | None"
) -> "list[dict[int, tuple[float, float]] | None] | None":
    """Per-sim-bucket join-partition vectors, re-gridded and re-scaled.

    The join profile lives on the statistics histogram grid; the cascade
    replay runs on the (possibly different) index bucket grid.  Each stats
    cell is assigned to the sim bucket its midpoint lands in, then every
    vector is scaled so its tuple count matches the sim profile's bucket
    count (actual blob-row counts beat histogram counts).
    """
    if join_profile is None:
        return None
    index_of = {bucket: i for i, bucket in enumerate(profile.buckets)}
    raw: "list[dict[int, list[float]] | None]" = [None] * len(profile.buckets)
    for stats_bucket, vector in join_profile.cells.items():
        position = (stats_bucket + 0.5) / join_profile.num_buckets
        target = min(profile.num_buckets - 1, int(position * profile.num_buckets))
        sim_index = index_of.get(target)
        if sim_index is None:
            continue
        accumulated = raw[sim_index]
        if accumulated is None:
            accumulated = raw[sim_index] = {}
        for partition, (count, distinct) in vector.items():
            cell = accumulated.setdefault(partition, [0.0, 0.0])
            cell[0] += count
            cell[1] += distinct
    out: "list[dict[int, tuple[float, float]] | None]" = []
    for i, accumulated in enumerate(raw):
        if accumulated is None:
            out.append(None)
            continue
        total = sum(count for count, _ in accumulated.values())
        factor = profile.counts[i] / total if total else 1.0
        out.append({
            partition: (count * factor, distinct * factor)
            for partition, (count, distinct) in accumulated.items()
        })
    return out


class _JoinMatcher:
    """Per-bucket-pair join expectations from the relations' 2-D profiles.

    Callable ``(left sim bucket index, right sim bucket index) ->
    (expected tuple-pair matches, expected distinct shared join values)``,
    or ``None`` when no profile covers a bucket (caller falls back to the
    uniform-selectivity estimate).
    """

    def __init__(
        self,
        left: TableStatistics,
        right: TableStatistics,
        profiles: "tuple[_SideProfile, _SideProfile]",
    ) -> None:
        self._join_profiles = (left.join_profile, right.join_profile)
        if self._join_profiles[0] is None or self._join_profiles[1] is None:
            self._vectors = None
        else:
            self._vectors = (
                _project_join_vectors(profiles[0], self._join_profiles[0]),
                _project_join_vectors(profiles[1], self._join_profiles[1]),
            )

    def __call__(
        self, left_index: int, right_index: int
    ) -> "tuple[float, float] | None":
        if self._vectors is None:
            return None
        left_vector = self._vectors[0][left_index]
        right_vector = self._vectors[1][right_index]
        if left_vector is None or right_vector is None:
            return None
        return expected_bucket_join(
            self._join_profiles[0], self._join_profiles[1],
            left_vector, right_vector,
        )

    def bucket_distinct(self, side: int, index: int) -> "float | None":
        """Distinct join values in one sim bucket — what its BFHM filter
        actually hashes (duplicate values set the same bit)."""
        if self._vectors is None:
            return None
        vector = self._vectors[side][index]
        if vector is None:
            return None
        return sum(distinct for _, distinct in vector.values())

    def union_join(
        self, side: int, index: int, partners: "list[int]"
    ) -> "tuple[float, float] | None":
        """Expected ``(shared join values, partner-union distincts)`` of one
        bucket against the *union* of its partner buckets.

        A join value matching rows in several partner buckets intersects
        at one filter position, and its reverse row is fetched once — so
        reverse-row traffic must be counted against the union, not summed
        per pair.
        """
        if self._vectors is None:
            return None
        mine = self._vectors[side][index]
        if mine is None:
            return None
        union: "dict[int, float]" = {}
        for partner in partners:
            vector = self._vectors[1 - side][partner]
            if vector is None:
                return None
            for partition, (_, distinct) in vector.items():
                union[partition] = union.get(partition, 0.0) + distinct
        shared = 0.0
        union_total = 0.0
        left_profile, right_profile = self._join_profiles
        for partition, distinct in union.items():
            universe = max(
                left_profile.partition_distinct.get(partition, 1),
                right_profile.partition_distinct.get(partition, 1),
                1,
            )
            distinct = min(distinct, universe)
            union_total += distinct
            my_cell = mine.get(partition)
            if my_cell is not None:
                shared += my_cell[1] * distinct / universe
        return shared, union_total


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


class QueryPlanner:
    """Prices candidate algorithms for rank-join queries.

    The planner needs the engine only to read each algorithm's *tuning*
    (ISL batch sizing, BFHM bucket count, DRJN partitions), never to run
    anything.
    """

    #: bound on remembered plans (plans are cheap to rebuild; the cache
    #: only exists so repeated identical queries skip the simulations)
    PLAN_CACHE_LIMIT = 64

    def __init__(
        self,
        engine,
        catalog: "StatisticsCatalog | None" = None,
        plan_cache=None,
    ) -> None:
        self.engine = engine
        self.platform = engine.platform
        self.catalog = catalog or StatisticsCatalog(engine.platform)
        self._plan_cache: "dict[tuple, tuple[int, QueryPlan]]" = {}
        #: optional shared cache (duck-typed; see
        #: :class:`repro.serving.plan_cache.PlanCache`).  When set it
        #: replaces the private dict above, so many planners — one per
        #: serving worker thread — share one LRU with per-table version
        #: validation and hit/miss accounting.
        self.plan_cache = plan_cache

    # -- public API ---------------------------------------------------------

    def plan(
        self,
        query: RankJoinQuery,
        objective: str = "time",
        algorithms: "list[str] | None" = None,
    ) -> QueryPlan:
        """Price ``algorithms`` (default: every registered factory of the
        query's arity) for ``query``, ranked by ``objective``."""
        if objective not in OBJECTIVES:
            raise PlanningError(
                f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
            )
        from repro.query.engine import (
            ALGORITHM_FACTORIES,
            MULTIWAY_ALIASES,
            MULTIWAY_FACTORIES,
        )

        multiway = query.arity > 2
        registry = MULTIWAY_FACTORIES if multiway else ALGORITHM_FACTORIES
        names = [name.lower() for name in (algorithms or sorted(registry))]
        if multiway:
            # accept the display names EXPLAIN itself emits (BFHM-cascade,
            # ISL-nway, ...) wherever the registry keys are accepted
            names = [MULTIWAY_ALIASES.get(name, name) for name in names]
        # a plan is a pure function of (query, statistics, objective);
        # cache it until the statistics catalog sees an invalidation
        key = (
            query.inputs, query.k, repr(query.function),
            objective, tuple(names),
        )
        shared = self.plan_cache
        versions = epoch = None
        if shared is not None:
            hit = shared.lookup(key)
            if hit is not None:
                hit.staleness = self._staleness_for(query)
                return hit
            # snapshot the versions *before* gathering statistics: if
            # maintenance lands mid-planning, store() sees the mismatch
            # and refuses to cache the possibly-stale plan
            versions = shared.versions_for(
                tuple(binding.table for binding in query.inputs)
            )
            epoch = self.catalog.epoch
        else:
            cached = self._plan_cache.get(key)
            if cached is not None and cached[0] == self.catalog.version:
                cached[1].staleness = self._staleness_for(query)
                return cached[1]
        stats = self.catalog.stats_for_query(query)

        estimates = []
        prefix = "_estimate_multi_" if multiway else "_estimate_"
        for name in names:
            estimator = getattr(self, f"{prefix}{name}", None)
            if estimator is None:
                raise PlanningError(f"no cost model for algorithm {name!r}")
            if multiway:
                estimates.append(estimator(query, stats))
            else:
                estimates.append(estimator(query, stats[0], stats[1]))

        attribute = OBJECTIVES[objective]
        estimates.sort(key=lambda est: (getattr(est, attribute), est.algorithm))
        if multiway:
            labels = {
                f"input{i} ({binding.display_name})": side
                for i, (binding, side) in enumerate(zip(query.inputs, stats))
            }
        else:
            labels = {"left": stats[0], "right": stats[1]}
        plan = QueryPlan(
            query=query,
            objective=objective,
            estimates=estimates,
            statistics=labels,
            staleness=self._staleness_for(query),
            servers=self._fanout,
        )
        if shared is not None:
            shared.store(key, plan, versions, epoch)
        else:
            if len(self._plan_cache) >= self.PLAN_CACHE_LIMIT:
                self._plan_cache.clear()
            self._plan_cache[key] = (self.catalog.version, plan)
        return plan

    # -- shared helpers ---------------------------------------------------------

    def _staleness_for(self, query: RankJoinQuery) -> "dict[str, int]":
        """Per-input index lag from the catalog's async-maintenance hookup
        (empty when no pipeline is attached or everything is drained).
        The plan prices *applied* state; this annotates how far behind the
        mutation log that state is."""
        lagging: "dict[str, int]" = {}
        for binding in query.inputs:
            staleness = self.catalog.staleness_for(binding.table)
            if staleness is not None and staleness.pending > 0:
                lagging[binding.table] = staleness.pending
        return lagging

    def _ledger(self) -> CostLedger:
        return CostLedger(self.platform.cost_model)

    @property
    def _parallelism(self) -> int:
        model = self.platform.cost_model
        return max(1, model.worker_nodes * model.task_slots_per_node)

    @property
    def _fanout(self) -> int:
        """Region servers the scatter/gather executor can fan out across
        (1 on the default single-server topology = serial RPC rounds)."""
        topology = self.platform.ctx.topology
        return topology.num_servers if topology.parallel else 1

    def _merge_scatter_sides(
        self,
        ledger: CostLedger,
        sides: "tuple[CostLedger, ...]",
        paired_rounds: int,
        fanout: int,
    ) -> None:
        """Fold per-side scratch ledgers priced as concurrent scatter
        streams (the executor's per-server queue model): the slowest side
        is charged in full, every other side keeps only its expected
        same-server queue-collision share ``1/fanout`` of its time (under
        the ``fanout overlap`` component), and each paired round pays the
        cross-server dispatch overhead weighted by the chance the round
        actually spans more than one server.  Counters are absorbed
        unchanged — fan-out hides latency, it does not remove work."""
        model = self.platform.cost_model
        ordered = sorted(sides, key=lambda side: side.time_s, reverse=True)
        ledger.merge(ordered[0])
        collision = 1.0 / fanout
        for other in ordered[1:]:
            ledger.merge(other, time_scale=collision, component="fanout overlap")
        span = min(len(sides), fanout)
        ledger.add_time(
            "fanout dispatch",
            model.fanout_dispatch_s
            * paired_rounds
            * (span - 1)
            * (1.0 - collision),
        )

    def _index_note(self, stats: TableStatistics, kind: str) -> str:
        if stats.index(kind).built:
            return f"{kind} index built for {stats.binding.display_name}"
        return (
            f"{kind} index NOT built for {stats.binding.display_name} "
            "(built on first use, outside the query bill)"
        )

    # -- ISL ---------------------------------------------------------------------

    def _isl_batch_rows(
        self, stats: TableStatistics, instance=None
    ) -> int:
        """One side's scanner batch under ``instance``'s tuning (default:
        the two-way ISL algorithm; the n-way estimator passes the shared
        builder so both paths price the same batch-sizing rule)."""
        from repro.core.isl import MIN_BATCH_ROWS

        if instance is None:
            instance = self.engine.algorithm("isl")
        if instance.batch_rows is not None:
            return instance.batch_rows
        return max(MIN_BATCH_ROWS, int(stats.row_count * instance.batch_fraction))

    def _estimate_isl(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Coordinator HRJN over score-sorted index scans (§4.2, Alg. 4).

        Simulates the alternating batched pulls at histogram granularity:
        after each batch the HRJN threshold is recomputed from the current
        scan depths and the expected number of joined results above it is
        read off the bucket-pair grid.  Costs follow the scanner's metering:
        one RPC per batch, one KV read + sequential disk + CPU per cell.
        """
        ledger = self._ledger()
        sel = _join_selectivity(left, right)
        profiles = (_profile(left), _profile(right))
        batch = (self._isl_batch_rows(left), self._isl_batch_rows(right))

        # the 2-D join profiles expose score-correlated join skew (high
        # scorers joining fewer partners than average), which a uniform
        # selectivity misses — the source of the LC Q1 depth underestimate
        matcher = _JoinMatcher(left, right, profiles)
        consumed, batches = _simulate_hrjn(
            profiles, query.function, query.k, batch, sel, matcher
        )
        cell_bytes = []
        for side, stats in enumerate((left, right)):
            index = stats.index("isl")
            if index.built and index.cells:
                cell_bytes.append(index.avg_cell_bytes)
            else:
                # Cell layout: 8B header + score row key (16 hex chars) +
                # family (signature) + qualifier (base row key) + join value
                cell_bytes.append(
                    8.0
                    + 16.0
                    + len(stats.binding.signature)
                    + stats.avg_row_key_bytes
                    + stats.avg_join_value_bytes
                )

        # no overshoot term: the operator checks termination per tuple
        # while draining a batch, so the scanner never ships beyond the
        # batches the simulation already counts
        fanout = self._fanout
        side_ledgers = (self._ledger(), self._ledger()) if fanout > 1 else None
        for side in (0, 1):
            target = ledger if side_ledgers is None else side_ledgers[side]
            rounds = batches[side]
            tuples = consumed[side]
            scanned_bytes = tuples * cell_bytes[side]
            target.server_read("index scan", scanned_bytes, tuples, sequential=True)
            for _ in range(rounds):
                target.rpc(
                    "batch RPCs",
                    RESPONSE_OVERHEAD_BYTES,
                    RESPONSE_OVERHEAD_BYTES + scanned_bytes / max(1, rounds),
                )

        notes = [
            f"scan depth ≈ {int(consumed[0])}+{int(consumed[1])} tuples in "
            f"{batches[0]}+{batches[1]} batches of {batch[0]}/{batch[1]} rows",
            self._index_note(left, "isl"),
        ]
        if side_ledgers is not None:
            # both cursors' batch pulls go out as one scatter round; the
            # faster side's queue time hides behind the slower side's
            self._merge_scatter_sides(
                ledger, side_ledgers, min(batches[0], batches[1]), fanout
            )
            notes.append(
                f"fan-out: paired batch rounds scattered over {fanout} "
                "region servers"
            )
        return CostEstimate.from_ledger("ISL", ledger, notes)

    # -- BFHM ---------------------------------------------------------------------

    def _bfhm_config_from(
        self, builder, stats: "tuple[TableStatistics, ...]"
    ) -> "tuple[int, int, float]":
        """(num_buckets, m_bits, fp_rate) a BFHM built by ``builder`` over
        ``stats`` would use — built-index facts win, then the builder's
        planned size, then the §7.1 heaviest-bucket formula."""
        from repro.sketches.bloom import single_hash_bit_count

        num_buckets = builder.num_buckets
        fp_rate = builder.fp_rate
        m_bits = builder.m_bits
        for side_stats in stats:
            index = side_stats.index("bfhm")
            if isinstance(index, BFHMIndexStatistics) and index.built:
                return (index.num_buckets, index.m_bits, fp_rate)
        if m_bits is None:
            heaviest = 1
            for side_stats in stats:
                counts = side_stats.bucket_counts()
                heaviest = max(heaviest, max(counts) if counts else 1)
            m_bits = single_hash_bit_count(heaviest, fp_rate)
        return (num_buckets, m_bits, fp_rate)

    def _bfhm_config(
        self, left: TableStatistics, right: TableStatistics
    ) -> "tuple[int, int, float]":
        """(num_buckets, m_bits, fp_rate) the two-way BFHM would use."""
        return self._bfhm_config_from(
            self.engine.algorithm("bfhm").builder, (left, right)
        )

    def _estimate_bfhm(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Two-phase statistical rank join (§5.2–5.3).

        The whole execution loop is re-enacted symbolically against the
        per-bucket score/cardinality profiles (the built index's actual
        blob facts when available, re-projected statistics histograms
        otherwise): phase 1's alternating bucket fetches, phase 2's purge
        and re-admission, and the §5.3 repair rounds — see
        :class:`_BFHMCascadeReplay`.  Every replayed round is priced under
        its own cost component, so EXPLAIN shows the repair cascade's
        incremental bucket and reverse-row traffic line by line.
        """
        ledger = self._ledger()
        sel = _join_selectivity(left, right)
        num_buckets, m_bits, _ = self._bfhm_config(left, right)
        profiles = (
            _bfhm_profile(left, num_buckets),
            _bfhm_profile(right, num_buckets),
        )
        matcher = _JoinMatcher(left, right, profiles)

        sim = _simulate_bfhm(
            profiles, query.function, query.k, m_bits, sel, matcher
        )

        # meta row read: one random point get per relation
        meta_bytes = 60.0 + num_buckets * 2.0
        for _ in (left, right):
            ledger.server_read("meta read", meta_bytes, 3, sequential=False)
            ledger.rpc("meta read", REQUEST_OVERHEAD_BYTES, meta_bytes)

        # per-side pricing facts shared by all rounds
        blobs_by_side = []
        reverse_shape = []
        for stats in (left, right):
            blobs, shape = self._bfhm_side_shape(stats, m_bits)
            blobs_by_side.append(blobs)
            reverse_shape.append(shape)

        # replayed rounds: round 0 is phase 1 + the initial phase 2; every
        # later round charges its incremental §5.3 repair traffic under a
        # per-round component, visible in the EXPLAIN breakdown
        self._price_bfhm_rounds(
            ledger, sim, profiles, blobs_by_side, reverse_shape, m_bits
        )

        notes = [
            f"est. {sim.buckets_fetched} bucket fetches, "
            f"{int(sim.reverse_rows[0] + sim.reverse_rows[1])} reverse rows",
        ]
        if sim.repair_rounds:
            repair_rows = sum(
                entry.reverse_rows[0] + entry.reverse_rows[1]
                for entry in sim.rounds
                if entry.round > 0
            )
            repair_buckets = sum(
                len(entry.fetched[0]) + len(entry.fetched[1])
                for entry in sim.rounds
                if entry.round > 0
            )
            notes.append(
                f"repair cascade: {sim.repair_rounds} rounds re-admitting "
                f"{int(round(sim.readmitted_pairs))} pairs "
                f"(+{repair_buckets} buckets, +{int(round(repair_rows))} "
                "reverse rows)"
            )
        if self._fanout > 1:
            notes.append(
                f"fan-out: reverse multi-gets scattered over up to "
                f"{self._fanout} region servers (bucket pairs co-locate)"
            )
        notes.append(self._index_note(left, "bfhm"))
        return CostEstimate.from_ledger("BFHM", ledger, notes)

    def _price_bfhm_rounds(
        self,
        ledger: CostLedger,
        sim: "_BFHMSimulation",
        profiles: "tuple[_SideProfile, _SideProfile]",
        blobs_by_side: "list[dict]",
        reverse_shape: "list[tuple[float, float]]",
        m_bits: int,
        prefix: str = "",
    ) -> None:
        """Charge one replayed BFHM run's rounds onto ``ledger``.

        ``prefix`` namespaces the cost components (the cascade estimator
        labels each stage ``s1 ``, ``s2 ``, ... so EXPLAIN shows per-stage
        cost lines)."""
        model = self.platform.cost_model
        for entry in sim.rounds:
            if entry.round == 0:
                bucket_label, decode_label, reverse_label = (
                    f"{prefix}bucket fetch", f"{prefix}blob decode",
                    f"{prefix}reverse fetch",
                )
            else:
                bucket_label = decode_label = reverse_label = (
                    f"{prefix}repair r{entry.round}"
                )
            for side in (0, 1):
                profile = profiles[side]
                blobs = blobs_by_side[side]
                for bucket_index in entry.fetched[side]:
                    count = profile.counts[bucket_index]
                    bucket_number = profile.buckets[bucket_index]
                    if bucket_number in blobs:
                        actual_count, blob_bytes = blobs[bucket_number]
                        count = float(actual_count)
                    else:
                        blob_bytes = _golomb_blob_bytes(count, m_bits)
                    ledger.server_read(bucket_label, blob_bytes, 4, sequential=False)
                    ledger.rpc(bucket_label, REQUEST_OVERHEAD_BYTES, blob_bytes)
                    ledger.cpu(decode_label, count, model.blob_decode_cpu_factor)

                # reverse-mapping point reads (multi-gets batched per
                # region).  On multi-server topologies the multi-get
                # scatters per region server, so its queue time divides by
                # the servers it spans; bucket fetches above stay serial —
                # both sides' blob rows share row keys and co-locate.
                rows = entry.reverse_rows[side]
                if not rows:
                    continue
                row_bytes, row_cells = reverse_shape[side]
                total_bytes = rows * row_bytes
                rpcs = min(int(math.ceil(rows)), model.worker_nodes)
                spread = min(self._fanout, rpcs)
                target = ledger if spread <= 1 else CostLedger(model)
                target.server_read_rows(
                    reverse_label, rows, total_bytes, rows * row_cells
                )
                for _ in range(rpcs):
                    target.rpc(
                        reverse_label,
                        REQUEST_OVERHEAD_BYTES,
                        total_bytes / max(1, rpcs),
                    )
                if target is not ledger:
                    ledger.merge(target, time_scale=1.0 / spread)
                    ledger.add_time(
                        f"{prefix}fanout dispatch",
                        model.fanout_dispatch_s * (spread - 1),
                    )

    # -- IJLMR -------------------------------------------------------------------

    def _estimate_ijlmr(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Single MapReduce job over the co-located inverted index (§4.1).

        Mappers scan the *whole* index (that is IJLMR's dollar-cost story),
        form per-join-value Cartesian products, and ship only local top-k
        lists; a sole reducer merges them.
        """
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count

        index_cells = 0.0
        index_bytes = 0.0
        for stats in (left, right):
            index = stats.index("ijlmr")
            if index.built:
                index_cells += index.cells
                index_bytes += index.total_bytes
            else:
                cell = (
                    8.0 + stats.avg_join_value_bytes + len(stats.binding.signature)
                    + stats.avg_row_key_bytes + 8.0
                )
                index_cells += stats.row_count
                index_bytes += stats.row_count * cell

        ledger.add_time("job startup", model.mr_job_startup_s)
        ledger.server_read("index scan", index_bytes, index_cells, sequential=True)
        # undo the serial charge and re-apply it as a parallel map wave:
        # tasks run on the region's node, slots-wide
        wave = (
            model.disk_seq_time(int(index_bytes))
            + model.cpu_time(int(index_cells + join_size))
        ) / self._parallelism
        serial = model.disk_seq_time(int(index_bytes)) + model.cpu_time(int(index_cells))
        ledger.add_time("index scan", wave - serial)
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # local top-k lists to the master (one list per mapper ≈ per worker)
        tuple_bytes = (
            left.avg_row_key_bytes + right.avg_row_key_bytes
            + left.avg_join_value_bytes + 3 * 8.0
        )
        mappers = max(1, model.worker_nodes)
        ledger.network("top-k collect", mappers * query.k * tuple_bytes)
        ledger.cpu("reducer merge", mappers * query.k)

        notes = [
            f"full index scan: {int(index_cells)} cells, "
            f"{int(join_size)} joined pairs",
            self._index_note(left, "ijlmr"),
        ]
        return CostEstimate.from_ledger("IJLMR", ledger, notes)

    # -- MapReduce baselines --------------------------------------------------------

    def _scan_both_tables(
        self, ledger: CostLedger, component: str,
        left: TableStatistics, right: TableStatistics, emitted_per_record: float,
    ) -> None:
        """Price a map wave that scans both base tables in full."""
        model = self.platform.cost_model
        total_bytes = left.total_row_bytes + right.total_row_bytes
        total_cells = left.total_cells + right.total_cells
        records = left.row_count + right.row_count
        ledger.server_read(component, total_bytes, total_cells, sequential=True)
        wave = (
            model.disk_seq_time(int(total_bytes))
            + model.cpu_time(int(records * (1 + emitted_per_record)))
        ) / self._parallelism
        serial = model.disk_seq_time(int(total_bytes)) + model.cpu_time(int(total_cells))
        ledger.add_time(component, wave - serial)
        ledger.add_time("task startup", model.mr_task_startup_s)

    def _estimate_hive(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Hive baseline (§3.1): two full MapReduce jobs plus a fetch stage,
        with **no early projection** — complete rows are shuffled and the
        full join result is materialized to HDFS twice (join + sort)."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count
        joined_row_bytes = left.avg_row_bytes + right.avg_row_bytes

        # job 1: join — full scan, full-row shuffle, join materialized
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "base scan", left, right, 1.0)
        shuffle = (left.total_row_bytes + right.total_row_bytes) * _remote_fraction(
            model.worker_nodes
        )
        ledger.network("shuffle", shuffle)
        ledger.cpu("reduce join", (left.row_count + right.row_count + join_size))
        ledger.network(
            "HDFS write", join_size * joined_row_bytes * (model.hdfs_replication - 1)
        )
        ledger.add_time("task startup", model.mr_task_startup_s)

        # job 2: sort — rescan the join result, shuffle, rewrite sorted
        ledger.add_time("job startup", model.mr_job_startup_s)
        join_bytes = join_size * joined_row_bytes
        ledger.add_time("sort scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("sort scan", join_size / self._parallelism)
        ledger.network("shuffle", join_bytes * _remote_fraction(model.worker_nodes))
        ledger.cpu("reduce sort", join_size)
        ledger.network("HDFS write", join_bytes * (model.hdfs_replication - 1))
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # final non-MR stage: fetch the k best from the sorted file
        ledger.network("fetch stage", query.k * joined_row_bytes)

        notes = [
            f"materializes {int(join_size)} joined rows twice (no projection)",
            "index-free: scans base tables in full",
        ]
        return CostEstimate.from_ledger("HIVE", ledger, notes)

    def _estimate_pig(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """Pig baseline (§3.1): three jobs (join, sampling, top-k) with
        early projection and in-task combiner top-k lists."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        join_size = sel * left.row_count * right.row_count
        # early projection: row key + join value + score survive
        projected_bytes = (
            (left.avg_row_key_bytes + right.avg_row_key_bytes) / 2
            + left.avg_join_value_bytes + 8.0
        )
        joined_projected = (
            left.avg_row_key_bytes + right.avg_row_key_bytes
            + left.avg_join_value_bytes + 2 * 8.0
        )

        # job 1: join with early projection
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "base scan", left, right, 1.0)
        records = left.row_count + right.row_count
        ledger.network(
            "shuffle", records * projected_bytes * _remote_fraction(model.worker_nodes)
        )
        ledger.cpu("reduce join", records + join_size)
        ledger.network(
            "HDFS write", join_size * joined_projected * (model.hdfs_replication - 1)
        )
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        # job 2: sampling for the balanced ORDER BY partitioner
        ledger.add_time("job startup", model.mr_job_startup_s)
        join_bytes = join_size * joined_projected
        ledger.add_time("sample scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("sample scan", join_size / self._parallelism)
        ledger.add_time("task startup", model.mr_task_startup_s)

        # job 3: top-k with combiner lists
        ledger.add_time("job startup", model.mr_job_startup_s)
        ledger.add_time("topk scan", model.disk_seq_time(int(join_bytes)) / self._parallelism)
        ledger.cpu("topk scan", join_size / self._parallelism)
        mappers = max(1, model.worker_nodes)
        ledger.network("topk shuffle", mappers * query.k * joined_projected)
        ledger.cpu("reduce topk", mappers * query.k)
        ledger.add_time("task startup", model.mr_task_startup_s * 2)

        notes = [
            f"early projection keeps shuffle to {int(projected_bytes)} B/record",
            "index-free: scans base tables in full",
        ]
        return CostEstimate.from_ledger("PIG", ledger, notes)

    # -- DRJN ---------------------------------------------------------------------

    def _estimate_drjn(
        self, query: RankJoinQuery, left: TableStatistics, right: TableStatistics
    ) -> CostEstimate:
        """DRJN (§7.1 adaptation): matrix-row gets to estimate the stopping
        score, then per-round map-only pull jobs that scan the base tables
        in full behind a server-side score filter."""
        ledger = self._ledger()
        model = self.platform.cost_model
        sel = _join_selectivity(left, right)
        instance = self.engine.algorithm("drjn")
        num_partitions = instance.num_join_partitions
        num_score_buckets = instance.num_score_buckets

        # walk matrix rows (one per score bucket, both relations) until the
        # estimated join cardinality covers k
        left_counts = _rebucket(_profile(left), num_score_buckets)
        right_counts = _rebucket(_profile(right), num_score_buckets)
        cum_l = cum_r = 0.0
        rows_fetched = 0
        boundary_bucket = num_score_buckets - 1
        for b in range(num_score_buckets):
            cum_l += left_counts[b]
            cum_r += right_counts[b]
            rows_fetched += 2
            if sel * cum_l * cum_r >= query.k and cum_l and cum_r:
                boundary_bucket = b
                break
        row_bytes = num_partitions * (8.0 + 20.0)
        for _ in range(rows_fetched):
            ledger.server_read("matrix fetch", row_bytes, num_partitions,
                               sequential=False)
            ledger.rpc("matrix fetch", REQUEST_OVERHEAD_BYTES, row_bytes)

        # one pull round: map-only job scanning both base tables with the
        # score-band filter, writing survivors to a temp table (no WAL)
        ledger.add_time("job startup", model.mr_job_startup_s)
        self._scan_both_tables(ledger, "pull scan", left, right, 0.2)
        pulled = cum_l + cum_r
        pulled_bytes = pulled * (
            left.avg_row_key_bytes + left.avg_join_value_bytes + 16.0
        )
        ledger.network("temp write", pulled_bytes)

        # coordinator scans the temp table and joins
        ledger.server_read("temp scan", pulled_bytes, pulled, sequential=True)
        batches = max(1, int(math.ceil(pulled / 100.0)))
        for _ in range(batches):
            ledger.rpc(
                "temp scan",
                RESPONSE_OVERHEAD_BYTES,
                RESPONSE_OVERHEAD_BYTES + pulled_bytes / batches,
            )
        ledger.cpu("coordinator join", pulled + sel * cum_l * cum_r)

        notes = [
            f"{rows_fetched} matrix rows to bucket {boundary_bucket}, "
            f"then pulls ≈ {int(pulled)} tuples via full scans",
            self._index_note(left, "drjn"),
        ]
        return CostEstimate.from_ledger("DRJN", ledger, notes)

    # -- n-way strategies (arity >= 3) -------------------------------------------

    #: bucket resolution of the n-dimensional HRJN depth simulation — the
    #: expected-results integral enumerates bucket combinations, so the
    #: grid is coarsened to keep the sweep polynomial at any arity
    MULTIWAY_SIM_BUCKETS = 20

    def _multi_selectivity(self, stats: "list[TableStatistics]") -> float:
        """P(n random tuples share one join value) under uniform keys."""
        universe = max(max(s.distinct_join_values for s in stats), 1)
        return (1.0 / universe) ** (len(stats) - 1)

    def _estimate_multi_isl(
        self, query: RankJoinQuery, stats: "list[TableStatistics]"
    ) -> CostEstimate:
        """N-way ISL: round-robin batched index scans feeding the n-way
        HRJN operator (§3 applied to §4.2) — the 2-way depth simulation
        generalized to n alternating cursors."""
        ledger = self._ledger()
        sel = self._multi_selectivity(stats)
        profiles = [
            _reproject_profile(_profile(s), self.MULTIWAY_SIM_BUCKETS)
            for s in stats
        ]
        builder = self.engine.multiway_algorithm("isl")._builder
        batch = [self._isl_batch_rows(s, builder) for s in stats]

        consumed, batches = _simulate_hrjn_n(
            profiles, query.function, query.k, batch, sel
        )
        fanout = self._fanout
        side_ledgers = (
            tuple(self._ledger() for _ in stats) if fanout > 1 else None
        )
        for side, side_stats in enumerate(stats):
            target = ledger if side_ledgers is None else side_ledgers[side]
            index = side_stats.index("isl")
            if index.built and index.cells:
                cell_bytes = index.avg_cell_bytes
            else:
                cell_bytes = (
                    8.0 + 16.0 + len(side_stats.binding.signature)
                    + side_stats.avg_row_key_bytes
                    + side_stats.avg_join_value_bytes
                )
            rounds = batches[side]
            tuples = consumed[side]
            scanned_bytes = tuples * cell_bytes
            target.server_read("index scan", scanned_bytes, tuples, sequential=True)
            for _ in range(rounds):
                target.rpc(
                    "batch RPCs",
                    RESPONSE_OVERHEAD_BYTES,
                    RESPONSE_OVERHEAD_BYTES + scanned_bytes / max(1, rounds),
                )
        if side_ledgers is not None:
            self._merge_scatter_sides(ledger, side_ledgers, min(batches), fanout)

        notes = [
            "scan depth ≈ "
            + "+".join(str(int(value)) for value in consumed)
            + " tuples in "
            + "+".join(str(value) for value in batches)
            + " batches",
            self._index_note(stats[0], "isl"),
        ]
        if side_ledgers is not None:
            notes.append(
                f"fan-out: batch rounds scattered over {fanout} region servers"
            )
        return CostEstimate.from_ledger("ISL", ledger, notes)

    def _estimate_multi_hrjn(
        self, query: RankJoinQuery, stats: "list[TableStatistics]"
    ) -> CostEstimate:
        """Index-free n-way HRJN pipeline: stream every base relation to
        the coordinator (batched scans), sort, join in memory."""
        from repro.core.hrjn_multi import MultiWayHRJNRankJoin

        ledger = self._ledger()
        caching = MultiWayHRJNRankJoin.SCAN_CACHING
        total_rows = 0.0
        for side_stats in stats:
            ledger.server_read(
                "base scan", side_stats.total_row_bytes,
                side_stats.total_cells, sequential=True,
            )
            rounds = max(1, int(math.ceil(side_stats.row_count / caching)))
            for _ in range(rounds):
                ledger.rpc(
                    "scan RPCs",
                    RESPONSE_OVERHEAD_BYTES,
                    RESPONSE_OVERHEAD_BYTES
                    + side_stats.total_row_bytes / rounds,
                )
            total_rows += side_stats.row_count
        ledger.cpu("coordinator sort", total_rows)

        notes = [
            f"index-free: streams {int(total_rows)} rows of "
            f"{len(stats)} relations to the coordinator"
        ]
        return CostEstimate.from_ledger("HRJN", ledger, notes)

    def _bfhm_config_multi(
        self, stats: "list[TableStatistics]"
    ) -> "tuple[int, int, float]":
        """(num_buckets, m_bits, fp_rate) the cascade's stages would use."""
        return self._bfhm_config_from(
            self.engine.multiway_algorithm("bfhm")._binary.builder,
            tuple(stats),
        )

    def _bfhm_side_shape(
        self, side_stats: "TableStatistics", m_bits: int
    ) -> "tuple[dict, tuple[float, float]]":
        """(blob facts, reverse-row shape) of one indexed base relation —
        the per-side pricing facts of :meth:`_price_bfhm_rounds`."""
        index = side_stats.index("bfhm")
        blobs = (
            index.bucket_blobs
            if isinstance(index, BFHMIndexStatistics) and index.built
            else {}
        )
        if (
            isinstance(index, BFHMIndexStatistics)
            and index.built
            and index.reverse_rows
        ):
            shape = (index.avg_reverse_row_bytes, index.avg_reverse_row_cells)
        else:
            row_cells = max(1.0, side_stats.row_count / max(1, m_bits))
            shape = (
                row_cells * (
                    8.0 + 16.0 + len(side_stats.binding.signature)
                    + side_stats.avg_row_key_bytes
                    + side_stats.avg_join_value_bytes + 8.0
                ),
                row_cells,
            )
        return blobs, shape

    def _estimate_multi_bfhm(
        self, query: RankJoinQuery, stats: "list[TableStatistics]"
    ) -> CostEstimate:
        """Left-deep BFHM cascade: one binary cascade replay per stage,
        feeding each stage's expected top-k' forward as an estimated
        intermediate profile.  Every stage's traffic lands under ``sN``
        cost components, so EXPLAIN shows the cascade stage by stage."""
        from repro.core.bfhm.multi import stage_functions

        ledger = self._ledger()
        model = self.platform.cost_model
        stages = stage_functions(query.function, query.arity)
        num_buckets, m_bits, _ = self._bfhm_config_multi(stats)
        k = query.k

        left_profile = _bfhm_profile(stats[0], num_buckets)
        left_shape: "tuple[dict, tuple[float, float]]" = self._bfhm_side_shape(
            stats[0], m_bits
        )
        d_left = stats[0].distinct_join_values
        intermediate_key_bytes = stats[0].avg_row_key_bytes
        stage_notes = []

        for stage, (function, upper) in enumerate(stages):
            prefix = f"s{stage + 1} "
            right_stats = stats[stage + 1]
            right_profile = _bfhm_profile(right_stats, num_buckets)
            profiles = (left_profile, right_profile)
            matcher = (
                _JoinMatcher(stats[0], right_stats, profiles)
                if stage == 0
                else None
            )
            sel = 1.0 / max(d_left, right_stats.distinct_join_values, 1)

            # meta row reads of the stage's two sides
            meta_bytes = 60.0 + num_buckets * 2.0
            for _ in range(2):
                ledger.server_read(f"{prefix}meta read", meta_bytes, 3,
                                   sequential=False)
                ledger.rpc(f"{prefix}meta read", REQUEST_OVERHEAD_BYTES,
                           meta_bytes)

            replay = _BFHMCascadeReplay(
                profiles, function, k, m_bits, sel, matcher
            )
            sim = replay.run()
            right_shape = self._bfhm_side_shape(right_stats, m_bits)
            blobs_by_side = [left_shape[0], right_shape[0]]
            reverse_shape = [left_shape[1], right_shape[1]]
            self._price_bfhm_rounds(
                ledger, sim, profiles, blobs_by_side, reverse_shape, m_bits,
                prefix=prefix,
            )

            expected_results = sum(pair.true_weight for pair in replay.pairs)
            stage_notes.append(
                f"s{stage + 1}: {sim.buckets_fetched} buckets, "
                f"{int(sim.reverse_rows[0] + sim.reverse_rows[1])} reverse "
                f"rows, ≈{int(expected_results)} results"
            )

            if stage == len(stages) - 1:
                break

            # materialize the expected intermediate top-k' and build its
            # BFHM — billed to the query, unlike base index builds
            intermediate_key_bytes += 1.0 + right_stats.avg_row_key_bytes
            n_int = min(float(k), max(expected_results, 1.0))
            norm = upper if upper > 0 else 1.0
            left_profile = _intermediate_profile(
                replay.pairs, k, norm, num_buckets
            )
            row_bytes = (
                8.0 + intermediate_key_bytes
                + right_stats.avg_join_value_bytes + 8.0
            )
            payload = n_int * row_bytes
            build_prefix = f"s{stage + 2} "
            ledger.network(
                f"{build_prefix}temp write", payload * model.hdfs_replication
            )
            ledger.add_time(f"{build_prefix}temp write", model.rpc_latency_s)
            # index build: one map/reduce pass over the temp relation plus
            # the blob + reverse rows it writes back
            ledger.add_time(
                f"{build_prefix}index build",
                model.mr_job_startup_s + model.mr_task_startup_s,
            )
            ledger.server_read(
                f"{build_prefix}index build", payload, n_int, sequential=True
            )
            blob_count = max(1, len(left_profile.counts))
            index_bytes = (
                payload
                + blob_count * _golomb_blob_bytes(
                    n_int / blob_count, m_bits
                )
            )
            ledger.network(
                f"{build_prefix}index build",
                index_bytes * model.hdfs_replication,
            )
            row_cells = max(1.0, n_int / max(1, m_bits))
            left_shape = (
                {},
                (
                    row_cells * (8.0 + 16.0 + 24.0 + intermediate_key_bytes
                                 + right_stats.avg_join_value_bytes + 8.0),
                    row_cells,
                ),
            )
            d_left = int(min(
                max(d_left, 1),
                max(right_stats.distinct_join_values, 1),
                max(n_int, 1.0),
            ))

        notes = [
            f"left-deep cascade, {len(stages)} binary stages",
            *stage_notes,
            self._index_note(stats[0], "bfhm"),
        ]
        return CostEstimate.from_ledger("BFHM-cascade", ledger, notes)


# ---------------------------------------------------------------------------
# analytic simulations
# ---------------------------------------------------------------------------


def _simulate_hrjn(
    profiles: "tuple[_SideProfile, _SideProfile]",
    function: AggregateFunction,
    k: int,
    batch: "tuple[int, int]",
    selectivity: float,
    matcher: "_JoinMatcher | None" = None,
) -> "tuple[list[float], list[int]]":
    """Expected HRJN scan depth under alternating batched pulls.

    Returns ``(tuples consumed per side, batches per side)`` at the point
    the threshold test is expected to fire.  When a :class:`_JoinMatcher`
    is given, per-bucket-pair join expectations replace the uniform
    ``selectivity`` constant, so score-correlated join skew deepens (or
    shallows) the simulated scan exactly as it does the real one.
    """
    consumed = [0.0, 0.0]
    batches = [0, 0]
    totals = [profiles[0].total, profiles[1].total]
    if not totals[0] or not totals[1]:
        return consumed, batches

    def current_score(side: int) -> float:
        return profiles[side].score_at_depth(consumed[side])

    def seen_counts(side: int) -> "list[float]":
        return profiles[side].seen_at_depth(consumed[side])

    def results_above(threshold: float) -> float:
        """Expected joined results among seen tuples scoring >= threshold.

        Each seen bucket pair contributes its expected matches times the
        fraction of the pair's seen score span above the threshold — an
        all-or-nothing midpoint gate makes the expectation jump in coarse
        steps (staying exactly 0 for whole rounds at k=1), while the real
        operator's realized results arrive continuously."""
        seen_l = seen_counts(0)
        seen_r = seen_counts(1)
        if not seen_l or not seen_r:
            return 0.0
        total = 0.0
        left_profile, right_profile = profiles
        for i in range(len(seen_l)):
            if not seen_l[i]:
                continue
            hi_l = left_profile.maxes[i]
            if function(hi_l, right_profile.top_score) < threshold:
                break  # deeper left buckets score even lower
            frac_l = seen_l[i] / left_profile.counts[i]
            # the seen portion of a frontier bucket occupies its upper
            # score range: [hi - frac * width, hi]
            lo_l = hi_l - frac_l * (hi_l - left_profile.mins[i])
            for j in range(len(seen_r)):
                if not seen_r[j]:
                    continue
                hi_r = right_profile.maxes[j]
                hi = function(hi_l, hi_r)
                if hi < threshold:
                    break  # descending scores: later right buckets fail too
                frac_r = seen_r[j] / right_profile.counts[j]
                lo = function(
                    lo_l, hi_r - frac_r * (hi_r - right_profile.mins[j])
                )
                if lo >= threshold or hi <= lo:
                    above = 1.0
                else:
                    above = (hi - threshold) / (hi - lo)
                matched = matcher(i, j) if matcher is not None else None
                if matched is None:
                    matches = selectivity * seen_l[i] * seen_r[j]
                else:
                    # scale the full-bucket expectation by the fraction of
                    # each bucket actually seen at this scan depth
                    matches = matched[0] * frac_l * frac_r
                total += matches * above
        return total

    # execution branches on the REALIZED count of results above the
    # threshold reaching k; the replay tracks its expectation, whose
    # realized counterpart (Poisson-like) has median ≈ mean - 1/3, and the
    # expectation model itself runs ~1% of k low — so termination is where
    # the (bias-corrected) mean crosses k, not the raw mean
    target = max(
        k * (1.0 - HRJN_RESULTS_BIAS) - HRJN_MEDIAN_CORRECTION, 1e-9
    )
    side = 0
    while True:
        exhausted = [consumed[s] >= totals[s] for s in (0, 1)]
        if all(exhausted):
            break
        if exhausted[side]:
            side = 1 - side
        consumed[side] = min(totals[side], consumed[side] + batch[side])
        batches[side] += 1
        threshold = max(
            function(profiles[0].top_score, current_score(1)),
            function(current_score(0), profiles[1].top_score),
        )
        if results_above(threshold) >= target:
            break
        side = 1 - side
    return consumed, batches


def _simulate_hrjn_n(
    profiles: "list[_SideProfile]",
    function: AggregateFunction,
    k: int,
    batch: "list[int]",
    selectivity: float,
) -> "tuple[list[float], list[int]]":
    """Expected n-way HRJN scan depth under round-robin batched pulls.

    The 2-way simulation generalized: after each batch the generalized
    threshold ``S = max_i f(ŝ_1, ..., s̄_i, ..., ŝ_n)`` is recomputed and
    the expected number of joined combinations above it is read off the
    bucket grids (monotone pruning keeps the enumeration shallow).
    """
    n = len(profiles)
    consumed = [0.0] * n
    batches = [0] * n
    totals = [profile.total for profile in profiles]
    if any(total == 0 for total in totals):
        return consumed, batches

    def current_score(side: int) -> float:
        return profiles[side].score_at_depth(consumed[side])

    def seen_counts(side: int) -> "list[float]":
        return profiles[side].seen_at_depth(consumed[side])

    tops = [profile.top_score for profile in profiles]

    def results_above(threshold: float) -> float:
        """Expected joined combinations among seen tuples above the
        threshold — the 2-way span-smeared model in n dimensions: each
        bucket combination contributes the fraction of its seen score
        span above the threshold, not an all-or-nothing midpoint gate."""
        seen = [seen_counts(side) for side in range(n)]
        if any(not side_seen for side_seen in seen):
            return 0.0
        total = 0.0

        def recurse(
            side: int, his: "list[float]", los: "list[float]", product: float
        ) -> None:
            nonlocal total
            profile = profiles[side]
            for index in range(len(seen[side])):
                count = seen[side][index]
                if not count:
                    continue
                hi_b = profile.maxes[index]
                # buckets descend in score: once even completing with every
                # remaining side's top cannot reach the threshold, stop
                if function(*his, hi_b, *tops[side + 1:]) < threshold:
                    break
                fraction = count / profile.counts[index]
                lo_b = hi_b - fraction * (hi_b - profile.mins[index])
                if side == n - 1:
                    hi = function(*his, hi_b)
                    lo = function(*los, lo_b)
                    if lo >= threshold or hi <= lo:
                        above = 1.0
                    else:
                        above = (hi - threshold) / (hi - lo)
                    total += product * count * above
                else:
                    recurse(side + 1, his + [hi_b], los + [lo_b],
                            product * count)

        recurse(0, [], [], 1.0)
        return total * selectivity

    # same realization-corrected target as the 2-way replay
    target = max(
        k * (1.0 - HRJN_RESULTS_BIAS) - HRJN_MEDIAN_CORRECTION, 1e-9
    )
    side = 0
    while True:
        exhausted = [consumed[s] >= totals[s] for s in range(n)]
        if all(exhausted):
            break
        while exhausted[side]:
            side = (side + 1) % n
        consumed[side] = min(totals[side], consumed[side] + batch[side])
        batches[side] += 1
        threshold = max(
            function(*[
                current_score(s) if s == i else tops[s] for s in range(n)
            ])
            for i in range(n)
        )
        if results_above(threshold) >= target:
            break
        side = (side + 1) % n
    return consumed, batches


def _intermediate_profile(
    pairs: "list[_SimPair]", k: int, norm: float, num_buckets: int
) -> _SideProfile:
    """Expected score profile of a cascade stage's materialized top-k'.

    Takes the replay's bucket-pair join expectations highest-score first
    until ``k`` expected tuples accumulate, smearing each pair's mass
    uniformly over its attainable score span, normalized by ``norm`` onto
    the index's [0, 1] bucket grid.
    """
    ordered = sorted(pairs, key=lambda pair: -pair.max_score)
    cells: "dict[int, list[float]]" = {}
    remaining = float(k)
    for pair in ordered:
        if remaining <= 0:
            break
        weight = min(pair.true_weight, remaining)
        if weight <= 0:
            continue
        remaining -= weight
        lo = max(0.0, min(1.0, pair.min_score / norm))
        hi = max(lo, min(1.0, pair.max_score / norm))
        first = score_to_bucket(hi, num_buckets)
        last = score_to_bucket(lo, num_buckets)
        span = max(1, last - first + 1)
        for bucket in range(first, last + 1):
            lower, upper = bucket_bounds(bucket, num_buckets)
            cell = cells.setdefault(
                bucket, [0.0, float("inf"), float("-inf")]
            )
            cell[0] += weight / span
            cell[1] = min(cell[1], max(lo, lower))
            cell[2] = max(cell[2], min(hi, upper))
    buckets = sorted(cells)
    return _SideProfile(
        buckets=buckets,
        counts=[cells[b][0] for b in buckets],
        mins=[cells[b][1] for b in buckets],
        maxes=[cells[b][2] for b in buckets],
        num_buckets=num_buckets,
        total=sum(cells[b][0] for b in buckets),
    )


@dataclass
class _SimPair:
    """One estimated bucket-pair join of the symbolic replay (in
    expectation what one :class:`EstimatedResult` is in execution)."""

    weight: float       # expected estimated tuples (incl. false positives)
    true_weight: float  # expected actual join results
    min_score: float
    max_score: float
    common: float       # expected common bit positions
    left_index: int
    right_index: int


@dataclass
class _SimRepairRound:
    """One replayed cascade round (round 0 = initial phase 1 + phase 2)."""

    round: int
    #: profile indexes of buckets fetched during this round, per side
    fetched: "tuple[list[int], list[int]]"
    #: incremental reverse rows the cache fetches this round, per side
    reverse_rows: "tuple[float, float]"
    #: estimated pairs re-admitted past the purge bound this round
    readmitted: float
    #: expected exact results after the round's phase 2
    actual_results: float


@dataclass
class _BFHMSimulation:
    """Outcome of the symbolic phase-1 / phase-2 / §5.3 re-enactment."""

    fetched: "tuple[list[int], list[int]]"
    buckets_fetched: int
    reverse_rows: "tuple[float, float]"
    rounds: "list[_SimRepairRound]"
    purge_bound: "float | None"

    @property
    def repair_rounds(self) -> int:
        return max(0, len(self.rounds) - 1)

    @property
    def readmitted_pairs(self) -> float:
        return sum(entry.readmitted for entry in self.rounds)


class _BFHMCascadeReplay:
    """Symbolic re-enactment of the complete BFHM execution loop.

    Mirrors :meth:`repro.core.bfhm.algorithm.BFHMRankJoin._run` with
    expectations in place of filters, step for step:

    * **phase 1** — alternating bucket fetches joined via expected filter
      intersections, gated by the CONSERVATIVE termination test;
    * **phase 2** — the §5.2 purge at the k-th estimated min-score, then
      the re-admission loop: excluded pairs whose max score could still
      beat the k-th *actual* result rejoin the candidate set;
    * **§5.3 repair rounds** — while some unfetched bucket could beat the
      k-th actual score, the violating sides are force-advanced; while
      fewer than k results exist, estimation resumes at ``k + (k - k')``
      (forcing *both* sides when estimation thinks it is done);
    * **reverse-mapping cache** — rows are fetched at most once, so each
      round contributes only its incremental reverse-row traffic.

    Each bucket pair contributes its expected intersection: the real
    estimator appends a result per *intersecting* pair and counts
    ``max(1, round(cardinality))`` estimated tuples for it; in expectation
    that is ``P(intersect) * max(1, E[card | intersect])``, which
    ``max(P(intersect), E[card])`` approximates from expectations alone
    (they agree in both the sparse and the dense regime).
    """

    #: hard stop for the symbolic loop — execution converges on the finite
    #: bucket set, but fractional expectations could plateau just below k
    MAX_ROUNDS = 32

    def __init__(
        self,
        profiles: "tuple[_SideProfile, _SideProfile]",
        function: AggregateFunction,
        k: int,
        m_bits: int,
        selectivity: float,
        matcher: "_JoinMatcher | None" = None,
    ) -> None:
        self.profiles = profiles
        self.function = function
        self.k = k
        self.m_bits = m_bits
        self.selectivity = selectivity
        self.matcher = matcher
        self.nxt = [0, 0]
        self.fetched: "tuple[list[int], list[int]]" = ([], [])
        self.pairs: "list[_SimPair]" = []
        self.total_weight = 0.0
        #: replayed reverse-mapping cache: bucket index -> rows fetched
        self._rows_cached: "tuple[dict[int, float], dict[int, float]]" = ({}, {})

    # -- phase 1 (Algorithms 6/7 in expectation) ---------------------------

    def _pair(self, left_index: int, right_index: int) -> "_SimPair | None":
        c_l = self.profiles[0].counts[left_index]
        c_r = self.profiles[1].counts[right_index]
        matched = self.matcher(left_index, right_index) if self.matcher else None
        if matched is None:
            # uniform fallback: every tuple pair joins with P = selectivity
            pair_matches = self.selectivity * c_l * c_r
            shared_values = pair_matches
        else:
            pair_matches, shared_values = matched
        pair_matches = min(pair_matches, c_l * c_r)
        # the filters hash distinct join values (duplicates set the same
        # bit), so false-positive overlap scales with distincts, not counts
        d_l = d_r = None
        if self.matcher is not None:
            d_l = self.matcher.bucket_distinct(0, left_index)
            d_r = self.matcher.bucket_distinct(1, right_index)
        d_l = c_l if d_l is None else min(d_l, c_l)
        d_r = c_r if d_r is None else min(d_r, c_r)
        # distinct shared join values are what both filters set bits for
        true_common = min(shared_values, d_l, d_r)
        p_l = 1.0 - math.exp(-d_l / self.m_bits)
        p_r = 1.0 - math.exp(-d_r / self.m_bits)
        fp_common = max(0.0, self.m_bits * p_l * p_r - true_common)
        common = true_common + fp_common
        if common < 1e-6:
            return None
        p_intersect = 1.0 - math.exp(-common)
        weight = max(p_intersect, pair_matches + fp_common)
        return _SimPair(
            weight=weight,
            true_weight=pair_matches,
            min_score=self.function(
                self.profiles[0].mins[left_index], self.profiles[1].mins[right_index]
            ),
            max_score=self.function(
                self.profiles[0].maxes[left_index], self.profiles[1].maxes[right_index]
            ),
            common=common,
            left_index=left_index,
            right_index=right_index,
        )

    def side_exhausted(self, side: int) -> bool:
        return self.nxt[side] >= len(self.profiles[side].counts)

    def advance(self, side: int) -> bool:
        """Fetch + join one bucket from ``side``; False if exhausted."""
        if self.side_exhausted(side):
            return False
        index = self.nxt[side]
        self.nxt[side] += 1
        self.fetched[side].append(index)
        for other_index in self.fetched[1 - side]:
            left_index = index if side == 0 else other_index
            right_index = other_index if side == 0 else index
            pair = self._pair(left_index, right_index)
            if pair is None:
                continue
            self.pairs.append(pair)
            self.total_weight += pair.weight
        return True

    def kth_bound(self, k: "float | None" = None) -> "float | None":
        """CONSERVATIVE bound: k-th estimated tuple by min score.

        Defaults to the query's k (the §5.2 purge bound); repair rounds
        pass their expanded ``k + (k - k')`` rank, exactly as the real
        estimator's termination test does.
        """
        if k is None:
            k = self.k
        ordered = sorted(self.pairs, key=lambda pair: -pair.min_score)
        accumulated = 0.0
        for pair in ordered:
            accumulated += pair.weight
            if accumulated >= k:
                return pair.min_score
        return None

    def unexamined_best(self, side: int) -> "float | None":
        if self.side_exhausted(side):
            return None
        other = self.profiles[1 - side]
        if not other.counts:
            return None
        mine = self.profiles[side].upper_boundary(self.nxt[side])
        theirs = other.upper_boundary(0)
        return self.function(mine, theirs) if side == 0 else self.function(theirs, mine)

    def _should_terminate(self, k: float) -> bool:
        if self.total_weight < k:
            return False
        bound = self.kth_bound(k)
        if bound is None:
            return False
        for side in (0, 1):
            best = self.unexamined_best(side)
            if best is not None and best > bound + 1e-12:
                return False
        return True

    def run_until(self, k: float) -> None:
        side = 0
        while not self._should_terminate(k):
            if self.side_exhausted(0) and self.side_exhausted(1):
                break
            if self.side_exhausted(side):
                side = 1 - side
            self.advance(side)
            side = 1 - side

    # -- phase 2 (purge + re-admission, in expectation) --------------------

    def _true_count(self, included: "set[int]") -> float:
        return sum(self.pairs[index].true_weight for index in included)

    #: shortfall tolerance of the k-reached test, in Poisson standard
    #: deviations: execution branches on the *realized* count, the replay
    #: on its expectation — a hard ``>= k`` cliffs into wholesale
    #: re-admission on a fractional shortfall a real run would rarely see,
    #: while a full sigma of slack misses the genuine shortfalls that do
    #: trigger the cascade (calibrated on the Fig. 7/8 repair cells, where
    #: executions reach k at z >= -0.75 and fall short at z <= -0.94)
    REACHED_K_SLACK_SIGMA = 0.85

    def _reached_k(self, n_actual: float, k: int) -> bool:
        """Did the run (probably) materialize k results?"""
        slack = self.REACHED_K_SLACK_SIGMA * math.sqrt(max(n_actual, 1.0))
        return n_actual - k >= -slack

    def _kth_effective(self, n_actual: float, k: int) -> float:
        """Rank to solve the k-th actual score at — capped by the expected
        count so a near-k expectation yields the bottom-of-set score the
        execution would gate on, not a None."""
        return min(float(k), n_actual)

    def _kth_actual(self, included: "set[int]", k: float) -> "float | None":
        """Solve for the score t with k expected true results above it
        among the included pairs.

        Each pair's expected true matches are smeared uniformly over the
        pair's attainable score range — bucket midpoints would
        systematically overestimate under skewed score distributions.
        """
        spans = [
            (self.pairs[i].min_score, self.pairs[i].max_score, self.pairs[i].true_weight)
            for i in included
            if self.pairs[i].true_weight > 0
        ]
        if not spans:
            return None

        def above(t: float) -> float:
            total = 0.0
            for lo, hi, weight in spans:
                if hi <= t:
                    continue
                if lo >= t or hi == lo:
                    total += weight
                else:
                    total += weight * (hi - t) / (hi - lo)
            return total

        if above(0.0) < k:
            return None
        lo_t, hi_t = 0.0, max(hi for _, hi, _ in spans)
        for _ in range(40):
            mid_t = (lo_t + hi_t) / 2
            if above(mid_t) >= k:
                lo_t = mid_t
            else:
                hi_t = mid_t
        return lo_t

    def phase2(self, k: int) -> "tuple[set[int], float | None, float]":
        """Replay one full phase-2 pass: (included pairs, purge bound,
        pairs re-admitted past the bound)."""
        bound = self.kth_bound()
        if bound is None:
            included = set(range(len(self.pairs)))
        else:
            included = {
                index
                for index, pair in enumerate(self.pairs)
                if pair.max_score >= bound - 1e-12
            }
        readmitted = 0.0
        while True:
            excluded = set(range(len(self.pairs))) - included
            if not excluded:
                break
            n_actual = self._true_count(included)
            if self._reached_k(n_actual, k):
                kth = self._kth_actual(
                    included, self._kth_effective(n_actual, k)
                )
                extra = {
                    index
                    for index in excluded
                    if kth is None or self.pairs[index].max_score >= kth - 1e-12
                }
            else:
                extra = excluded  # not enough results: nothing may be purged
            if not extra:
                break
            included |= extra
            readmitted += len(extra)
        return included, bound, readmitted

    def commit_reverse_rows(self, included: "set[int]") -> "tuple[float, float]":
        """Incremental reverse rows the cache fetches for ``included``.

        Positions are counted per bucket against the *union* of its
        partner buckets (a value matching several partners still occupies
        one position and one reverse row), capped by the bucket's distinct
        join values; rows fetched by earlier rounds are never re-fetched.
        """
        delta = [0.0, 0.0]
        for side in (0, 1):
            # this side's included buckets with their partner buckets
            partners: "dict[int, list[int]]" = {}
            pair_common: "dict[int, float]" = {}
            for index in included:
                pair = self.pairs[index]
                mine = pair.left_index if side == 0 else pair.right_index
                other = pair.right_index if side == 0 else pair.left_index
                partners.setdefault(mine, []).append(other)
                pair_common[mine] = pair_common.get(mine, 0.0) + pair.common
            cached = self._rows_cached[side]
            for index, partner_list in partners.items():
                cap = self.profiles[side].counts[index]
                joined = (
                    self.matcher.union_join(side, index, partner_list)
                    if self.matcher is not None
                    else None
                )
                if joined is None:
                    # fallback: per-pair commons summed (over-counts values
                    # matched by several partners)
                    positions = pair_common[index]
                else:
                    shared, union_total = joined
                    d_mine = self.matcher.bucket_distinct(side, index)
                    d_mine = cap if d_mine is None else min(d_mine, cap)
                    cap = min(cap, d_mine)
                    p_mine = 1.0 - math.exp(-d_mine / self.m_bits)
                    p_union = 1.0 - math.exp(-union_total / self.m_bits)
                    false_positions = max(
                        0.0, self.m_bits * p_mine * p_union - shared
                    )
                    positions = shared + false_positions
                target = min(positions, cap)
                have = cached.get(index, 0.0)
                if target > have:
                    delta[side] += target - have
                    cached[index] = target
        return (delta[0], delta[1])

    # -- the full loop (BFHMRankJoin._run in expectation) ------------------

    def run(self) -> _BFHMSimulation:
        k = self.k
        rounds: "list[_SimRepairRound]" = []
        fetch_mark = [0, 0]

        def new_fetches() -> "tuple[list[int], list[int]]":
            out: "tuple[list[int], list[int]]" = ([], [])
            for side in (0, 1):
                out[side].extend(self.fetched[side][fetch_mark[side]:])
                fetch_mark[side] = len(self.fetched[side])
            return out

        self.run_until(k)
        included, purge_bound, readmitted = self.phase2(k)
        n_actual = self._true_count(included)
        rounds.append(_SimRepairRound(
            round=0,
            fetched=new_fetches(),
            reverse_rows=self.commit_reverse_rows(included),
            readmitted=readmitted,
            actual_results=n_actual,
        ))

        while len(rounds) - 1 < self.MAX_ROUNDS:
            if self._reached_k(n_actual, k):
                kth = self._kth_actual(
                    included, self._kth_effective(n_actual, k)
                )
                violating = [
                    side
                    for side in (0, 1)
                    if kth is not None
                    and (best := self.unexamined_best(side)) is not None
                    and best > kth + 1e-12
                ]
                if not violating:
                    break
                progressed = False
                for side in violating:
                    progressed = self.advance(side) or progressed
                if not progressed:
                    break
            else:
                if self.side_exhausted(0) and self.side_exhausted(1):
                    break
                before = len(self.fetched[0]) + len(self.fetched[1])
                self.run_until(k + (k - n_actual))
                if len(self.fetched[0]) + len(self.fetched[1]) == before:
                    # estimation thinks it is done; force both sides, as
                    # the execution loop does
                    progressed = self.advance(0)
                    progressed = self.advance(1) or progressed
                    if not progressed:
                        break
            included, _, readmitted = self.phase2(k)
            n_actual = self._true_count(included)
            rounds.append(_SimRepairRound(
                round=len(rounds),
                fetched=new_fetches(),
                reverse_rows=self.commit_reverse_rows(included),
                readmitted=readmitted,
                actual_results=n_actual,
            ))

        return _BFHMSimulation(
            fetched=self.fetched,
            buckets_fetched=len(self.fetched[0]) + len(self.fetched[1]),
            reverse_rows=(
                sum(entry.reverse_rows[0] for entry in rounds),
                sum(entry.reverse_rows[1] for entry in rounds),
            ),
            rounds=rounds,
            purge_bound=purge_bound,
        )


def _simulate_bfhm(
    profiles: "tuple[_SideProfile, _SideProfile]",
    function: AggregateFunction,
    k: int,
    m_bits: int,
    selectivity: float,
    matcher: "_JoinMatcher | None" = None,
) -> _BFHMSimulation:
    """Expected bucket fetches, reverse-row reads, and §5.3 repair rounds
    of a BFHM run (see :class:`_BFHMCascadeReplay`)."""
    return _BFHMCascadeReplay(
        profiles, function, k, m_bits, selectivity, matcher
    ).run()


def _golomb_blob_bytes(count: float, m_bits: int) -> float:
    """Approximate stored size of one Golomb-compressed bucket blob.

    Golomb coding of ``e`` set positions over ``m`` bits costs roughly
    ``e * (log2(m/e) + 1.6)`` bits, plus the fixed header/min/max/count
    columns of the blob row.
    """
    entries = max(1.0, count)
    per_entry_bits = math.log2(max(2.0, m_bits / entries)) + 1.6
    return 110.0 + entries * per_entry_bits / 8.0


def _reproject_profile(profile: _SideProfile, num_buckets: int) -> _SideProfile:
    """Merge a profile onto a different equi-width bucket grid.

    Bucket numbers of the result live on the ``num_buckets`` grid, so
    lookups against a built index's blob rows (which encode that grid)
    match.  A no-op when the grids already agree.
    """
    if num_buckets == profile.num_buckets:
        return profile
    merged: "dict[int, tuple[float, float, float]]" = {}
    for index, bucket in enumerate(profile.buckets):
        position = (bucket + 0.5) / profile.num_buckets
        target = min(num_buckets - 1, int(position * num_buckets))
        count, low, high = merged.get(
            target, (0.0, float("inf"), float("-inf"))
        )
        merged[target] = (
            count + profile.counts[index],
            min(low, profile.mins[index]),
            max(high, profile.maxes[index]),
        )
    buckets = sorted(merged)
    return _SideProfile(
        buckets=buckets,
        counts=[merged[b][0] for b in buckets],
        mins=[merged[b][1] for b in buckets],
        maxes=[merged[b][2] for b in buckets],
        num_buckets=num_buckets,
        total=profile.total,
    )


def _rebucket(profile: _SideProfile, num_buckets: int) -> "list[float]":
    """Project a profile's counts onto a coarser/finer equi-width grid."""
    counts = [0.0] * num_buckets
    for index, bucket in enumerate(profile.buckets):
        # midpoint of the profile bucket decides the target bucket
        position = (bucket + 0.5) / profile.num_buckets
        target = min(num_buckets - 1, int(position * num_buckets))
        counts[target] += profile.counts[index]
    return counts
