"""Rank-join execution results with their measured costs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.metrics import MetricsSnapshot
from repro.common.multiway import MultiJoinTuple
from repro.common.types import JoinTuple


def _score_multiset_recall(
    want_scores: "Iterable[float]", got_scores: "Iterable[float]"
) -> float:
    """Score-multiset recall — rank joins may break ties arbitrarily, so
    recall compares the multiset of scores (what the paper's 100%-recall
    claim is about), not row identities."""
    want = sorted(want_scores, reverse=True)
    if not want:
        return 1.0
    got = sorted(got_scores, reverse=True)
    matched = i = j = 0
    while i < len(want) and j < len(got):
        if abs(want[i] - got[j]) <= 1e-9:
            matched += 1
            i += 1
            j += 1
        elif got[j] > want[i]:
            j += 1
        else:
            i += 1
    return matched / len(want)


@dataclass
class RankJoinResult:
    """What an algorithm returns: the tuples plus the bill.

    ``metrics`` is the *delta* snapshot covering only this query's
    execution (index build costs are reported separately, as in Fig. 9).
    """

    algorithm: str
    k: int
    tuples: list[JoinTuple]
    metrics: MetricsSnapshot
    details: dict[str, float] = field(default_factory=dict)

    def scores(self) -> list[float]:
        return [t.score for t in self.tuples]

    def pairs(self) -> set[tuple[str, str]]:
        return {t.as_pair() for t in self.tuples}

    def recall_against(self, truth: "list[JoinTuple]") -> float:
        """Score-multiset recall against a ground-truth top-k list."""
        return _score_multiset_recall(
            (t.score for t in truth), (t.score for t in self.tuples)
        )


@dataclass
class MultiRankJoinResult:
    """N-way result with its measured costs (the arity ≥ 3 analogue of
    :class:`RankJoinResult`, carrying :class:`MultiJoinTuple` rows)."""

    algorithm: str
    k: int
    tuples: list[MultiJoinTuple]
    metrics: MetricsSnapshot
    details: dict[str, float] = field(default_factory=dict)

    def scores(self) -> list[float]:
        return [t.score for t in self.tuples]

    def recall_against(self, truth: "list[MultiJoinTuple]") -> float:
        """Score-multiset recall against a ground-truth top-k list."""
        return _score_multiset_recall(
            (t.score for t in truth), (t.score for t in self.tuples)
        )
