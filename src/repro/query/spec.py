"""The rank-join query specification (§1.1, §3).

::

    SELECT select-list FROM R1, R2, ..., Rn
    WHERE equi-join-expression(R1, ..., Rn)
    ORDER BY f(R1, ..., Rn) STOP AFTER k

captured as ``n >= 2`` :class:`~repro.relational.binding.RelationBinding`
inputs over one shared join attribute, a monotone
:class:`~repro.common.functions.AggregateFunction`, and ``k``.  §3 notes
the multi-way extension of the paper's frameworks is mechanical, so the
whole stack — parser, planner, engine, EXPLAIN — speaks this one n-ary
spec; ``left``/``right`` remain as compatibility accessors for the
pervasive two-way case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.functions import AggregateFunction, resolve_function
from repro.errors import QueryError
from repro.relational.binding import RelationBinding


@dataclass(frozen=True, init=False)
class RankJoinQuery:
    """An n-way top-k equi-join over a single shared join attribute."""

    inputs: tuple[RelationBinding, ...]
    function: AggregateFunction
    k: int

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        """Accepts the n-ary form ``(inputs, function, k)`` and, for
        compatibility, the historical two-way form
        ``(left, right, function, k)`` — positionally or by keyword."""
        inputs = kwargs.pop("inputs", None)
        left = kwargs.pop("left", None)
        right = kwargs.pop("right", None)
        function = kwargs.pop("function", None)
        k = kwargs.pop("k", None)
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        positional = list(args)
        if positional and inputs is None and left is None:
            head = positional[0]
            if isinstance(head, RelationBinding):
                left = positional.pop(0)
            else:
                inputs = positional.pop(0)
        if positional and left is not None and right is None:
            if isinstance(positional[0], RelationBinding):
                right = positional.pop(0)
        if positional and isinstance(positional[0], RelationBinding):
            raise TypeError(
                "more than two positional relation bindings are ambiguous; "
                "pass three or more relations as inputs=(b1, b2, b3, ...)"
            )
        if positional and function is None:
            function = positional.pop(0)
        if positional and k is None:
            k = positional.pop(0)
        if positional:
            raise TypeError(f"too many positional arguments: {positional}")
        if inputs is None:
            if left is None or right is None:
                raise TypeError(
                    "RankJoinQuery needs inputs=(...) or left and right"
                )
            inputs = (left, right)
        elif left is not None or right is not None:
            raise TypeError("pass either inputs or left/right, not both")
        if function is None or k is None:
            raise TypeError("RankJoinQuery needs a function and k")
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "k", k)
        self.__post_init__()

    def __post_init__(self) -> None:
        if len(self.inputs) < 2:
            raise QueryError(
                f"rank join needs >= 2 relations, got {len(self.inputs)}"
            )
        if self.k <= 0:
            raise QueryError(f"k must be positive: {self.k}")

    @staticmethod
    def of(
        *args: Any,
        **kwargs: Any,
    ) -> "RankJoinQuery":
        """Convenience constructor accepting a function name.

        ``of(left, right, function, k)`` (two-way) or
        ``of(inputs, function, k)`` (n-ary).
        """
        if "function" in kwargs:
            kwargs["function"] = resolve_function(kwargs["function"])
            return RankJoinQuery(*args, **kwargs)
        args = list(args)
        for index, value in enumerate(args):
            if isinstance(value, (str, AggregateFunction)):
                args[index] = resolve_function(value)
                break
        return RankJoinQuery(*args, **kwargs)

    # -- structural accessors -------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.inputs)

    @property
    def left(self) -> RelationBinding:
        """First input (the two-way ``left`` role)."""
        return self.inputs[0]

    @property
    def right(self) -> RelationBinding:
        """Second input (the two-way ``right`` role)."""
        return self.inputs[1]

    def with_k(self, k: int) -> "RankJoinQuery":
        """Same query, different result size (used by k-sweeps and the
        BFHM recall-repair loop's k + (k - k') restarts)."""
        return RankJoinQuery(inputs=self.inputs, function=self.function, k=k)

    def pairwise(self, left_index: int = 0, right_index: int = 1) -> "RankJoinQuery":
        """A two-way projection (reuses the binary index builders and,
        in the left-deep BFHM cascade, shapes each stage)."""
        return RankJoinQuery(
            inputs=(self.inputs[left_index], self.inputs[right_index]),
            function=self.function,
            k=self.k,
        )

    @property
    def description(self) -> str:
        joined = " ⋈ ".join(binding.display_name for binding in self.inputs)
        on = "=".join(binding.join_column for binding in self.inputs)
        return f"top-{self.k} {joined} on {on} by {self.function.name}"
