"""The rank-join query specification (§1.1).

::

    SELECT select-list FROM R1, R2
    WHERE equi-join-expression(R1, R2)
    ORDER BY f(R1, R2) STOP AFTER k

captured as two :class:`~repro.relational.binding.RelationBinding` inputs, a
monotone :class:`~repro.common.functions.AggregateFunction`, and ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.functions import AggregateFunction, resolve_function
from repro.errors import QueryError
from repro.relational.binding import RelationBinding


@dataclass(frozen=True)
class RankJoinQuery:
    """A two-way top-k equi-join (§3: multi-way extension is mechanical)."""

    left: RelationBinding
    right: RelationBinding
    function: AggregateFunction
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryError(f"k must be positive: {self.k}")

    @staticmethod
    def of(
        left: RelationBinding,
        right: RelationBinding,
        function: "str | AggregateFunction",
        k: int,
    ) -> "RankJoinQuery":
        """Convenience constructor accepting a function name."""
        return RankJoinQuery(left, right, resolve_function(function), k)

    def with_k(self, k: int) -> "RankJoinQuery":
        """Same query, different result size (used by k-sweeps and the
        BFHM recall-repair loop's k + (k - k') restarts)."""
        return RankJoinQuery(self.left, self.right, self.function, k)

    @property
    def description(self) -> str:
        return (
            f"top-{self.k} {self.left.display_name} ⋈ "
            f"{self.right.display_name} on {self.left.join_column}"
            f"={self.right.join_column} by {self.function.name}"
        )
