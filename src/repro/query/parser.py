"""Parser for the paper's SQL dialect (§1.1, extended to §3's n-way joins).

Grammar (whitespace-insensitive, case-insensitive keywords)::

    query      := SELECT select_list
                  FROM table alias ("," table alias)+
                  WHERE join_cond ("AND" join_cond)*
                  ORDER BY score_expr
                  STOP AFTER integer
    join_cond  := alias "." column "=" alias "." column
    select_list := "*" | alias "." column ("," alias "." column)*
    score_expr := sum_expr
    sum_expr   := mul_expr (("+") mul_expr)*
    mul_expr   := atom (("*") atom)*
    atom       := NUMBER | alias "." column
                  | ("MAX"|"MIN") "(" alias.column ("," alias.column)+ ")"
                  | "(" sum_expr ")"

The join conditions must form one connected equivalence class covering
every relation of the FROM clause (a single shared join attribute, the
paper's §3 multi-way shape).  The score expression must reduce to a
monotone aggregate of exactly one score column per relation: a product
``A.x * B.y * C.z``, a (weighted) sum ``c1*A.x + c2*B.y + ...``, or
``MAX/MIN`` over one column per relation.  Both of the paper's evaluation
queries (Q1 product, Q2 sum) parse as-is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.functions import (
    AggregateFunction,
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
)
from repro.errors import ParseError
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol>[(),.*+=]))"
)

_KEYWORDS = {
    "select", "from", "where", "and", "order", "by", "stop", "after",
    "max", "min",
}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "number" | "word" | "symbol"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(
                f"unexpected character {remainder[0]!r}", position
            )
        position = match.end()
        for kind in ("number", "word", "symbol"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
    return tokens


@dataclass(frozen=True)
class _ColumnRef:
    alias: str
    column: str


@dataclass(frozen=True)
class _Term:
    """``coefficient * column`` — the building block of score expressions."""

    coefficient: float
    column: "_ColumnRef | None"  # None for pure constants


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> "_Token | None":
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self.text))
        self.index += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self._next()
        if token.kind != "word" or token.text.lower() != word:
            raise ParseError(f"expected {word.upper()!r}, got {token.text!r}",
                             token.position)

    def _expect_symbol(self, symbol: str) -> None:
        token = self._next()
        if token.kind != "symbol" or token.text != symbol:
            raise ParseError(
                f"expected {symbol!r}, got {token.text!r}", token.position
            )

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word" or token.text.lower() in _KEYWORDS:
            raise ParseError(
                f"expected identifier, got {token.text!r}", token.position
            )
        return token.text

    def _at_word(self, word: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "word"
            and token.text.lower() == word
        )

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "symbol" and token.text == symbol

    # -- grammar ------------------------------------------------------------

    def parse(self) -> "ParsedQuery":
        self._expect_word("select")
        select_list = self._select_list()
        self._expect_word("from")
        tables = self._from_clause()
        self._expect_word("where")
        join_conditions = self._where_clause()
        self._expect_word("order")
        self._expect_word("by")
        function, score_columns = self._score_expression()
        self._expect_word("stop")
        self._expect_word("after")
        k = self._integer()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                f"trailing input after STOP AFTER: {token.text!r}",  # type: ignore[union-attr]
                token.position,  # type: ignore[union-attr]
            )
        return ParsedQuery(select_list, tables, tuple(join_conditions),
                           function, score_columns, k)

    def _select_list(self) -> "list[_ColumnRef] | None":
        if self._at_symbol("*"):
            self._next()
            return None
        columns = [self._column_ref()]
        while self._at_symbol(","):
            self._next()
            columns.append(self._column_ref())
        return columns

    def _from_clause(self) -> dict[str, str]:
        tables: dict[str, str] = {}
        while True:
            table = self._identifier()
            alias = table
            token = self._peek()
            if token is not None and token.kind == "word" and token.text.lower() not in _KEYWORDS:
                alias = self._identifier()
            if alias in tables:
                raise ParseError(f"duplicate alias {alias!r}")
            tables[alias] = table
            if self._at_symbol(","):
                self._next()
                continue
            break
        if len(tables) < 2:
            raise ParseError(
                f"rank joins need at least two relations, got {len(tables)}"
            )
        return tables

    def _column_ref(self) -> _ColumnRef:
        alias = self._identifier()
        self._expect_symbol(".")
        column = self._identifier()
        return _ColumnRef(alias, column)

    def _where_clause(self) -> "list[tuple[_ColumnRef, _ColumnRef]]":
        conditions = [self._join_condition()]
        while self._at_word("and"):
            self._next()
            conditions.append(self._join_condition())
        return conditions

    def _join_condition(self) -> "tuple[_ColumnRef, _ColumnRef]":
        left = self._column_ref()
        self._expect_symbol("=")
        right = self._column_ref()
        if left.alias == right.alias:
            raise ParseError("join condition must relate two distinct relations")
        return left, right

    def _integer(self) -> int:
        token = self._next()
        if token.kind != "number" or "." in token.text:
            raise ParseError(f"expected integer, got {token.text!r}", token.position)
        value = int(token.text)
        if value <= 0:
            raise ParseError(f"STOP AFTER must be positive, got {value}")
        return value

    # -- score expression ------------------------------------------------------

    def _score_expression(self) -> tuple[AggregateFunction, dict[str, str]]:
        if self._at_word("max") or self._at_word("min"):
            kind = self._next().text.lower()
            self._expect_symbol("(")
            columns = [self._column_ref()]
            while self._at_symbol(","):
                self._next()
                columns.append(self._column_ref())
            self._expect_symbol(")")
            if len(columns) < 2:
                raise ParseError(
                    f"{kind.upper()} needs one column per relation"
                )
            aliases = [c.alias for c in columns]
            if len(set(aliases)) != len(aliases):
                raise ParseError(
                    "score expression must use one column per relation"
                )
            function = MaxFunction() if kind == "max" else MinFunction()
            return function, {c.alias: c.column for c in columns}
        terms = self._sum_expr()
        return _terms_to_function(terms)

    def _sum_expr(self) -> list[list[_Term]]:
        """List of additive groups, each a list of multiplied terms."""
        groups = [self._mul_expr()]
        while self._at_symbol("+"):
            self._next()
            groups.append(self._mul_expr())
        return groups

    def _mul_expr(self) -> list[_Term]:
        factors = [self._atom()]
        while self._at_symbol("*"):
            self._next()
            factors.append(self._atom())
        return factors

    def _atom(self) -> _Term:
        if self._at_symbol("("):
            self._next()
            groups = self._sum_expr()
            self._expect_symbol(")")
            if len(groups) != 1 or len(groups[0]) != 1:
                raise ParseError(
                    "nested additive expressions are not supported in "
                    "score functions"
                )
            return groups[0][0]
        token = self._peek()
        if token is not None and token.kind == "number":
            self._next()
            return _Term(float(token.text), None)
        column = self._column_ref()
        return _Term(1.0, column)


@dataclass(frozen=True)
class ParsedQuery:
    """Raw parse product, prior to binding against a catalog."""

    select_list: "list[_ColumnRef] | None"
    tables: dict[str, str]  # alias -> table name
    join_conditions: "tuple[tuple[_ColumnRef, _ColumnRef], ...]"
    function: AggregateFunction
    score_columns: dict[str, str]  # alias -> score column
    k: int


def _terms_to_function(
    groups: "list[list[_Term]]",
) -> tuple[AggregateFunction, dict[str, str]]:
    """Classify a parsed arithmetic expression as a monotone aggregate."""
    # collapse each multiplicative group into (coefficient, columns)
    collapsed: list[tuple[float, list[_ColumnRef]]] = []
    for factors in groups:
        coefficient = 1.0
        columns: list[_ColumnRef] = []
        for term in factors:
            coefficient *= term.coefficient
            if term.column is not None:
                columns.append(term.column)
        collapsed.append((coefficient, columns))

    if len(collapsed) == 1:
        coefficient, columns = collapsed[0]
        aliases = [c.alias for c in columns]
        if len(columns) < 2 or len(set(aliases)) != len(aliases):
            raise ParseError(
                "product score expression must multiply one column from "
                "each relation"
            )
        if coefficient != 1.0:
            raise ParseError(
                "scaled products are not monotone-normalized; drop the "
                "constant factor"
            )
        return ProductFunction(), {c.alias: c.column for c in columns}

    aliases: dict[str, str] = {}
    weights: list[float] = []
    for coefficient, columns in collapsed:
        if len(columns) != 1:
            raise ParseError(
                "each additive term must reference exactly one column"
            )
        column = columns[0]
        if column.alias in aliases:
            raise ParseError(
                "score expression must use one column per relation"
            )
        aliases[column.alias] = column.column
        weights.append(coefficient)
    if all(weight == 1.0 for weight in weights):
        return SumFunction(), aliases
    return WeightedSumFunction(weights), aliases


def _join_columns_by_alias(
    parsed: ParsedQuery, aliases: "list[str]"
) -> dict[str, str]:
    """Resolve each alias's join column, requiring one connected
    equivalence class over a single shared join attribute."""
    columns: dict[str, str] = {}
    # union-find over aliases to check the join graph is connected
    parent = {alias: alias for alias in aliases}

    def find(alias: str) -> str:
        while parent[alias] != alias:
            parent[alias] = parent[parent[alias]]
            alias = parent[alias]
        return alias

    for left, right in parsed.join_conditions:
        for ref in (left, right):
            if ref.alias not in parent:
                raise ParseError(
                    f"join condition references unknown alias {ref.alias!r}"
                )
            known = columns.get(ref.alias)
            if known is not None and known != ref.column:
                raise ParseError(
                    f"alias {ref.alias!r} joins on both {known!r} and "
                    f"{ref.column!r}; rank joins use one shared join "
                    "attribute per relation"
                )
            columns[ref.alias] = ref.column
        parent[find(left.alias)] = find(right.alias)

    roots = {find(alias) for alias in aliases}
    if len(roots) != 1:
        for alias in aliases:
            if alias not in columns:
                raise ParseError(
                    f"join condition does not cover alias {alias!r}"
                )
        raise ParseError("join conditions do not connect all relations")
    return columns


def parse_rank_join(
    text: str,
    family: str = "d",
    join_column_overrides: "dict[str, str] | None" = None,
) -> RankJoinQuery:
    """Parse query text into a bound n-ary :class:`RankJoinQuery`.

    The weighted-sum case must keep weights aligned with the relation
    order of the FROM clause, so the parser re-orders them here.
    """
    parsed = _Parser(text).parse()
    aliases = list(parsed.tables)

    join_by_alias = _join_columns_by_alias(parsed, aliases)
    for alias in aliases:
        if alias not in join_by_alias:
            raise ParseError(f"join condition does not cover alias {alias!r}")
        if alias not in parsed.score_columns:
            raise ParseError(f"score expression does not cover alias {alias!r}")
    for alias in parsed.score_columns:
        if alias not in parsed.tables:
            raise ParseError(
                f"score expression references unknown alias {alias!r}"
            )

    function = parsed.function
    if isinstance(function, WeightedSumFunction):
        # weights were collected in expression order; re-align to FROM order
        expression_aliases = list(parsed.score_columns)
        if expression_aliases != aliases:
            function = WeightedSumFunction(
                [function.weights[expression_aliases.index(alias)]
                 for alias in aliases]
            )

    overrides = join_column_overrides or {}

    def binding(alias: str) -> RelationBinding:
        return RelationBinding(
            table=parsed.tables[alias],
            join_column=overrides.get(alias, join_by_alias[alias]),
            score_column=parsed.score_columns[alias],
            family=family,
            alias=alias,
        )

    return RankJoinQuery(
        inputs=tuple(binding(alias) for alias in aliases),
        function=function,
        k=parsed.k,
    )
