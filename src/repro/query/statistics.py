"""Table and index statistics feeding the cost-based planner.

The planner prices candidate algorithms from three kinds of facts:

* **base-relation statistics** — row count, distinct join values, byte
  sizes, and an equi-width score histogram (the same bucketing the BFHM
  index uses, so planner estimates and index contents line up);
* **index availability and footprint** — which of the four index kinds
  (IJLMR, ISL, BFHM, DRJN) have been built for a relation signature, and
  how big their rows/cells actually are (actual sizes beat any formula);
* **cluster shape** — taken from the platform's :class:`CostModel`.

Gathering reads the *backing* tables (unmetered), so planning and EXPLAIN
never show up in a query's bill.  Statistics are cached per relation
signature in a :class:`StatisticsCatalog`; online mutations invalidate the
cache through the hooks in :mod:`repro.maintenance.interceptor`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.bfhm.bucket import Q_BLOB, Q_COUNT
from repro.core.indexes import BFHM_TABLE, DRJN_TABLE, IJLMR_TABLE, ISL_TABLE
from repro.errors import PlanningError
from repro.platform import Platform
from repro.relational.binding import RelationBinding, load_relation
from repro.sketches.hashing import hash_to_range
from repro.sketches.histogram import EquiWidthHistogram, score_to_bucket

#: histogram resolution used for planning (matches the BFHM default, so a
#: built BFHM index and the planner agree on bucket boundaries)
PLANNER_NUM_BUCKETS = 100
#: join-partition resolution of the 2-D join profile (the DRJN matrix idea
#: applied to planning).  Partitions must be fine relative to the distinct
#: join values — keys sharing a partition average away the score-correlated
#: join skew (§5.3's repair driver) the profile exists to expose, halving
#: the diagonal mass and smearing it onto phantom bucket pairs; at ~1 key
#: per partition the cell products recover the per-key coupling while join
#: values themselves never leave the sketch (cells store counts only).
PLANNER_JOIN_PARTITIONS = 1 << 16


@dataclass(frozen=True)
class IndexStatistics:
    """Footprint of one built index family (zeros when not built)."""

    kind: str
    built: bool = False
    #: index rows holding data for this relation's family
    rows: int = 0
    #: individual cells across those rows
    cells: int = 0
    #: serialized size of those cells (the bytes scans/gets would move)
    total_bytes: int = 0

    @property
    def avg_row_bytes(self) -> float:
        return self.total_bytes / self.rows if self.rows else 0.0

    @property
    def avg_cell_bytes(self) -> float:
        return self.total_bytes / self.cells if self.cells else 0.0


@dataclass(frozen=True)
class BFHMIndexStatistics(IndexStatistics):
    """BFHM adds per-bucket blob facts and the reverse-mapping footprint."""

    m_bits: int = 0
    num_buckets: int = PLANNER_NUM_BUCKETS
    #: bucket number -> (tuple count, blob row bytes), descending score order
    bucket_blobs: "dict[int, tuple[int, int]]" = field(default_factory=dict)
    #: bucket number -> (actual min score, actual max score) as stored in
    #: the blob rows — the exact per-bucket score profile the BFHM
    #: coordinator sees, which the planner's cascade replay re-enacts
    bucket_scores: "dict[int, tuple[float, float]]" = field(default_factory=dict)
    reverse_rows: int = 0
    reverse_cells: int = 0
    reverse_bytes: int = 0

    @property
    def avg_reverse_row_bytes(self) -> float:
        return self.reverse_bytes / self.reverse_rows if self.reverse_rows else 0.0

    @property
    def avg_reverse_row_cells(self) -> float:
        return self.reverse_cells / self.reverse_rows if self.reverse_rows else 1.0

    def bucket_profile(self) -> "list[tuple[int, int, float, float]]":
        """Per-bucket ``(bucket number, count, min score, max score)`` in
        descending score order (= ascending bucket number), for every
        non-empty bucket whose score bounds are known.

        This is the cardinality/score profile the planner's symbolic
        phase-1/phase-2 replay runs against when the index is built — the
        same facts the coordinator reads from blob rows at query time.
        """
        profile = []
        for bucket in sorted(self.bucket_blobs):
            count, _ = self.bucket_blobs[bucket]
            if count <= 0 or bucket not in self.bucket_scores:
                continue
            low, high = self.bucket_scores[bucket]
            profile.append((bucket, count, low, high))
        return profile


@dataclass(frozen=True)
class JoinProfile:
    """2-D (score bucket × join partition) profile of one relation.

    The DRJN matrix idea (§2, §7.1) applied to planner statistics: join
    values are hash-partitioned, scores are equi-width bucketed, and each
    cell remembers how many tuples — and how many *distinct* join values —
    landed there.  Joining two relations' profiles cell-by-cell yields
    per-bucket-pair match expectations that capture score-correlated join
    skew (e.g. high-price orders joining more lineitems), which a single
    uniform selectivity constant cannot.
    """

    num_buckets: int
    num_partitions: int
    #: score bucket -> {join partition -> (tuple count, distinct join values)}
    cells: "dict[int, dict[int, tuple[int, int]]]"
    #: join partition -> distinct join values across the whole relation
    partition_distinct: "dict[int, int]"

    def bucket_vector(self, bucket: int) -> "dict[int, tuple[int, int]] | None":
        """Partition vector of one score bucket (None when empty)."""
        return self.cells.get(bucket)


def expected_bucket_join(
    left: "JoinProfile",
    right: "JoinProfile",
    left_vector: "dict[int, tuple[float, float]]",
    right_vector: "dict[int, tuple[float, float]]",
) -> "tuple[float, float]":
    """Expected ``(tuple-pair matches, distinct shared join values)`` of
    joining two score buckets, given their partition vectors.

    Within a partition of ``D`` distinct join values, a left cell holding
    ``d_l`` distinct values and a right cell holding ``d_r`` shares
    ``d_l * d_r / D`` values in expectation (uniform placement within the
    partition); tuple pairs scale by counts instead.  Distinct shared
    values is what BFHM's filter intersections — and therefore its
    reverse-row traffic — are made of; tuple pairs is what phase 2
    materializes.
    """
    pairs = 0.0
    shared_values = 0.0
    small, large = (
        (left_vector, right_vector)
        if len(left_vector) <= len(right_vector)
        else (right_vector, left_vector)
    )
    for partition, (count_s, distinct_s) in small.items():
        other = large.get(partition)
        if other is None:
            continue
        count_o, distinct_o = other
        universe = max(
            left.partition_distinct.get(partition, 1),
            right.partition_distinct.get(partition, 1),
            1,
        )
        pairs += count_s * count_o / universe
        shared_values += distinct_s * distinct_o / universe
    return pairs, shared_values


@dataclass(frozen=True)
class TableStatistics:
    """Planner-facing summary of one bound relation."""

    binding: RelationBinding
    row_count: int
    distinct_join_values: int
    total_cells: int
    total_row_bytes: int
    avg_join_value_bytes: float
    avg_row_key_bytes: float
    histogram: EquiWidthHistogram
    join_profile: "JoinProfile | None" = None
    indexes: "dict[str, IndexStatistics]" = field(default_factory=dict)

    @property
    def avg_row_bytes(self) -> float:
        return self.total_row_bytes / self.row_count if self.row_count else 0.0

    @property
    def avg_cells_per_row(self) -> float:
        return self.total_cells / self.row_count if self.row_count else 0.0

    def bucket_counts(self) -> "list[int]":
        """Tuple count per score bucket, bucket 0 = highest scores."""
        return [
            self.histogram.bucket(b).count
            for b in range(self.histogram.num_buckets)
        ]

    def index(self, kind: str) -> IndexStatistics:
        return self.indexes.get(kind, IndexStatistics(kind=kind))


def _family_footprint(
    platform: Platform, table_name: str, family: str
) -> "tuple[int, int, int]":
    """(rows, cells, bytes) stored under ``family`` — unmetered."""
    if not platform.store.has_table(table_name):
        return (0, 0, 0)
    table = platform.store.backing(table_name)
    if family not in table.families:
        return (0, 0, 0)
    rows = cells = total = 0
    for row in table.all_rows(families={family}):  # lint: disable=RL301 (statistics gathering models catalog metadata, free by design — see gather_statistics)
        if row.empty:
            continue
        rows += 1
        cells += len(row)
        total += row.serialized_size()
    return (rows, cells, total)


def _flat_index_stats(platform: Platform, kind: str, table: str, family: str) -> IndexStatistics:
    rows, cells, total = _family_footprint(platform, table, family)
    return IndexStatistics(
        kind=kind, built=rows > 0, rows=rows, cells=cells, total_bytes=total
    )


def _bfhm_index_stats(platform: Platform, signature: str) -> "BFHMIndexStatistics | None":
    """Stats of the first built BFHM family for ``signature``, if any.

    BFHM families encode the bucket configuration in their name
    (``<signature>__b<numBuckets>``), so the lookup is by prefix.
    """
    if not platform.store.has_table(BFHM_TABLE):
        return None
    table = platform.store.backing(BFHM_TABLE)
    prefix = f"{signature}__b"
    families = sorted(f for f in table.families if f.startswith(prefix))
    if not families:
        return None
    family = families[0]
    # decode the meta row straight off the backing table (read_meta would
    # go through the metered client and bill the statistics pass)
    from repro.common.serialization import decode_float, decode_str
    from repro.core.bfhm.bucket import META_ROW, Q_M_BITS, Q_MAX, Q_MIN, Q_NUM_BUCKETS

    meta_row = table.read_row(META_ROW, families={family})  # lint: disable=RL301 (statistics gathering models catalog metadata, free by design — see gather_statistics)
    num_buckets_raw = meta_row.value(family, Q_NUM_BUCKETS)
    m_bits_raw = meta_row.value(family, Q_M_BITS)
    if num_buckets_raw is None or m_bits_raw is None:
        return None
    meta_num_buckets = int(decode_str(num_buckets_raw))
    meta_m_bits = int(decode_str(m_bits_raw))
    # one unmetered pass over the family: blob rows vs reverse rows
    bucket_blobs: dict[int, tuple[int, int]] = {}
    bucket_scores: dict[int, tuple[float, float]] = {}
    reverse_rows = reverse_cells = reverse_bytes = 0
    rows = cells = total = 0
    for row in table.all_rows(families={family}):  # lint: disable=RL301 (statistics gathering models catalog metadata, free by design — see gather_statistics)
        if row.empty:
            continue
        rows += 1
        cells += len(row)
        size = row.serialized_size()
        total += size
        if row.row.startswith("B") and row.value(family, Q_BLOB) is not None:
            count_raw = row.value(family, Q_COUNT)
            count = int(decode_str(count_raw)) if count_raw is not None else 0
            bucket = int(row.row[1:])
            bucket_blobs[bucket] = (count, size)
            min_raw = row.value(family, Q_MIN)
            max_raw = row.value(family, Q_MAX)
            if min_raw is not None and max_raw is not None:
                bucket_scores[bucket] = (decode_float(min_raw), decode_float(max_raw))
        elif row.row.startswith("R"):
            reverse_rows += 1
            reverse_cells += len(row)
            reverse_bytes += size
    return BFHMIndexStatistics(
        kind="bfhm",
        built=bool(bucket_blobs),
        rows=rows,
        cells=cells,
        total_bytes=total,
        m_bits=meta_m_bits,
        num_buckets=meta_num_buckets,
        bucket_blobs=bucket_blobs,
        bucket_scores=bucket_scores,
        reverse_rows=reverse_rows,
        reverse_cells=reverse_cells,
        reverse_bytes=reverse_bytes,
    )


def gather_statistics(
    platform: Platform,
    binding: RelationBinding,
    num_buckets: int = PLANNER_NUM_BUCKETS,
) -> TableStatistics:
    """One unmetered statistics pass over ``binding``'s base relation and
    whatever indices exist for its signature."""
    if not platform.store.has_table(binding.table):
        raise PlanningError(
            f"cannot plan over unknown table {binding.table!r}"
        )
    rows = load_relation(platform.store, binding)
    if not rows:
        raise PlanningError(
            f"cannot plan over empty relation {binding.table!r}"
        )
    histogram = EquiWidthHistogram(num_buckets)
    join_values: set[str] = set()
    join_bytes = 0
    key_bytes = 0
    # 2-D join profile accumulators: (bucket, partition) -> count/value set
    profile_cells: "dict[int, dict[int, list]]" = {}
    for scored in rows:
        # the paper's score domain is [0, 1]; clamp so planning never
        # crashes on a denormalized outlier
        score = min(max(scored.score, 0.0), 1.0)
        histogram.add(score)
        join_values.add(scored.join_value)
        join_bytes += len(scored.join_value.encode("utf-8"))
        key_bytes += len(scored.row_key.encode("utf-8"))
        bucket = score_to_bucket(score, num_buckets)
        partition = hash_to_range(scored.join_value, PLANNER_JOIN_PARTITIONS)
        cell = profile_cells.setdefault(bucket, {}).setdefault(
            partition, [0, set()]
        )
        cell[0] += 1
        cell[1].add(scored.join_value)
    # per-partition distinct values: union of the cell value sets (each
    # value hashes to exactly one partition)
    partition_values: "dict[int, set[str]]" = {}
    for vector in profile_cells.values():
        for partition, (_, values) in vector.items():
            partition_values.setdefault(partition, set()).update(values)
    join_profile = JoinProfile(
        num_buckets=num_buckets,
        num_partitions=PLANNER_JOIN_PARTITIONS,
        cells={
            bucket: {
                partition: (count, len(values))
                for partition, (count, values) in vector.items()
            }
            for bucket, vector in profile_cells.items()
        },
        partition_distinct={
            partition: len(values)
            for partition, values in partition_values.items()
        },
    )

    backing = platform.store.backing(binding.table)
    total_cells = 0
    total_row_bytes = 0
    for row in backing.all_rows(families={binding.family}):  # lint: disable=RL301 (statistics gathering models catalog metadata, free by design — see gather_statistics)
        total_cells += len(row)
        total_row_bytes += row.serialized_size()

    signature = binding.signature
    indexes: dict[str, IndexStatistics] = {
        "ijlmr": _flat_index_stats(platform, "ijlmr", IJLMR_TABLE, signature),
        "isl": _flat_index_stats(platform, "isl", ISL_TABLE, signature),
        "drjn": _flat_index_stats(platform, "drjn", DRJN_TABLE, signature),
    }
    bfhm = _bfhm_index_stats(platform, signature)
    indexes["bfhm"] = bfhm if bfhm is not None else IndexStatistics(kind="bfhm")

    return TableStatistics(
        binding=binding,
        row_count=len(rows),
        distinct_join_values=len(join_values),
        total_cells=total_cells,
        total_row_bytes=total_row_bytes,
        avg_join_value_bytes=join_bytes / len(rows),
        avg_row_key_bytes=key_bytes / len(rows),
        histogram=histogram,
        join_profile=join_profile,
        indexes=indexes,
    )


class StatisticsCatalog:
    """Per-platform cache of :class:`TableStatistics`.

    Keyed by relation signature + family.  ``invalidate(table)`` drops every
    cached entry over that base table; the maintenance interceptor calls it
    after each applied mutation so plans never price stale data.

    The catalog is thread-safe: the serving layer shares one catalog across
    worker threads, so cache fills, invalidations, and version reads all run
    under an internal lock.  The slow part — :func:`gather_statistics` — runs
    *outside* the lock; a gather that races an invalidation is detected by
    comparing the table's version before and after, and its (now possibly
    stale) result is returned to the caller but never cached.
    """

    def __init__(self, platform: Platform, num_buckets: int = PLANNER_NUM_BUCKETS) -> None:
        self.platform = platform
        self.num_buckets = num_buckets
        self._cache: dict[tuple[str, str], TableStatistics] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self.gather_count = 0  # guarded-by: _lock
        self.invalidation_count = 0  # guarded-by: _lock
        #: bumped on every invalidation; consumers (the planner's plan
        #: cache) use it to detect that cached derivations went stale
        self.version = 0  # guarded-by: _lock
        #: per-base-table invalidation counters — lets a shared plan cache
        #: invalidate only the plans whose input tables actually changed
        self._table_versions: dict[str, int] = {}  # guarded-by: _lock
        #: bumped only by :meth:`invalidate_all` (catalog-wide resets such
        #: as an engine rebuild); plan-cache entries also validate this
        self.epoch = 0  # guarded-by: _lock
        #: duck-typed async-maintenance hookup: a callable mapping a base
        #: table name to a staleness snapshot (``None`` when the table has
        #: no async pipeline) — see
        #: :meth:`repro.maintenance.worker.MaintenancePipeline.staleness`.
        #: The catalog itself only caches *applied* state; this lets the
        #: planner and EXPLAIN report how far the indexes lag behind the
        #: mutation log.
        self._staleness_provider = None
        # family/table drops change index footprints the planner priced
        # from, so the catalog listens on the store's drop notifications
        add_listener = getattr(platform.store, "add_drop_listener", None)
        if add_listener is not None:
            add_listener(self.on_store_drop)

    def _key(self, binding: RelationBinding) -> tuple[str, str]:
        return (binding.signature, binding.family)

    def table_version(self, table: str) -> int:
        """Monotonic invalidation counter of base table ``table``."""
        with self._lock:
            return self._table_versions.get(table, 0)

    def set_staleness_provider(self, provider) -> None:
        """Attach (or detach, with ``None``) the async-maintenance
        staleness source.  ``provider(table)`` must return an object with
        ``pending`` / ``applied_sequence`` / ``last_sequence`` attributes,
        or ``None`` for tables it does not maintain."""
        self._staleness_provider = provider

    def staleness_for(self, table: str):
        """The table's staleness snapshot, or ``None`` when no async
        pipeline is attached (synchronous maintenance is never stale)."""
        provider = self._staleness_provider
        if provider is None:
            return None
        return provider(table)

    def applied_watermark(self, table: str) -> int:
        """The per-table applied-sequence watermark (0 without a pipeline).

        Plan-cache entries snapshot this alongside table versions: a plan
        priced while the table lagged is revalidated once the watermark
        moves."""
        staleness = self.staleness_for(table)
        return 0 if staleness is None else staleness.applied_sequence

    def stats_for(self, binding: RelationBinding) -> TableStatistics:
        """Cached statistics for ``binding`` (gathered on first use)."""
        key = self._key(binding)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            before = self._table_versions.get(binding.table, 0)
        # gather outside the lock: it walks whole backing tables and must
        # not serialize concurrent planning of unrelated queries
        stats = gather_statistics(self.platform, binding, self.num_buckets)
        with self._lock:
            self.gather_count += 1
            current = self._cache.get(key)
            if current is not None:
                # another thread filled the entry first; both gathers saw
                # the same store state, keep the incumbent
                return current
            if self._table_versions.get(binding.table, 0) == before:
                self._cache[key] = stats
            # else: maintenance landed mid-gather — serve the result to
            # this caller but leave the cache empty so the next plan
            # re-gathers against the post-mutation state
            return stats

    def stats_for_query(self, query) -> "list[TableStatistics]":
        """Per-input statistics of an n-ary query, in input order.

        The n-way planner paths price every relation of the join, so
        statistics are gathered (and cached) for each bound input."""
        return [self.stats_for(binding) for binding in query.inputs]

    def invalidate(self, table: str) -> int:
        """Drop cached statistics over base table ``table``; returns the
        number of entries dropped.  Index tables fan in through their base
        relation, so invalidating the base covers the index stats too."""
        with self._lock:
            stale = [
                key
                for key, stats in self._cache.items()
                if stats.binding.table == table
            ]
            for key in stale:
                del self._cache[key]
            if stale:
                self.invalidation_count += 1
            self.version += 1
            self._table_versions[table] = self._table_versions.get(table, 0) + 1
            return len(stale)

    def invalidate_all(self) -> None:
        """Drop every cached entry (and mark derived plans stale)."""
        with self._lock:
            self._cache.clear()
            self.version += 1
            self.epoch += 1

    def on_store_drop(self, table_name: str, family: "str | None") -> None:
        """Store listener: a family (or whole table) was dropped, so
        statistics — and any plans priced from them — may be stale.

        Index families are named after the relation signature
        ``<base table>__<join col>__<score col>`` (BFHM appends a
        ``__b<buckets>`` suffix), so the base table is the first ``__``
        segment.  Invalidating by base table keeps the blast radius tight:
        dropping a BFHM cascade temp family only bumps the (nonexistent)
        temp table's version, leaving real cached plans alone.
        """
        if family is None:
            self.invalidate(table_name)
            return
        base = family.split("__", 1)[0]
        self.invalidate(base)
        if table_name != base:
            self.invalidate(table_name)

    @property
    def cached_signatures(self) -> "list[str]":
        with self._lock:
            return sorted(signature for signature, _ in self._cache)
