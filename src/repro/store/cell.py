"""Cells (key-value pairs) and materialized row views.

A :class:`Cell` is the quadruplet of §1 — ``{key, column name, column value,
timestamp}`` — with the column name split HBase-style into family and
qualifier, plus a tombstone flag for deletes.  Cells sort by
``(row, family, qualifier, -timestamp)`` so scans surface newest versions
first, exactly like HBase's KeyValue ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Cell:
    """One key-value pair of the store."""

    row: str
    family: str
    qualifier: str
    value: bytes
    timestamp: int
    is_delete: bool = False
    # lazily-computed serialized_size; excluded from init/eq/hash/repr so
    # dataclasses.replace can never carry a stale size into a modified cell
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def sort_key(self) -> tuple[str, str, str, int]:
        """HBase KeyValue ordering: newest version of a column first."""
        return (self.row, self.family, self.qualifier, -self.timestamp)

    def serialized_size(self) -> int:
        """On-disk / on-wire size of the cell (cached after first call)."""
        size = self._size
        if size < 0:
            size = (
                len(self.row.encode("utf-8"))
                + len(self.family.encode("utf-8"))
                + len(self.qualifier.encode("utf-8"))
                + len(self.value)
                + 9  # 8-byte timestamp + 1-byte type
            )
            object.__setattr__(self, "_size", size)
        return size


def _visible_of_column(column_cells: "list[Cell]") -> "Cell | None":
    """Visible version of one column's raw cells, or ``None`` if deleted.

    A tombstone masks every version with timestamp <= its own, even one
    arriving in the same batch — so compute the horizon first.
    """
    delete_horizon = max(
        (cell.timestamp for cell in column_cells if cell.is_delete),
        default=-1,
    )
    chosen: Cell | None = None
    for cell in column_cells:
        if cell.is_delete or cell.timestamp <= delete_horizon:
            continue
        if chosen is None or cell.timestamp > chosen.timestamp:
            chosen = cell
    return chosen


def resolve_versions(cells: Iterable[Cell]) -> list[Cell]:
    """Collapse raw (possibly multi-version, possibly deleted) cells into the
    visible latest version per ``(row, family, qualifier)``.

    Tombstones mask every version of their column with a timestamp less than
    or equal to the tombstone's, matching HBase delete semantics.
    """
    by_column: dict[tuple[str, str, str], list[Cell]] = {}
    for cell in cells:
        by_column.setdefault((cell.row, cell.family, cell.qualifier), []).append(cell)

    visible: list[Cell] = []
    for column_cells in by_column.values():
        chosen = _visible_of_column(column_cells)
        if chosen is not None:
            visible.append(chosen)
    visible.sort(key=Cell.sort_key)
    return visible


def iter_visible(sorted_cells: Iterable[Cell]) -> Iterator[Cell]:
    """Streaming :func:`resolve_versions` over KeyValue-ordered cells.

    The input must already be sorted by :meth:`Cell.sort_key` (e.g. the
    output of a k-way merge of memtable and SSTable iterators), so all raw
    versions of one ``(row, family, qualifier)`` column are contiguous.  The
    resolver then needs only one column group in memory at a time and yields
    visible cells as soon as each group closes — this is what lets a
    ``limit``-ed scan stop without materializing the region.
    """
    current_key: "tuple[str, str, str] | None" = None
    group: list[Cell] = []
    for cell in sorted_cells:
        key = (cell.row, cell.family, cell.qualifier)
        if key != current_key:
            if group:
                chosen = _visible_of_column(group)
                if chosen is not None:
                    yield chosen
            current_key = key
            group = [cell]
        else:
            group.append(cell)
    if group:
        chosen = _visible_of_column(group)
        if chosen is not None:
            yield chosen


def iter_row_results(
    visible: Iterable[Cell], families: "set[str] | None" = None
) -> "Iterator[RowResult]":
    """Group an already-resolved, sorted cell stream into per-row results.

    Rows whose cells are all filtered out by ``families`` are skipped, so a
    family-restricted scan never ships empty rows (matching the eager
    :func:`group_rows` behaviour on a pre-filtered list).
    """
    current: RowResult | None = None
    for cell in visible:
        if families is not None and cell.family not in families:
            continue
        if current is None or current.row != cell.row:
            if current is not None:
                yield current
            current = RowResult(cell.row)
        current.cells.append(cell)
    if current is not None:
        yield current


@dataclass(slots=True)
class RowResult:
    """All visible cells of one row, as returned by gets and scans."""

    row: str
    cells: list[Cell] = field(default_factory=list)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def empty(self) -> bool:
        return not self.cells

    def value(self, family: str, qualifier: str) -> "bytes | None":
        """Value of one column, or ``None`` if absent."""
        for cell in self.cells:
            if cell.family == family and cell.qualifier == qualifier:
                return cell.value
        return None

    def family_cells(self, family: str) -> list[Cell]:
        """Cells belonging to one column family."""
        return [cell for cell in self.cells if cell.family == family]

    def families(self) -> set[str]:
        return {cell.family for cell in self.cells}

    def serialized_size(self) -> int:
        return sum(cell.serialized_size() for cell in self.cells)


def group_rows(cells: Iterable[Cell]) -> list[RowResult]:
    """Group already-resolved, sorted cells into per-row results."""
    return list(iter_row_results(cells))
