"""Server-side filters.

The paper's DRJN adaptation "augmented HBase with custom server-side filters
to allow for efficient filtering of tuples" (§7.1): the region server still
reads every cell (so dollar cost is unchanged) but only matching rows cross
the network (so bandwidth drops).  Filters here implement exactly that
contract: they are evaluated inside the region scan, after version
resolution, on whole rows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.serialization import decode_float
from repro.errors import FilterError
from repro.store.cell import RowResult


class Filter(ABC):
    """Predicate over a resolved row, evaluated at the region server."""

    @abstractmethod
    def matches(self, row: RowResult) -> bool:
        """True iff the row should be returned to the client."""


class RowRangeFilter(Filter):
    """Keep rows whose key is within ``[start, stop)`` (either side open)."""

    def __init__(self, start: "str | None" = None, stop: "str | None" = None) -> None:
        if start is not None and stop is not None and start >= stop:
            raise FilterError(f"empty row range: [{start!r}, {stop!r})")
        self.start = start
        self.stop = stop

    def matches(self, row: RowResult) -> bool:
        if self.start is not None and row.row < self.start:
            return False
        if self.stop is not None and row.row >= self.stop:
            return False
        return True


class QualifierPrefixFilter(Filter):
    """Keep rows having at least one qualifier with the given prefix;
    non-matching cells are stripped from the shipped row."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix

    def matches(self, row: RowResult) -> bool:
        kept = [c for c in row.cells if c.qualifier.startswith(self.prefix)]
        if not kept:
            return False
        row.cells = kept
        return True


class ColumnValueFilter(Filter):
    """Keep rows where column ``family:qualifier`` equals ``value``."""

    def __init__(self, family: str, qualifier: str, value: bytes) -> None:
        self.family = family
        self.qualifier = qualifier
        self.value = value

    def matches(self, row: RowResult) -> bool:
        return row.value(self.family, self.qualifier) == self.value


class ScoreThresholdFilter(Filter):
    """Keep rows whose float-encoded score column is >= ``threshold``.

    This is the DRJN pull-phase filter: "fetch and join all tuples whose
    score is above the lower score boundaries of the last fetched buckets"
    (§7.1).  Cells other than the score column ride along untouched.
    """

    def __init__(self, family: str, qualifier: str, threshold: float) -> None:
        self.family = family
        self.qualifier = qualifier
        self.threshold = threshold

    def matches(self, row: RowResult) -> bool:
        raw = row.value(self.family, self.qualifier)
        if raw is None:
            return False
        return decode_float(raw) >= self.threshold


class AndFilter(Filter):
    """Conjunction of filters (all must match, applied in order)."""

    def __init__(self, *filters: Filter) -> None:
        if not filters:
            raise FilterError("AndFilter requires at least one filter")
        self.filters = filters

    def matches(self, row: RowResult) -> bool:
        return all(f.matches(row) for f in self.filters)
