"""Batched region scanner with HBase-like cost behaviour.

One RPC fetches up to ``scan.caching`` rows.  The region server reads rows
sequentially from its segments (charging disk time and one KV read unit per
cell *scanned*, not per cell shipped), applies the server-side filter if
any, and ships only matching rows.  This split between "read" and "shipped"
is what lets DRJN trade dollar cost for bandwidth (§7.1–7.2).

Rows are pulled lazily from the region's streaming merge
(:meth:`~repro.store.region.Region.scan_rows`): each RPC batch materializes
only its ``caching`` rows, and a ``limit``-ed scan stops pulling from the
merge the moment enough rows have shipped.  The simulated costs charged per
batch are identical to the old materialize-then-batch scanner — only the
wall-clock work changes.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Iterator

from repro.store.cell import RowResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.client import HTable, Scan

#: response framing overhead per scan RPC
RESPONSE_OVERHEAD_BYTES = 48


class RegionScanner:
    """Iterates rows across a table's regions in key order, in RPC batches."""

    def __init__(self, htable: "HTable", scan: "Scan") -> None:
        self.htable = htable
        self.scan = scan
        self.rows_returned = 0
        self.rpc_round_trips = 0

    def __iter__(self) -> Iterator[RowResult]:
        scan = self.scan
        table = self.htable.table
        ctx = self.htable.ctx
        limit = scan.limit
        caching = max(1, scan.caching)

        if scan.scatter and limit is None and ctx.topology.parallel:
            regions = table.regions_in_range(scan.start_row, scan.stop_row)
            groups = ctx.topology.assignments(regions)
            if len(groups) > 1:
                yield from self._iter_scatter(regions, groups)
                return

        for region in table.regions_in_range(scan.start_row, scan.stop_row):
            # region server streams its slice; each RPC pulls one batch
            rows = region.scan_rows(scan.start_row, scan.stop_row, scan.families)
            while True:
                if limit is not None and self.rows_returned >= limit:
                    return
                batch = list(islice(rows, caching))
                if not batch:
                    break
                self.rpc_round_trips += 1

                scanned_cells = sum(len(row) for row in batch)
                scanned_bytes = sum(row.serialized_size() for row in batch)
                ctx.charge_server_read(scanned_bytes, scanned_cells, sequential=True)

                if scan.filter is not None:
                    shipped = [row for row in batch if scan.filter.matches(row)]
                    shipped_bytes = sum(row.serialized_size() for row in shipped)
                else:
                    shipped = batch
                    shipped_bytes = scanned_bytes
                ctx.charge_rpc(
                    RESPONSE_OVERHEAD_BYTES, RESPONSE_OVERHEAD_BYTES + shipped_bytes
                )

                for row in shipped:
                    if limit is not None and self.rows_returned >= limit:
                        return
                    self.rows_returned += 1
                    yield row

    def _iter_scatter(self, regions, groups) -> Iterator[RowResult]:
        """Parallel scan: each region server streams its regions inside one
        scatter round (per-batch charges identical to the serial path,
        captured into that server's queue), then rows are gathered back in
        global key order.  ``regions`` is already key-ordered and each
        group preserves that order, so ordering falls out of re-walking
        ``regions`` against the per-region buffers."""
        from repro.cluster.executor import ScatterTask, scatter_gather

        scan = self.scan
        ctx = self.htable.ctx
        caching = max(1, scan.caching)

        def server_scan(server_regions):
            def run() -> "tuple[int, dict[int, list[RowResult]]]":
                round_trips = 0
                shipped_by_region: "dict[int, list[RowResult]]" = {}
                for region in server_regions:
                    collected: "list[RowResult]" = []
                    rows = region.scan_rows(
                        scan.start_row, scan.stop_row, scan.families
                    )
                    while True:
                        batch = list(islice(rows, caching))
                        if not batch:
                            break
                        round_trips += 1
                        scanned_cells = sum(len(row) for row in batch)
                        scanned_bytes = sum(
                            row.serialized_size() for row in batch
                        )
                        ctx.charge_server_read(
                            scanned_bytes, scanned_cells, sequential=True
                        )
                        if scan.filter is not None:
                            shipped = [
                                row for row in batch if scan.filter.matches(row)
                            ]
                            shipped_bytes = sum(
                                row.serialized_size() for row in shipped
                            )
                        else:
                            shipped = batch
                            shipped_bytes = scanned_bytes
                        ctx.charge_rpc(
                            RESPONSE_OVERHEAD_BYTES,
                            RESPONSE_OVERHEAD_BYTES + shipped_bytes,
                        )
                        collected.extend(shipped)
                    shipped_by_region[id(region)] = collected
                return round_trips, shipped_by_region

            return run

        tasks = [
            ScatterTask(server_id, server_scan(server_regions))
            for server_id, server_regions in groups.items()
        ]
        gathered = scatter_gather(ctx, tasks, label="scan")
        rows_by_region: "dict[int, list[RowResult]]" = {}
        for round_trips, shipped_by_region in gathered:
            self.rpc_round_trips += round_trips
            rows_by_region.update(shipped_by_region)
        for region in regions:
            for row in rows_by_region.get(id(region), []):
                self.rows_returned += 1
                yield row
