"""In-memory write buffer of a region (HBase MemStore equivalent).

NoSQL stores achieve their high write throughput with "memory caches and
append-only storage semantics" (§1): writes land in a sorted in-memory
buffer which is flushed to an immutable sorted segment when full.

Two access paths are kept hot: a per-row index serves point gets without
sweeping the buffer (BFHM's reverse-mapping phase is point-get heavy), and
a lazily-sorted cell list serves scans, seekable via binary search so a
range scan never touches cells before its start row.

The buffer is thread-safe: structural transitions (append, lazy re-sort,
drain, family drop) run under an internal lock, and every transition
*rebinds* the cell list instead of mutating it in place, so a scanner that
captured the list before a transition keeps reading its stable snapshot.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from operator import attrgetter
from typing import Iterable, Iterator

from repro.store.cell import Cell

_ROW_OF_CELL = attrgetter("row")


class MemTable:
    """Sorted multi-version buffer of cells awaiting a flush."""

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._by_row: dict[str, list[Cell]] = {}
        self._sorted = True
        self._lock = threading.RLock()
        self.byte_size = 0

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def empty(self) -> bool:
        return not self._cells

    def add(self, cell: Cell) -> None:
        """Append a cell (kept lazily sorted)."""
        with self._lock:
            if self._cells and self._sorted:
                self._sorted = cell.sort_key() >= self._cells[-1].sort_key()
            # appending to the snapshot list is safe: open range iterators
            # captured their upper bound, so they never see the new tail
            self._cells.append(cell)
            bucket = self._by_row.get(cell.row)
            if bucket is None:
                self._by_row[cell.row] = [cell]
            else:
                bucket.append(cell)
            self.byte_size += cell.serialized_size()

    def add_all(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.add(cell)

    def drop_family(self, family: str) -> None:
        """Discard every cell of ``family`` (administrative schema drop).

        Rebinds the cell list (like :meth:`_ensure_sorted`) so open range
        iterators keep reading the pre-drop snapshot."""
        with self._lock:
            self._cells = [cell for cell in self._cells if cell.family != family]
            by_row: dict[str, list[Cell]] = {}
            for cell in self._cells:
                by_row.setdefault(cell.row, []).append(cell)
            self._by_row = by_row
            self.byte_size = sum(cell.serialized_size() for cell in self._cells)

    def _ensure_sorted(self) -> "list[Cell]":
        with self._lock:
            if not self._sorted:
                # rebind rather than sort in place: live range iterators hold
                # a reference to the old list, so a re-sort (or drain) can
                # never shift cells underneath an open scan
                self._cells = sorted(self._cells, key=Cell.sort_key)
                self._sorted = True
            return self._cells

    def cells(self) -> Iterator[Cell]:
        """All cells in KeyValue order (including tombstones)."""
        return iter(self._ensure_sorted())

    def sorted_cells(self) -> "list[Cell]":
        """Sorted snapshot of all cells (flush support: the region publishes
        this list as an SSTable *before* draining, so no read window exists
        in which cells are in neither structure)."""
        return list(self._ensure_sorted())

    def cells_for_row(self, row: str) -> list[Cell]:
        """All raw cells of one row (O(1) via the per-row index)."""
        with self._lock:
            return list(self._by_row.get(row, ()))

    def iter_range(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> Iterator[Cell]:
        """Cells with ``start_row <= row < stop_row`` in KeyValue order.

        Seeks to ``start_row`` by binary search and stops yielding at the
        first cell past ``stop_row`` — a lazy source for merge scans.  The
        cell list and its length are captured up front, so the iterator is a
        stable snapshot even if cells are added (appended) or the buffer is
        re-sorted (rebound) or drained while the scan is open.
        """
        cells = self._ensure_sorted()
        lo = 0 if start_row is None else bisect_left(cells, start_row, key=_ROW_OF_CELL)
        return self._iter_slice(cells, lo, len(cells), stop_row)

    @staticmethod
    def _iter_slice(
        cells: "list[Cell]", lo: int, hi: int, stop_row: "str | None"
    ) -> Iterator[Cell]:
        for index in range(lo, hi):
            cell = cells[index]
            if stop_row is not None and cell.row >= stop_row:
                return
            yield cell

    def drain(self) -> list[Cell]:
        """Return all cells sorted and clear the buffer (flush support)."""
        with self._lock:
            cells = self._ensure_sorted()
            self._cells = []
            self._by_row = {}
            self._sorted = True
            self.byte_size = 0
            return cells
