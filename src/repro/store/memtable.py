"""In-memory write buffer of a region (HBase MemStore equivalent).

NoSQL stores achieve their high write throughput with "memory caches and
append-only storage semantics" (§1): writes land in a sorted in-memory
buffer which is flushed to an immutable sorted segment when full.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.store.cell import Cell


class MemTable:
    """Sorted multi-version buffer of cells awaiting a flush."""

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._sorted = True
        self.byte_size = 0

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def empty(self) -> bool:
        return not self._cells

    def add(self, cell: Cell) -> None:
        """Append a cell (kept lazily sorted)."""
        if self._cells and self._sorted:
            self._sorted = cell.sort_key() >= self._cells[-1].sort_key()
        self._cells.append(cell)
        self.byte_size += cell.serialized_size()

    def add_all(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.add(cell)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._cells.sort(key=Cell.sort_key)
            self._sorted = True

    def cells(self) -> Iterator[Cell]:
        """All cells in KeyValue order (including tombstones)."""
        self._ensure_sorted()
        return iter(self._cells)

    def cells_for_row(self, row: str) -> list[Cell]:
        """All raw cells of one row."""
        return [cell for cell in self._cells if cell.row == row]

    def drain(self) -> list[Cell]:
        """Return all cells sorted and clear the buffer (flush support)."""
        self._ensure_sorted()
        cells, self._cells = self._cells, []
        self.byte_size = 0
        return cells
