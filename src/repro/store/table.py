"""Tables: schema plus the sorted list of regions.

A :class:`StoreTable` owns the column-family schema and routes rows to
regions.  Regions split automatically at their midpoint when they outgrow
``max_region_bytes``, and daughters are spread over the cluster's workers —
this is what distributes an index table across nodes after a bulk build.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Iterator

from repro.errors import ColumnFamilyNotFoundError, RegionError
from repro.store.cell import Cell, RowResult
from repro.store.region import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import SimCluster

#: default auto-split threshold for a region's durable size
DEFAULT_MAX_REGION_BYTES = 64 * 1024 * 1024


class StoreTable:
    """One table of the store: schema, regions, and routing."""

    def __init__(
        self,
        name: str,
        families: "set[str]",
        cluster: "SimCluster",
        split_keys: "list[str] | None" = None,
        max_region_bytes: int = DEFAULT_MAX_REGION_BYTES,
    ) -> None:
        self.name = name
        self.families = set(families)
        self.cluster = cluster
        self.max_region_bytes = max_region_bytes
        boundaries = sorted(split_keys or [])
        starts: list[str | None] = [None, *boundaries]
        stops: list[str | None] = [*boundaries, None]
        self.regions: list[Region] = [
            Region(start, stop, cluster.next_worker())
            for start, stop in zip(starts, stops)
        ]
        # region start keys for binary-search routing (None sorts first)
        self._start_keys = boundaries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreTable({self.name!r}, {len(self.regions)} regions)"

    def check_family(self, family: str) -> None:
        if family not in self.families:
            raise ColumnFamilyNotFoundError(self.name, family)

    def add_family(self, family: str) -> None:
        """Online schema change: add a column family."""
        self.families.add(family)

    def drop_family(self, family: str) -> None:
        """Online schema change: drop a column family and its data (the
        HBase admin ``deleteColumnFamily`` analogue, unmetered)."""
        self.families.discard(family)
        for region in self.regions:
            region.drop_family(family)

    # -- routing -------------------------------------------------------------

    def region_for(self, row: str) -> Region:
        """The region owning ``row``."""
        index = bisect_right(self._start_keys, row)
        region = self.regions[index]
        if not region.contains(row):
            raise RegionError(
                f"routing bug: {row!r} not in region "
                f"[{region.start_key!r}, {region.stop_key!r})"
            )
        return region

    def regions_in_range(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> list[Region]:
        """Regions overlapping ``[start_row, stop_row)`` in key order."""
        selected = []
        for region in self.regions:
            if stop_row is not None and region.start_key is not None and region.start_key >= stop_row:
                continue
            if start_row is not None and region.stop_key is not None and region.stop_key <= start_row:
                continue
            selected.append(region)
        return selected

    # -- mutation ------------------------------------------------------------

    def apply(self, cell: Cell) -> None:
        """Route one mutation to its region; may trigger an auto-split."""
        self.check_family(cell.family)
        region = self.region_for(cell.row)
        region.apply(cell)
        if region.disk_size > self.max_region_bytes:
            self._try_split(region)

    def apply_batch(self, cells: "list[Cell]") -> int:
        """Route a batch of mutations; returns the number of regions touched.

        Families are checked once per distinct family up front and each cell
        is routed with a single bisect, instead of re-running
        ``check_family`` + ``region_for`` per cell through :meth:`apply`.
        Split checks keep the per-cell timing of :meth:`apply` (a region may
        split mid-batch, exactly as under the old per-cell loop), so bulk
        loads produce the same region layout and the same touched-region
        count — and therefore identical metered costs — as seed.
        """
        # validate up front (atomically — no partial application on a bad
        # family); sorted so the family named in the error is deterministic
        for family in sorted({cell.family for cell in cells}):
            self.check_family(family)
        touched: set[int] = set()
        for cell in cells:
            region = self.region_for(cell.row)
            region.apply(cell)
            if region.disk_size > self.max_region_bytes and self._try_split(region):
                # this cell's apply split its region: its row now lives in
                # one of the daughters, so re-route for the touched count
                region = self.region_for(cell.row)
            touched.add(id(region))
        return len(touched)

    def _try_split(self, region: Region) -> tuple[Region, ...]:
        split_key = region.midpoint_key()
        if split_key is None:
            return ()
        lower, upper = region.split(split_key, self.cluster.next_worker())
        index = self.regions.index(region)
        self.regions[index : index + 1] = [lower, upper]
        self._start_keys = [r.start_key for r in self.regions[1:]]  # type: ignore[misc]
        return (lower, upper)

    def flush_all(self) -> None:
        """Flush every region (makes all data durable and scannable)."""
        for region in self.regions:
            region.flush()

    def compact_all(self, major: bool = True) -> None:
        for region in self.regions:
            region.compact(major=major)

    # -- unmetered access (ground truth, tests, reporting) --------------------

    def read_row(self, row: str, families: "set[str] | None" = None) -> RowResult:
        return self.region_for(row).read_row(row, families)

    def all_rows(self, families: "set[str] | None" = None) -> Iterator[RowResult]:
        """Every visible row in key order, without cost accounting."""
        for region in self.regions:
            yield from region.scan_rows(families=families)

    @property
    def disk_size(self) -> int:
        """Durable bytes across all regions (index size reporting)."""
        return sum(region.disk_size for region in self.regions)

    @property
    def total_size(self) -> int:
        return sum(region.total_size for region in self.regions)

    def raw_cell_count(self) -> int:
        return sum(region.raw_cell_count() for region in self.regions)
