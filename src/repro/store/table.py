"""Tables: schema plus the sorted list of regions.

A :class:`StoreTable` owns the column-family schema and routes rows to
regions.  Regions split automatically at their midpoint when they outgrow
``max_region_bytes``, and daughters are spread over the cluster's workers —
this is what distributes an index table across nodes after a bulk build.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ColumnFamilyNotFoundError, RegionError
from repro.store.cell import Cell, RowResult
from repro.store.region import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import SimCluster

#: default auto-split threshold for a region's durable size
DEFAULT_MAX_REGION_BYTES = 64 * 1024 * 1024


class StoreTable:
    """One table of the store: schema, regions, and routing."""

    def __init__(
        self,
        name: str,
        families: "set[str]",
        cluster: "SimCluster",
        split_keys: "list[str] | None" = None,
        max_region_bytes: int = DEFAULT_MAX_REGION_BYTES,
    ) -> None:
        self.name = name
        self.families = set(families)
        self.cluster = cluster
        self.max_region_bytes = max_region_bytes
        boundaries = sorted(split_keys or [])
        starts: list[str | None] = [None, *boundaries]
        stops: list[str | None] = [*boundaries, None]
        self.regions: list[Region] = [
            Region(start, stop, cluster.next_worker())
            for start, stop in zip(starts, stops)
        ]
        # region start keys for binary-search routing (None sorts first)
        self._start_keys = boundaries
        # serializes mutations and schema changes; splits rebind the region
        # list so lock-free readers route against a consistent snapshot
        self._lock = threading.RLock()
        #: set by the owning Store: called as ``(table name, family)`` after
        #: a family drop so statistics/plan caches can invalidate
        self.on_family_drop: "Callable[[str, str], None] | None" = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreTable({self.name!r}, {len(self.regions)} regions)"

    def check_family(self, family: str) -> None:
        if family not in self.families:
            raise ColumnFamilyNotFoundError(self.name, family)

    def add_family(self, family: str) -> None:
        """Online schema change: add a column family."""
        with self._lock:
            self.families.add(family)

    def drop_family(self, family: str) -> None:
        """Online schema change: drop a column family and its data (the
        HBase admin ``deleteColumnFamily`` analogue, unmetered).  Notifies
        the store's family-drop listeners (statistics/plan caches)."""
        with self._lock:
            self.families.discard(family)
            for region in self.regions:
                region.drop_family(family)
        if self.on_family_drop is not None:
            self.on_family_drop(self.name, family)

    # -- routing -------------------------------------------------------------

    def region_for(self, row: str) -> Region:
        """The region owning ``row``."""
        # routing is lock-free: splits rebind both the region list and the
        # start-key list, so re-reading them retries past a torn snapshot
        for _ in range(3):
            starts = self._start_keys
            regions = self.regions
            index = bisect_right(starts, row)
            if index < len(regions):
                region = regions[index]
                if region.contains(row):
                    return region
        raise RegionError(
            f"routing bug: {row!r} not owned by any region of {self.name!r}"
        )

    def regions_in_range(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> list[Region]:
        """Regions overlapping ``[start_row, stop_row)`` in key order."""
        selected = []
        for region in self.regions:
            if stop_row is not None and region.start_key is not None and region.start_key >= stop_row:
                continue
            if start_row is not None and region.stop_key is not None and region.stop_key <= start_row:
                continue
            selected.append(region)
        return selected

    # -- mutation ------------------------------------------------------------

    def apply(self, cell: Cell) -> None:
        """Route one mutation to its region; may trigger an auto-split."""
        self.check_family(cell.family)
        with self._lock:
            region = self.region_for(cell.row)
            region.apply(cell)
            if region.disk_size > self.max_region_bytes:
                self._try_split(region)

    def apply_batch(self, cells: "list[Cell]") -> int:
        """Route a batch of mutations; returns the number of regions touched.

        Families are checked once per distinct family up front and each cell
        is routed with a single bisect, instead of re-running
        ``check_family`` + ``region_for`` per cell through :meth:`apply`.
        Split checks keep the per-cell timing of :meth:`apply` (a region may
        split mid-batch, exactly as under the old per-cell loop), so bulk
        loads produce the same region layout and the same touched-region
        count — and therefore identical metered costs — as seed.
        """
        # validate up front (atomically — no partial application on a bad
        # family); sorted so the family named in the error is deterministic
        for family in sorted({cell.family for cell in cells}):
            self.check_family(family)
        touched: set[int] = set()
        with self._lock:
            for cell in cells:
                region = self.region_for(cell.row)
                region.apply(cell)
                if region.disk_size > self.max_region_bytes and self._try_split(region):
                    # this cell's apply split its region: its row now lives in
                    # one of the daughters, so re-route for the touched count
                    region = self.region_for(cell.row)
                touched.add(id(region))
        return len(touched)

    def _try_split(self, region: Region) -> tuple[Region, ...]:
        with self._lock:
            split_key = region.midpoint_key()
            if split_key is None:
                return ()
            lower, upper = region.split(split_key, self.cluster.next_worker())
            index = self.regions.index(region)
            # rebind (copy-on-write) rather than splice in place: lock-free
            # readers routing against the old list still see a consistent
            # region set, and the parent region still holds its data
            rebound = [*self.regions[:index], lower, upper, *self.regions[index + 1 :]]
            self.regions = rebound
            self._start_keys = [r.start_key for r in rebound[1:]]  # type: ignore[misc]
            return (lower, upper)

    def flush_all(self) -> None:
        """Flush every region (makes all data durable and scannable)."""
        for region in self.regions:
            region.flush()

    def compact_all(self, major: bool = True) -> None:
        for region in self.regions:
            region.compact(major=major)

    # -- unmetered access (ground truth, tests, reporting) --------------------

    def read_row(self, row: str, families: "set[str] | None" = None) -> RowResult:
        return self.region_for(row).read_row(row, families)

    def all_rows(self, families: "set[str] | None" = None) -> Iterator[RowResult]:
        """Every visible row in key order, without cost accounting."""
        for region in self.regions:
            yield from region.scan_rows(families=families)

    @property
    def disk_size(self) -> int:
        """Durable bytes across all regions (index size reporting)."""
        return sum(region.disk_size for region in self.regions)

    @property
    def total_size(self) -> int:
        return sum(region.total_size for region in self.regions)

    def raw_cell_count(self) -> int:
        return sum(region.raw_cell_count() for region in self.regions)
