"""Regions: the horizontal shards of a table.

Each region owns a half-open row-key range ``[start_key, stop_key)``, a
memtable, a stack of immutable segments, and a WAL, and lives on one worker
node (giving MapReduce its data locality).  Flushes, minor/major compactions
and midpoint splits model the HBase lifecycle closely enough that index
tables shard and spread across the cluster the way §4.1.1 describes
("if the table is split up/sharded and distributed across the NoSQL store
nodes, index entries for the same join values across all indexed tables are
stored next to each other on the same node").
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import RegionError
from repro.store.cell import (
    Cell,
    RowResult,
    iter_row_results,
    iter_visible,
    resolve_versions,
)
from repro.store.memtable import MemTable
from repro.store.sstable import SSTable, compact
from repro.store.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import Node

#: flush the memtable when it exceeds this many bytes
DEFAULT_FLUSH_THRESHOLD = 4 * 1024 * 1024
#: compact when this many segments accumulate
DEFAULT_COMPACTION_TRIGGER = 4


class Region:
    """One key-range shard of a table, hosted on a node."""

    def __init__(
        self,
        start_key: "str | None",
        stop_key: "str | None",
        node: "Node",
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        compaction_trigger: int = DEFAULT_COMPACTION_TRIGGER,
    ) -> None:
        if start_key is not None and stop_key is not None and start_key >= stop_key:
            raise RegionError(f"empty region range [{start_key!r}, {stop_key!r})")
        self.start_key = start_key
        self.stop_key = stop_key
        self.node = node
        self.flush_threshold = flush_threshold
        self.compaction_trigger = compaction_trigger
        self.memtable = MemTable()
        self.sstables: list[SSTable] = []
        self.wal = WriteAheadLog()
        # serializes the mutation path (apply/flush/compact/drop_family);
        # readers are lock-free against rebound-snapshot structures
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Region([{self.start_key!r}, {self.stop_key!r}) "
            f"on {self.node.hostname}, {self.disk_size} bytes)"
        )

    # -- key-range bookkeeping ---------------------------------------------

    def contains(self, row: str) -> bool:
        """True iff ``row`` belongs to this region's range."""
        if self.start_key is not None and row < self.start_key:
            return False
        if self.stop_key is not None and row >= self.stop_key:
            return False
        return True

    @property
    def disk_size(self) -> int:
        """Bytes in durable segments (what a mapper scan must read)."""
        return sum(sstable.byte_size for sstable in self.sstables)

    @property
    def total_size(self) -> int:
        return self.disk_size + self.memtable.byte_size

    # -- mutation path ------------------------------------------------------

    def apply(self, cell: Cell) -> None:
        """Apply one mutation (put or tombstone) with WAL + memtable."""
        if not self.contains(cell.row):
            raise RegionError(
                f"row {cell.row!r} outside region [{self.start_key!r}, "
                f"{self.stop_key!r})"
            )
        with self._lock:
            self.wal.append(cell)
            self.memtable.add(cell)
            if self.memtable.byte_size >= self.flush_threshold:
                self.flush()

    def apply_all(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.apply(cell)

    def flush(self) -> None:
        """Persist the memtable as a new immutable segment.

        The segment is *published* (sstable list rebound) before the
        memtable is drained: a concurrent reader sees the cells in the
        memtable, in both structures (duplicates resolve to the same
        visible versions), or in the segment — never in neither.
        """
        with self._lock:
            if self.memtable.empty:
                return
            self.wal.mark_flushed()
            segment = SSTable(self.memtable.sorted_cells(), presorted=True)
            self.sstables = [*self.sstables, segment]
            self.memtable.drain()
            self.wal.truncate_flushed()
            if len(self.sstables) >= self.compaction_trigger:
                self.compact(major=False)

    def compact(self, major: bool = True) -> None:
        """Merge all segments into one (major drops tombstoned data)."""
        with self._lock:
            if not self.sstables:
                return
            self.sstables = [compact(self.sstables, drop_deletes=major)]

    def drop_family(self, family: str) -> None:
        """Physically discard every cell of ``family`` (memtable, WAL, and
        segments) — the per-region half of a schema-level family drop."""
        with self._lock:
            self.memtable.drop_family(family)
            self.wal.drop_family(family)
            rebuilt = []
            for sstable in self.sstables:
                kept = [cell for cell in sstable.cells() if cell.family != family]
                if len(kept) == len(sstable):
                    rebuilt.append(sstable)
                elif kept:
                    rebuilt.append(SSTable(kept, presorted=True))
            self.sstables = rebuilt

    # -- read path ------------------------------------------------------------

    def _raw_cells_for_row(self, row: str) -> list[Cell]:
        cells = self.memtable.cells_for_row(row)
        for sstable in self.sstables:
            cells.extend(sstable.cells_for_row(row))
        return cells

    def read_row(self, row: str, families: "set[str] | None" = None) -> RowResult:
        """Visible cells of one row (point get)."""
        cells = resolve_versions(self._raw_cells_for_row(row))
        if families is not None:
            cells = [c for c in cells if c.family in families]
        return RowResult(row, cells)

    def merged_cells(
        self, start_row: "str | None" = None, stop_row: "str | None" = None
    ) -> Iterator[Cell]:
        """Raw cells of ``[start_row, stop_row)`` as a lazy k-way merge.

        Each source (memtable + every SSTable) is seeked to ``start_row`` by
        binary search and merged in KeyValue order; nothing past the last
        cell consumed is ever touched.  The memtable is listed first so that
        timestamp ties resolve in its favour, like the eager concat did.
        """
        lo = self._clamp_start(start_row)
        hi = self._clamp_stop(stop_row)
        sources: list[Iterator[Cell]] = []
        if not self.memtable.empty:
            sources.append(self.memtable.iter_range(lo, hi))
        sources.extend(
            sstable.iter_range(lo, hi)
            for sstable in self.sstables
            if not sstable.empty
        )
        if not sources:
            return iter(())
        if len(sources) == 1:
            # common post-flush case: one segment, no merge overhead
            return sources[0]
        return heapq.merge(*sources, key=Cell.sort_key)

    def scan_rows(
        self,
        start_row: "str | None" = None,
        stop_row: "str | None" = None,
        families: "set[str] | None" = None,
    ) -> Iterator[RowResult]:
        """Resolved rows in ``[start_row, stop_row)`` within this region.

        A generator: versions are resolved in one streaming pass over the
        merged sources, so consuming only k rows (a ``limit``-ed scan) costs
        O(k) cells, not O(region).
        """
        return iter_row_results(
            iter_visible(self.merged_cells(start_row, stop_row)), families
        )

    def raw_cell_count(self) -> int:
        """Raw stored cells (for dollar-cost accounting of full scans)."""
        return len(self.memtable) + sum(len(s) for s in self.sstables)

    def _clamp_start(self, start_row: "str | None") -> "str | None":
        if start_row is None:
            return self.start_key
        if self.start_key is None:
            return start_row
        return max(start_row, self.start_key)

    def _clamp_stop(self, stop_row: "str | None") -> "str | None":
        if stop_row is None:
            return self.stop_key
        if self.stop_key is None:
            return stop_row
        return min(stop_row, self.stop_key)

    # -- splitting ----------------------------------------------------------

    def midpoint_key(self) -> "str | None":
        """Median distinct row key, or ``None`` if the region cannot split.

        The candidate must leave BOTH daughters non-empty: the split
        contract routes ``row < split_key`` to the lower daughter and
        ``row >= split_key`` to the upper, so a candidate at (or below —
        defensive against skewed inputs) the smallest stored key would
        produce an empty lower region that keeps its routing range forever
        without ever holding a row.  A region whose cells all share one
        row key therefore reports "cannot split" rather than degenerating.
        """
        rows = sorted({cell.row for cell in self.all_raw_cells()})
        if len(rows) < 2:
            return None
        middle = rows[len(rows) // 2]
        if middle <= rows[0]:
            return None
        return middle

    def all_raw_cells(self) -> list[Cell]:
        cells = list(self.memtable.cells())
        for sstable in self.sstables:
            cells.extend(sstable.cells())
        return cells

    def split(self, split_key: str, new_node: "Node") -> tuple["Region", "Region"]:
        """Split into two daughters at ``split_key``; the upper half moves to
        ``new_node``."""
        if not self.contains(split_key):
            raise RegionError(
                f"split key {split_key!r} outside region "
                f"[{self.start_key!r}, {self.stop_key!r})"
            )
        lower = Region(
            self.start_key, split_key, self.node,
            self.flush_threshold, self.compaction_trigger,
        )
        upper = Region(
            split_key, self.stop_key, new_node,
            self.flush_threshold, self.compaction_trigger,
        )
        for cell in self.all_raw_cells():
            target = lower if cell.row < split_key else upper
            target.wal.append(cell)
            target.memtable.add(cell)
        lower.flush()
        upper.flush()
        return lower, upper
