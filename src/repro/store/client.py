"""Client API of the store: Store (admin) and HTable (data path).

The interface intentionally mirrors HBase's client classes (``Put``,
``Get``, ``Delete``, ``Scan``, ``HTable``), because the paper's algorithms
are expressed in those terms — point gets for BFHM reverse mappings, batched
scans with row caching for ISL ("HBase scans with a non-zero rowcache
size"), and server-side filters for DRJN.

Every metered operation charges the :class:`~repro.cluster.simulation.SimContext`:
RPC round trips, network bytes, server disk reads, and KV read units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cluster.simulation import SimContext
from repro.errors import InvalidMutationError, TableExistsError, TableNotFoundError
from repro.store.cell import Cell, RowResult
from repro.store.filters import Filter
from repro.store.scanner import RegionScanner
from repro.store.table import StoreTable

#: approximate request header size charged per RPC
REQUEST_OVERHEAD_BYTES = 64


@dataclass
class Put:
    """A batched write of one or more cells to a single row."""

    row: str
    cells: list[tuple[str, str, bytes]] = field(default_factory=list)
    timestamp: "int | None" = None

    def add(self, family: str, qualifier: str, value: bytes) -> "Put":
        """Add a column write; returns self for chaining."""
        self.cells.append((family, qualifier, value))
        return self

    def serialized_size(self) -> int:
        """On-wire size (drives shuffle/network accounting when Puts are
        emitted through MapReduce)."""
        row = len(self.row.encode("utf-8"))
        return 8 + sum(
            row
            + len(family.encode("utf-8"))
            + len(qualifier.encode("utf-8"))
            + len(value)
            for family, qualifier, value in self.cells
        )


@dataclass
class Get:
    """A point read of one row (optionally restricted to families)."""

    row: str
    families: "set[str] | None" = None


@dataclass
class Delete:
    """A tombstone for a whole row or a single column."""

    row: str
    family: "str | None" = None
    qualifier: "str | None" = None
    timestamp: "int | None" = None


@dataclass
class Scan:
    """A range scan with HBase-style row caching (batching).

    ``caching`` is the number of rows fetched per RPC round trip — the
    knob §4.2.3 tunes: larger batches amortize RPC latency at the price of
    possibly shipping more rows than the algorithm ends up needing.
    """

    start_row: "str | None" = None
    stop_row: "str | None" = None
    families: "set[str] | None" = None
    caching: int = 100
    filter: "Filter | None" = None
    limit: "int | None" = None
    #: opt-in parallel scan: on a multi-server topology, regions are
    #: scanned per region server concurrently and gathered back in key
    #: order.  Only unlimited scans scatter — a ``limit`` relies on
    #: serial early termination, and prefetching every region would
    #: charge work the serial model never performs.
    scatter: bool = False


class Store:
    """Administrative entry point: table lifecycle + HTable handles."""

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self._tables: dict[str, StoreTable] = {}
        # called as (table name, family-or-None) after a family or table
        # drop; statistics catalogs register here so cached statistics and
        # plans derived from dropped index data are invalidated
        self._drop_listeners: "list" = []

    def add_drop_listener(self, listener) -> None:
        """Register a ``(table_name, family | None)`` callable notified
        after every family drop (family set) or table drop (family None)."""
        if listener not in self._drop_listeners:
            self._drop_listeners.append(listener)

    def _notify_drop(self, table_name: str, family: "str | None") -> None:
        for listener in list(self._drop_listeners):
            listener(table_name, family)

    def create_table(
        self,
        name: str,
        families: "set[str]",
        split_keys: "list[str] | None" = None,
        max_region_bytes: "int | None" = None,
    ) -> "HTable":
        """Create a table (optionally pre-split) and return a handle."""
        if name in self._tables:
            raise TableExistsError(name)
        kwargs = {}
        if max_region_bytes is not None:
            kwargs["max_region_bytes"] = max_region_bytes
        table = StoreTable(
            name, families, self.ctx.cluster, split_keys, **kwargs
        )
        table.on_family_drop = self._notify_drop
        self._tables[name] = table
        return HTable(self, table)

    def table(self, name: str) -> "HTable":
        """Handle to an existing table."""
        try:
            return HTable(self, self._tables[name])
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]
        self._notify_drop(name, None)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def backing(self, name: str) -> StoreTable:
        """Raw (unmetered) table object, for tests/reporting/MR locality."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None


class HTable:
    """Metered data-path handle to one table."""

    def __init__(self, store: Store, table: StoreTable) -> None:
        self.store = store
        self.table = table
        self.ctx = store.ctx

    @property
    def name(self) -> str:
        return self.table.name

    # -- writes ---------------------------------------------------------------

    def _cells_of_put(self, put: Put) -> list[Cell]:
        if not put.row:
            raise InvalidMutationError("empty row key")
        if not put.cells:
            raise InvalidMutationError(f"Put for {put.row!r} has no cells")
        timestamp = (
            put.timestamp if put.timestamp is not None else self.ctx.next_timestamp()
        )
        return [
            Cell(put.row, family, qualifier, value, timestamp)
            for family, qualifier, value in put.cells
        ]

    def put(self, put: Put) -> None:
        """Write one row mutation (row-level atomic)."""
        self.put_batch([put])

    def put_batch(self, puts: "list[Put]") -> None:
        """Write many mutations with one RPC per region touched.

        Charged costs: client->server transfer of all cells, plus WAL
        replication copies across the HDFS substrate.
        """
        cells = [cell for put in puts for cell in self._cells_of_put(put)]
        self._apply_metered(cells)

    def delete_batch(self, deletes: "list[Delete]") -> None:
        """Write many column tombstones with one RPC per region touched.

        Only column-level deletes batch (a whole-row delete needs a metered
        read to discover the row's columns first — issue those through
        :meth:`delete` individually).
        """
        cells: list[Cell] = []
        for delete in deletes:
            if delete.family is None:
                raise InvalidMutationError(
                    f"delete_batch cannot batch the whole-row delete of "
                    f"{delete.row!r}; use delete()"
                )
            timestamp = (
                delete.timestamp
                if delete.timestamp is not None
                else self.ctx.next_timestamp()
            )
            qualifier = delete.qualifier if delete.qualifier is not None else ""
            cells.append(
                Cell(delete.row, delete.family, qualifier, b"", timestamp, True)
            )
        self._apply_metered(cells)

    def delete(self, delete: Delete) -> None:
        """Tombstone a row or column."""
        if delete.family is not None:
            # single column tombstone: same encoding, metering, and
            # single-cell batch as a one-element delete_batch
            self.delete_batch([delete])
            return
        # whole-row delete: tombstone every existing column of the row.
        # Discovering those columns is a real data-path read (a point
        # get of the row), so it is charged exactly like HTable.get —
        # reading through the backing table would silently bypass the
        # meter and understate delete-heavy workloads
        timestamp = (
            delete.timestamp
            if delete.timestamp is not None
            else self.ctx.next_timestamp()
        )
        region = self.table.region_for(delete.row)
        existing = region.read_row(delete.row, None)
        self.ctx.charge_server_read(
            existing.serialized_size(), max(len(existing), 1),
            sequential=False,
        )
        self.ctx.charge_rpc(
            REQUEST_OVERHEAD_BYTES + len(delete.row),
            existing.serialized_size(),
        )
        if existing.empty:
            return
        self._apply_metered(
            [
                Cell(delete.row, cell.family, cell.qualifier, b"", timestamp, True)
                for cell in existing.cells
            ]
        )

    def _apply_metered(self, cells: "list[Cell]") -> None:
        if not cells:
            return
        model = self.ctx.cost_model
        payload = sum(cell.serialized_size() for cell in cells)
        if self.ctx.topology.parallel:
            plan = self._route_mutations(cells)
            if len(plan) > 1:
                # the table write itself is serialized by the region lock
                # either way; multi-server pricing charges each server's
                # share of the WAL/replication pipeline as a parallel round
                self.table.apply_batch(cells)
                replicated = payload * (model.hdfs_replication - 1)
                self.ctx.metrics.add_network(payload + replicated)
                per_server = [
                    region_count * model.rpc_latency_s
                    + model.network_time(server_payload * model.hdfs_replication)
                    for region_count, server_payload in plan.values()
                ]
                self.ctx.metrics.advance_time(
                    model.scatter_round_time(per_server)
                )
                self.ctx.metrics.bump("fanout_rounds")
                self.ctx.metrics.bump("fanout_rounds_mutate")
                return
        regions_touched = self.table.apply_batch(cells)
        # client -> server transfer + WAL replication (HDFS pipeline writes
        # replication-1 extra copies across the network)
        replicated = payload * (model.hdfs_replication - 1)
        self.ctx.metrics.add_network(payload + replicated)
        self.ctx.metrics.advance_time(
            regions_touched * model.rpc_latency_s
            + model.network_time(payload + replicated)
        )

    def _route_mutations(
        self, cells: "list[Cell]"
    ) -> "dict[int, tuple[int, int]]":
        """Group a mutation batch by region server: server id -> (distinct
        regions touched, payload bytes), in first-touch order.  Routed
        against the pre-write region map — a mid-batch split may shift a
        region boundary, but pricing against the routing the client saw is
        exactly what a real scatter client would pay."""
        topology = self.ctx.topology
        regions_by_server: "dict[int, set[int]]" = {}
        payload_by_server: "dict[int, int]" = {}
        for cell in cells:
            region = self.table.region_for(cell.row)
            server_id = topology.server_for(region)
            regions_by_server.setdefault(server_id, set()).add(id(region))
            payload_by_server[server_id] = (
                payload_by_server.get(server_id, 0) + cell.serialized_size()
            )
        return {
            server_id: (len(regions_by_server[server_id]), payload)
            for server_id, payload in payload_by_server.items()
        }

    # -- reads ------------------------------------------------------------------

    def get(self, get: Get) -> RowResult:
        """Metered point read of one row."""
        region = self.table.region_for(get.row)
        result = region.read_row(get.row, get.families)
        response = result.serialized_size()
        self.ctx.charge_server_read(
            response, max(len(result), 1), sequential=False
        )
        self.ctx.charge_rpc(REQUEST_OVERHEAD_BYTES + len(get.row), response)
        return result

    def multi_get(self, gets: "list[Get]") -> list[RowResult]:
        """Batched point reads: one RPC per region touched (HBase multi-get).

        Server-side read costs are identical to individual gets; only the
        per-row RPC latency is amortized.  On a multi-server topology the
        per-server slices execute as one parallel scatter round (results
        still return in request order); single-server stays on the seed
        serial path bit-for-bit.
        """
        if self.ctx.topology.parallel and len(gets) > 1:
            groups: "dict[int, list[int]]" = {}
            for index, get in enumerate(gets):
                region = self.table.region_for(get.row)
                server_id = self.ctx.topology.server_for(region)
                groups.setdefault(server_id, []).append(index)
            if len(groups) > 1:
                return self._multi_get_scatter(gets, groups)
        results: list[RowResult] = []
        regions_touched = set()
        request_bytes = 0
        response_bytes = 0
        for get in gets:
            region = self.table.region_for(get.row)
            regions_touched.add(id(region))
            result = region.read_row(get.row, get.families)
            self.ctx.charge_server_read(
                result.serialized_size(), max(len(result), 1), sequential=False
            )
            request_bytes += len(get.row)
            response_bytes += result.serialized_size()
            results.append(result)
        if gets:
            model = self.ctx.cost_model
            # one RPC per region touched, so one request header each
            request_bytes += REQUEST_OVERHEAD_BYTES * len(regions_touched)
            total = request_bytes + response_bytes
            self.ctx.metrics.add_network(total)
            self.ctx.metrics.advance_time(
                len(regions_touched) * model.rpc_latency_s
                + model.network_time(total)
            )
        return results

    def _multi_get_scatter(
        self, gets: "list[Get]", groups: "dict[int, list[int]]"
    ) -> list[RowResult]:
        """One parallel multi-get round: each region server resolves its
        slice (charging its reads and per-region RPCs inside the round's
        captured queue), and the client gathers responses back into
        request order.  Counters match the serial path exactly; only the
        simulated time becomes max-over-servers plus dispatch overhead.
        """
        from repro.cluster.executor import ScatterTask, scatter_gather

        def server_slice(indices: "list[int]"):
            def run() -> "list[tuple[int, RowResult]]":
                model = self.ctx.cost_model
                picked: "list[tuple[int, RowResult]]" = []
                regions_touched = set()
                request_bytes = 0
                response_bytes = 0
                for index in indices:
                    get = gets[index]
                    region = self.table.region_for(get.row)
                    regions_touched.add(id(region))
                    result = region.read_row(get.row, get.families)
                    self.ctx.charge_server_read(
                        result.serialized_size(),
                        max(len(result), 1),
                        sequential=False,
                    )
                    request_bytes += len(get.row)
                    response_bytes += result.serialized_size()
                    picked.append((index, result))
                request_bytes += REQUEST_OVERHEAD_BYTES * len(regions_touched)
                total = request_bytes + response_bytes
                self.ctx.metrics.add_network(total)
                self.ctx.metrics.advance_time(
                    len(regions_touched) * model.rpc_latency_s
                    + model.network_time(total)
                )
                return picked

            return run

        tasks = [
            ScatterTask(server_id, server_slice(indices))
            for server_id, indices in groups.items()
        ]
        gathered = scatter_gather(self.ctx, tasks, label="multi_get")
        results: "list[RowResult | None]" = [None] * len(gets)
        for slice_results in gathered:
            for index, result in slice_results:
                results[index] = result
        return results  # type: ignore[return-value]

    def scan(self, scan: Scan) -> Iterator[RowResult]:
        """Metered scan honoring batching, filters, and limits."""
        return iter(RegionScanner(self, scan))

    def scan_all(self, scan: "Scan | None" = None) -> list[RowResult]:
        """Convenience: materialize a full scan."""
        return list(self.scan(scan or Scan()))

    # -- introspection -------------------------------------------------------------

    @property
    def disk_size(self) -> int:
        return self.table.disk_size

    def flush(self) -> None:
        self.table.flush_all()
