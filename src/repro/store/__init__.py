"""A faithful in-process model of an HBase/BigTable-style NoSQL store.

The data model follows §1 of the paper: key-value pairs
``{row key, column family, column qualifier, value, timestamp}``, tables as
ordered collections of KV pairs, rows as same-key collections, and column
families as vertical partitions.  Supported operations mirror what the
paper's algorithms use: point gets, batched sequential scans (with row
caching), puts/deletes with timestamps, server-side filters, and row-level
atomicity.  Tables are horizontally partitioned into regions placed on
simulated cluster nodes; every client operation is charged to the
simulation's cost model.
"""

from repro.store.cell import Cell, RowResult
from repro.store.client import Delete, Get, HTable, Put, Scan, Store
from repro.store.filters import (
    ColumnValueFilter,
    Filter,
    QualifierPrefixFilter,
    RowRangeFilter,
    ScoreThresholdFilter,
)
from repro.store.region import Region

__all__ = [
    "Cell",
    "RowResult",
    "Delete",
    "Get",
    "HTable",
    "Put",
    "Scan",
    "Store",
    "ColumnValueFilter",
    "Filter",
    "QualifierPrefixFilter",
    "RowRangeFilter",
    "ScoreThresholdFilter",
    "Region",
]
