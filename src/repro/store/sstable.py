"""Immutable sorted segments (HBase HFile / Bigtable SSTable equivalents).

Flushes turn a memtable into an :class:`SSTable`; compactions merge several
into one, dropping masked versions and tombstones.  Row-level lookups use
binary search over the sorted cell array, mimicking the block-index access
of real HFiles.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.store.cell import Cell, resolve_versions


class SSTable:
    """An immutable, sorted run of cells."""

    def __init__(self, cells: Iterable[Cell]) -> None:
        self._cells = sorted(cells, key=Cell.sort_key)
        self._rows = [cell.row for cell in self._cells]
        self.byte_size = sum(cell.serialized_size() for cell in self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def empty(self) -> bool:
        return not self._cells

    @property
    def first_row(self) -> "str | None":
        return self._rows[0] if self._rows else None

    @property
    def last_row(self) -> "str | None":
        return self._rows[-1] if self._rows else None

    def cells(self) -> Iterator[Cell]:
        return iter(self._cells)

    def cells_for_row(self, row: str) -> list[Cell]:
        """Raw cells of one row via binary search."""
        lo = bisect_left(self._rows, row)
        hi = bisect_right(self._rows, row)
        return self._cells[lo:hi]

    def cells_in_range(self, start_row: "str | None", stop_row: "str | None") -> list[Cell]:
        """Raw cells with ``start_row <= row < stop_row``."""
        lo = 0 if start_row is None else bisect_left(self._rows, start_row)
        hi = len(self._rows) if stop_row is None else bisect_left(self._rows, stop_row)
        return self._cells[lo:hi]


def compact(sstables: "list[SSTable]", drop_deletes: bool = True) -> SSTable:
    """Merge segments into one, resolving versions.

    With ``drop_deletes`` (a major compaction) tombstones and the versions
    they mask disappear entirely; otherwise raw cells are just merged.
    """
    merged: list[Cell] = []
    for sstable in sstables:
        merged.extend(sstable.cells())
    if drop_deletes:
        merged = resolve_versions(merged)
    return SSTable(merged)
