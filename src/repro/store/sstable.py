"""Immutable sorted segments (HBase HFile / Bigtable SSTable equivalents).

Flushes turn a memtable into an :class:`SSTable`; compactions heap-merge
several into one, dropping masked versions and tombstones.  Row-level
lookups use binary search over the sorted cell array, mimicking the
block-index access of real HFiles, and range reads are served as lazy
iterators so a merge scan can stop after a handful of cells.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.store.cell import Cell, iter_visible


class SSTable:
    """An immutable, sorted run of cells.

    ``presorted=True`` skips the construction sort for cell runs already in
    KeyValue order (flush output, heap-merged compactions).
    """

    def __init__(self, cells: Iterable[Cell], *, presorted: bool = False) -> None:
        if presorted:
            self._cells = list(cells)
        else:
            self._cells = sorted(cells, key=Cell.sort_key)
        self._rows = [cell.row for cell in self._cells]
        self.byte_size = sum(cell.serialized_size() for cell in self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def empty(self) -> bool:
        return not self._cells

    @property
    def first_row(self) -> "str | None":
        return self._rows[0] if self._rows else None

    @property
    def last_row(self) -> "str | None":
        return self._rows[-1] if self._rows else None

    def cells(self) -> Iterator[Cell]:
        return iter(self._cells)

    def cells_for_row(self, row: str) -> list[Cell]:
        """Raw cells of one row via binary search."""
        lo = bisect_left(self._rows, row)
        hi = bisect_right(self._rows, row)
        return self._cells[lo:hi]

    def _range_bounds(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> tuple[int, int]:
        lo = 0 if start_row is None else bisect_left(self._rows, start_row)
        hi = len(self._rows) if stop_row is None else bisect_left(self._rows, stop_row)
        return lo, hi

    def cells_in_range(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> list[Cell]:
        """Raw cells with ``start_row <= row < stop_row``, materialized."""
        return list(self.iter_range(start_row, stop_row))

    def iter_range(
        self, start_row: "str | None", stop_row: "str | None"
    ) -> Iterator[Cell]:
        """Lazy variant of :meth:`cells_in_range`: seeks by binary search and
        yields one cell at a time, so an early-terminating merge scan touches
        O(cells consumed), not O(range)."""
        lo, hi = self._range_bounds(start_row, stop_row)
        cells = self._cells
        for index in range(lo, hi):
            yield cells[index]


def compact(sstables: "list[SSTable]", drop_deletes: bool = True) -> SSTable:
    """Heap-merge segments into one, resolving versions in a single pass.

    Each input segment is already sorted, so a k-way ``heapq.merge`` yields
    the combined run in KeyValue order without re-sorting.  With
    ``drop_deletes`` (a major compaction) tombstones and the versions they
    mask disappear entirely via the streaming resolver; otherwise raw cells
    are just merged.
    """
    merged: Iterable[Cell] = heapq.merge(
        *(sstable.cells() for sstable in sstables), key=Cell.sort_key
    )
    if drop_deletes:
        merged = iter_visible(merged)
    return SSTable(merged, presorted=True)
