"""Write-ahead logging: sequence-numbered, checkpointable mutation logs.

Durability in HBase comes from appending every mutation to an HDFS-backed
WAL before acknowledging it (§1: "fault tolerant through replication,
write-ahead logging, and data repair mechanisms").  Two log shapes share
one substrate here:

* :class:`WriteAheadLog` — the per-region cell log.  A region replays it
  over its durable segments after a crash, and truncates the flushed
  prefix on log rolling.
* :class:`SequencedLog` — the generic base: an append-only list of
  :class:`WALRecord` entries, each carrying a monotonically increasing
  **sequence number**, plus a durable **checkpoint marker**.  The async
  maintenance pipeline (:mod:`repro.maintenance.worker`) logs logical
  mutations here; everything after the checkpoint is exactly the replay
  set after a worker crash.

Byte accounting is incremental: every record caches its serialized size at
append time, so truncation and family drops adjust ``byte_size`` in
O(affected entries) instead of rescanning the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import WALError
from repro.store.cell import Cell


@dataclass(frozen=True)
class WALRecord:
    """One logged entry: payload plus its sequence number and cached size."""

    sequence: int
    payload: Any
    size: int
    #: column family of a cell payload (``None`` for logical records);
    #: cached so :meth:`WriteAheadLog.drop_family` never re-inspects payloads
    family: "str | None" = None


class SequencedLog:
    """Append-only log with per-entry sequence numbers and a checkpoint.

    Sequences start at 1 and never repeat, even across truncations.  The
    **checkpoint marker** records the highest sequence whose effects are
    durable downstream (flushed to segments, or applied by the maintenance
    worker): :meth:`entries_after` the checkpoint is precisely what a
    crash-recovery replay must reprocess, and :meth:`truncate_to` reclaims
    everything at or below it.
    """

    def __init__(self) -> None:
        self._records: list[WALRecord] = []
        self.byte_size = 0
        self._next_sequence = 1
        self._checkpoint_sequence = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- appending -----------------------------------------------------------

    def append_payload(
        self, payload: Any, size: int, family: "str | None" = None
    ) -> WALRecord:
        """Log one entry; returns the :class:`WALRecord` with its sequence."""
        record = WALRecord(self._next_sequence, payload, size, family)
        self._next_sequence += 1
        self._records.append(record)
        self.byte_size += size
        return record

    # -- sequence bookkeeping -------------------------------------------------

    @property
    def last_sequence(self) -> int:
        """Sequence of the most recently appended entry (0 when none yet)."""
        return self._next_sequence - 1

    @property
    def checkpoint_sequence(self) -> int:
        """Highest sequence known durable downstream (0 = nothing yet)."""
        return self._checkpoint_sequence

    def checkpoint(self, sequence: "int | None" = None) -> int:
        """Durably mark everything up to ``sequence`` (default: the whole
        log) as applied; returns the new checkpoint.  Checkpoints only move
        forward — recovery depends on the marker being monotonic."""
        if sequence is None:
            sequence = self.last_sequence
        if sequence > self.last_sequence:
            raise WALError(
                f"checkpoint {sequence} beyond last sequence {self.last_sequence}"
            )
        if sequence < self._checkpoint_sequence:
            raise WALError(
                f"checkpoint {sequence} would move backwards past "
                f"{self._checkpoint_sequence}"
            )
        self._checkpoint_sequence = sequence
        return sequence

    def entries_after(self, sequence: int) -> list[WALRecord]:
        """Retained records with a sequence strictly greater than
        ``sequence`` — the crash-replay set when called with the
        checkpoint."""
        return [record for record in self._records if record.sequence > sequence]

    def records(self) -> list[WALRecord]:
        """All retained records, oldest first."""
        return list(self._records)

    # -- truncation -----------------------------------------------------------

    def truncate_to(self, sequence: "int | None" = None) -> int:
        """Drop records at or below ``sequence`` (default: the checkpoint);
        returns bytes reclaimed.  Accounting is incremental — only the
        dropped entries' cached sizes are summed."""
        if sequence is None:
            sequence = self._checkpoint_sequence
        keep_from = 0
        reclaimed = 0
        for record in self._records:
            if record.sequence > sequence:
                break
            keep_from += 1
            reclaimed += record.size
        if keep_from:
            self._records = self._records[keep_from:]
            self.byte_size -= reclaimed
        return reclaimed


class WriteAheadLog(SequencedLog):
    """Append-only cell-mutation log of one region, with byte accounting.

    Extends :class:`SequencedLog` with the region-server lifecycle: a
    flush marks the logged prefix durable (``mark_flushed``), log rolling
    reclaims it (``truncate_flushed``), and an administrative family drop
    discards matching entries so a crash replay cannot resurrect dropped
    data.  Every entry carries a sequence number, so crash-recovery tests
    and the maintenance pipeline can reason about exact replay positions.
    """

    def __init__(self) -> None:
        super().__init__()
        self._sync_marker = 0

    def append(self, cell: Cell) -> int:
        """Log one mutation; returns its serialized size."""
        return self.append_payload(cell, cell.serialized_size(), cell.family).size

    def mark_flushed(self) -> None:
        """Record that everything logged so far is durable in segments, so
        the log prefix can be truncated (HBase log rolling).  Also advances
        the checkpoint marker to the flushed sequence."""
        self._sync_marker = len(self._records)
        if self._records:
            self._checkpoint_sequence = max(
                self._checkpoint_sequence, self._records[-1].sequence
            )
        else:
            self._checkpoint_sequence = max(
                self._checkpoint_sequence, self.last_sequence
            )

    def truncate_flushed(self) -> int:
        """Drop entries already persisted; returns bytes reclaimed.

        O(affected entries): the reclaimed total is the sum of the dropped
        records' cached sizes — the retained suffix is never rescanned.
        """
        dropped = self._records[: self._sync_marker]
        self._records = self._records[self._sync_marker :]
        self._sync_marker = 0
        reclaimed = sum(record.size for record in dropped)
        self.byte_size -= reclaimed
        return reclaimed

    def replay(self) -> list[Cell]:
        """Cells that would be recovered after a crash (oldest first)."""
        return [record.payload for record in self._records]

    def drop_family(self, family: str) -> None:
        """Discard unflushed entries of ``family`` (administrative schema
        drop) so a crash replay cannot resurrect dropped data.

        Accounting is incremental: ``byte_size`` drops by exactly the
        removed entries' cached sizes (O(affected); survivors are not
        re-serialized).
        """
        kept: list[WALRecord] = []
        kept_before_marker = 0
        removed_bytes = 0
        for index, record in enumerate(self._records):
            if record.family == family:
                removed_bytes += record.size
                continue
            if index < self._sync_marker:
                kept_before_marker += 1
            kept.append(record)
        self._records = kept
        self._sync_marker = kept_before_marker
        self.byte_size -= removed_bytes
