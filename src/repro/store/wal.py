"""Write-ahead log of a region server.

Durability in HBase comes from appending every mutation to an HDFS-backed
WAL before acknowledging it (§1: "fault tolerant through replication,
write-ahead logging, and data repair mechanisms").  We model the log as an
append-only byte count — enough to charge its replication traffic and to
replay after a simulated crash in tests.
"""

from __future__ import annotations

from repro.store.cell import Cell


class WriteAheadLog:
    """Append-only mutation log with byte accounting."""

    def __init__(self) -> None:
        self._entries: list[Cell] = []
        self.byte_size = 0
        self._sync_marker = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, cell: Cell) -> int:
        """Log one mutation; returns its serialized size."""
        self._entries.append(cell)
        size = cell.serialized_size()
        self.byte_size += size
        return size

    def mark_flushed(self) -> None:
        """Record that everything logged so far is durable in segments, so
        the log prefix can be truncated (HBase log rolling)."""
        self._sync_marker = len(self._entries)

    def truncate_flushed(self) -> int:
        """Drop entries already persisted; returns bytes reclaimed."""
        dropped = self._entries[: self._sync_marker]
        self._entries = self._entries[self._sync_marker :]
        self._sync_marker = 0
        reclaimed = sum(cell.serialized_size() for cell in dropped)
        self.byte_size -= reclaimed
        return reclaimed

    def replay(self) -> list[Cell]:
        """Cells that would be recovered after a crash (for tests)."""
        return list(self._entries)

    def drop_family(self, family: str) -> None:
        """Discard unflushed entries of ``family`` (administrative schema
        drop) so a crash replay cannot resurrect dropped data."""
        kept_before_marker = sum(
            1
            for cell in self._entries[: self._sync_marker]
            if cell.family != family
        )
        self._entries = [
            cell for cell in self._entries if cell.family != family
        ]
        self._sync_marker = kept_before_marker
        self.byte_size = sum(
            cell.serialized_size() for cell in self._entries
        )
