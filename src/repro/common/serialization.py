"""Byte-level encodings and size accounting.

The bandwidth/dollar-cost metrics of the paper (§7.1) are defined over bytes
shipped and key-value pairs read.  To account those faithfully, everything
that crosses a simulated network or lands in the simulated store has a
well-defined serialized size.  We use compact, deterministic encodings:

* strings — UTF-8;
* floats — 8-byte IEEE-754 big-endian;
* score keys — fixed-width decimal strings of the *negated* score, so that
  HBase's ascending-key scans return rows in descending-score order (the
  "kink" of §4.2.2).
"""

from __future__ import annotations

import struct
from typing import Any

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def encode_str(value: str) -> bytes:
    """UTF-8 encode a string."""
    return value.encode("utf-8")


def decode_str(data: bytes) -> str:
    """Inverse of :func:`encode_str`."""
    return data.decode("utf-8")


def encode_float(value: float) -> bytes:
    """Serialize a float as 8 bytes, big-endian IEEE-754."""
    return struct.pack(">d", value)


def decode_float(data: bytes) -> float:
    """Inverse of :func:`encode_float`."""
    return struct.unpack(">d", data)[0]


def encode_score_key(score: float) -> str:
    """Encode a score as a row key that sorts ascending by *descending* score.

    HBase scans ascend; to iterate in decreasing score order the ISL index
    stores negated scores (§4.2.2, Fig. 3).  We use the standard sortable
    IEEE-754 trick: map the double's bit pattern to an order-preserving
    unsigned integer, complement it (descending), and render fixed-width
    hex.  The encoding is *lossless* — tuple scores recovered from index
    keys are bit-exact — and totally ordered for any finite score.
    """
    bits = struct.unpack(">Q", struct.pack(">d", score))[0]
    if bits & _SIGN64:
        ascending = ~bits & _MASK64  # negative floats: reverse order
    else:
        ascending = bits | _SIGN64
    descending = ~ascending & _MASK64
    return f"{descending:016x}"


def decode_score_key(key: str) -> float:
    """Exact inverse of :func:`encode_score_key`."""
    descending = int(key, 16)
    ascending = ~descending & _MASK64
    if ascending & _SIGN64:
        bits = ascending & ~_SIGN64
    else:
        bits = ~ascending & _MASK64
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def sizeof(value: Any) -> int:
    """Serialized size (bytes) of a value for network/storage accounting.

    Handles the primitives the library stores: bytes, str, int, float, bool,
    None, and (recursively) tuples/lists/dicts of those.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, (tuple, list)):
        return 2 + sum(sizeof(v) for v in value)
    if isinstance(value, dict):
        return 2 + sum(sizeof(k) + sizeof(v) for k, v in value.items())
    # dataclass-like objects used internally expose __sizeof_payload__
    payload_size = getattr(value, "serialized_size", None)
    if callable(payload_size):
        return payload_size()
    raise TypeError(f"cannot compute serialized size of {type(value).__name__}")
