"""Runtime lock-order tracking — the dynamic half of repro-lint's RL1xx.

The static checker proves *which lock* guards each attribute; it cannot
prove that two locks are always taken in the same order.  This module
instruments ``threading.Lock`` / ``RLock`` / ``Condition`` so concurrency
tests record the *acquisition-order graph*: a directed edge ``A -> B``
means some thread acquired ``B`` while holding ``A``.  A cycle in that
graph is a latent deadlock — two threads can interleave the two orders —
even if the test run itself never hung.

Locks are identified by **creation site** (``file:line`` of the
constructor call), not by instance: every ``PlanCache`` owns its own
``_lock`` object, but they all play the same role in the hierarchy, so
they share one node.  Self-edges (re-acquiring the same role, e.g. two
sibling instances, or an ``RLock`` re-entered) are ignored.  Only locks
created inside ``src/repro`` are traced; stdlib/third-party locks created
while the tracer is installed pass straight through.

Usage (what the stress/chaos conftest fixture does)::

    tracer = LockTracer()
    tracer.install()
    try:
        ...  # run the concurrent scenario
    finally:
        tracer.uninstall()
    cycle = tracer.find_cycle()
    assert cycle is None, tracer.explain(cycle)

``install``/``uninstall`` patch the ``threading`` factories, so only
locks *created* inside the window are traced.  The documented lock
hierarchy lives in ``docs/ARCHITECTURE.md``; this tracer is how the
stress and chaos suites enforce it.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Callable, Iterable

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

#: path fragment that marks a creation site as "ours" (worth tracing)
_TRACED_FRAGMENT = "repro"

#: the tracer currently patching the ``threading`` factories (at most one)
_INSTALLED: "LockTracer | None" = None
_AT_FORK_REGISTERED = False


def _uninstall_in_forked_child() -> None:
    """Drop inherited tracer state after ``fork()``.

    A forked child inherits the patched factories and the tracer object,
    but none of the parent's threads — a thread that died mid-update may
    have left ``_graph_lock`` held forever, and every recorded edge
    belongs to the parent's run.  Restore the real factories and reset
    the tracer to a fresh, unlocked state so the child can never block on
    (or report from) a tracer it does not own.
    """
    global _INSTALLED
    tracer = _INSTALLED
    if tracer is None:
        return
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]
    threading.Condition = _REAL_CONDITION  # type: ignore[misc]
    tracer._installed = False
    tracer._graph_lock = _REAL_LOCK()
    tracer._edges = {}
    tracer._held = threading.local()
    _INSTALLED = None


def _ensure_at_fork_hook() -> None:
    global _AT_FORK_REGISTERED
    if _AT_FORK_REGISTERED or not hasattr(os, "register_at_fork"):
        return  # pragma: no cover - platforms without fork
    os.register_at_fork(after_in_child=_uninstall_in_forked_child)
    _AT_FORK_REGISTERED = True


def _creation_site(skip: int = 2) -> "tuple[str, int]":
    """(filename, lineno) of the frame that called the lock factory."""
    frame = sys._getframe(skip)
    return (frame.f_code.co_filename, frame.f_lineno)


def _is_traced_site(site: "tuple[str, int]") -> bool:
    filename = site[0].replace("\\", "/")
    return f"/{_TRACED_FRAGMENT}/" in filename and "/src/" in filename


class TracedLock:
    """A lock/condition proxy that reports acquisitions to its tracer.

    Delegates everything to the wrapped primitive; only ``acquire`` /
    ``release`` / ``__enter__`` / ``__exit__`` are intercepted.  Blocking
    ``Condition.wait`` keeps the node on the held stack: the thread is
    asleep while the lock is out of its hands, so no spurious edges can
    be recorded, and the stack is correct again the moment ``wait``
    returns (lock re-acquired).
    """

    def __init__(self, inner: Any, tracer: "LockTracer", site: "tuple[str, int]") -> None:
        self._inner = inner
        self._tracer = tracer
        self._site = site

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._tracer._on_acquire(self._site)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._tracer._on_release(self._site)

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class LockTracer:
    """Collects the lock acquisition-order graph of a test run."""

    def __init__(self) -> None:
        # bookkeeping uses untraced primitives (the tracer must not trace
        # itself into its own graph)
        self._graph_lock = _REAL_LOCK()
        #: directed edges held-site -> acquired-site, with one witness
        #: (thread name) per edge for the failure message
        self._edges: "dict[tuple[tuple[str, int], tuple[str, int]], str]" = {}
        self._held = threading.local()
        self._installed = False

    # -- event hooks (called by TracedLock) -----------------------------------

    def _stack(self) -> "list[tuple[str, int]]":
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, site: "tuple[str, int]") -> None:
        stack = self._stack()
        with self._graph_lock:
            for held in stack:
                if held != site:
                    self._edges.setdefault(
                        (held, site), threading.current_thread().name
                    )
        stack.append(site)

    def _on_release(self, site: "tuple[str, int]") -> None:
        stack = self._stack()
        # locks are almost always released LIFO, but nothing requires it;
        # remove the innermost matching entry
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                return

    # -- installation ---------------------------------------------------------

    def _factory(self, real: "Callable[..., Any]") -> "Callable[..., Any]":
        def make(*args: Any, **kwargs: Any) -> Any:
            inner = real(*args, **kwargs)
            site = _creation_site()
            if not _is_traced_site(site):
                return inner
            return TracedLock(inner, self, site)

        return make

    def install(self) -> "LockTracer":
        """Patch the ``threading`` lock factories; returns self."""
        global _INSTALLED
        if self._installed:
            return self
        _ensure_at_fork_hook()
        threading.Lock = self._factory(_REAL_LOCK)  # type: ignore[misc]
        threading.RLock = self._factory(_REAL_RLOCK)  # type: ignore[misc]
        threading.Condition = self._factory(_REAL_CONDITION)  # type: ignore[misc,assignment]
        self._installed = True
        _INSTALLED = self
        return self

    def uninstall(self) -> None:
        """Restore the real ``threading`` lock factories."""
        global _INSTALLED
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[misc]
        threading.RLock = _REAL_RLOCK  # type: ignore[misc]
        threading.Condition = _REAL_CONDITION  # type: ignore[misc]
        self._installed = False
        if _INSTALLED is self:
            _INSTALLED = None

    def __enter__(self) -> "LockTracer":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- graph queries --------------------------------------------------------

    def edges(self) -> "list[tuple[tuple[str, int], tuple[str, int]]]":
        """The recorded held-site -> acquired-site edges (sorted)."""
        with self._graph_lock:
            return sorted(self._edges)

    def find_cycle(self) -> "list[tuple[str, int]] | None":
        """A list of sites forming an acquisition-order cycle, or None."""
        with self._graph_lock:
            adjacency: "dict[tuple[str, int], list[tuple[str, int]]]" = {}
            for source, target in self._edges:
                adjacency.setdefault(source, []).append(target)
                adjacency.setdefault(target, [])
        state: "dict[tuple[str, int], int]" = {}  # 1 = on path, 2 = done
        path: "list[tuple[str, int]]" = []

        def visit(node: "tuple[str, int]") -> "list[tuple[str, int]] | None":
            state[node] = 1
            path.append(node)
            for succ in adjacency[node]:
                mark = state.get(succ)
                if mark == 1:
                    return path[path.index(succ):] + [succ]
                if mark is None:
                    found = visit(succ)
                    if found is not None:
                        return found
            path.pop()
            state[node] = 2
            return None

        for node in sorted(adjacency):
            if node not in state:
                found = visit(node)
                if found is not None:
                    return found
        return None

    def explain(self, cycle: "Iterable[tuple[str, int]] | None") -> str:
        """Human-readable deadlock report for a :meth:`find_cycle` result."""
        if not cycle:
            return "lock acquisition-order graph is acyclic"
        with self._graph_lock:
            witnesses = dict(self._edges)
        steps = list(cycle)
        lines = ["lock acquisition-order cycle (latent deadlock):"]
        for source, target in zip(steps, steps[1:]):
            thread = witnesses.get((source, target), "?")
            lines.append(
                f"  {source[0]}:{source[1]} held while acquiring "
                f"{target[0]}:{target[1]} (thread {thread})"
            )
        return "\n".join(lines)
