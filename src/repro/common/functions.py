"""Monotone aggregate score functions (the ``f`` of the paper, §1.1).

Rank-join algorithms require the aggregate function to be monotone: if every
individual score of tuple ``a`` is greater than or equal to the corresponding
score of tuple ``b``, then ``f(a) >= f(b)``.  All classes here satisfy that,
and :meth:`AggregateFunction.check_monotone_pair` lets property tests verify
it on concrete inputs.

Q1 of the evaluation uses a product (``P.RetailPrice * L.ExtendedPrice``) and
Q2 a sum (``O.TotalPrice + L.ExtendedPrice``); both are provided, along with
weighted-sum / max / min variants commonly used in the rank-join literature.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import QueryError


class AggregateFunction(ABC):
    """A monotone function combining per-relation scores into a join score."""

    #: short name used by the SQL layer and reports
    name: str = "abstract"

    @abstractmethod
    def combine(self, scores: Sequence[float]) -> float:
        """Combine one score per joined relation into the aggregate score."""

    def __call__(self, *scores: float) -> float:
        return self.combine(scores)

    def upper_bound(self, partial: Sequence[float], maxima: Sequence[float]) -> float:
        """Best attainable score given ``partial`` known scores and per-slot
        maxima for the rest.  ``partial`` entries that are ``None`` are taken
        from ``maxima``.  Used by threshold computations."""
        merged = [m if p is None else p for p, m in zip(partial, maxima)]
        return self.combine(merged)

    def check_monotone_pair(
        self, low: Sequence[float], high: Sequence[float]
    ) -> bool:
        """True iff dominance of ``high`` over ``low`` implies f-ordering."""
        if not all(h >= l for h, l in zip(high, low)):
            return True  # dominance premise does not hold; vacuously fine
        return self.combine(high) >= self.combine(low)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SumFunction(AggregateFunction):
    """``f(s1, ..., sn) = s1 + ... + sn`` — Q2's scoring function."""

    name = "sum"

    def combine(self, scores: Sequence[float]) -> float:
        return math.fsum(scores)


class ProductFunction(AggregateFunction):
    """``f(s1, ..., sn) = s1 * ... * sn`` — Q1's scoring function.

    Monotone on non-negative scores, which is the paper's assumed domain.
    """

    name = "product"

    def combine(self, scores: Sequence[float]) -> float:
        result = 1.0
        for s in scores:
            if s < 0:
                raise QueryError(
                    "ProductFunction requires non-negative scores to stay "
                    f"monotone; got {s}"
                )
            result *= s
        return result


class WeightedSumFunction(AggregateFunction):
    """``f(s1, ..., sn) = w1*s1 + ... + wn*sn`` with non-negative weights."""

    name = "weighted_sum"

    def __init__(self, weights: Sequence[float]) -> None:
        if any(w < 0 for w in weights):
            raise QueryError("weights must be non-negative for monotonicity")
        self.weights = tuple(weights)

    def combine(self, scores: Sequence[float]) -> float:
        if len(scores) != len(self.weights):
            raise QueryError(
                f"expected {len(self.weights)} scores, got {len(scores)}"
            )
        return math.fsum(w * s for w, s in zip(self.weights, scores))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedSumFunction(weights={self.weights})"


class MaxFunction(AggregateFunction):
    """``f(s1, ..., sn) = max(si)``."""

    name = "max"

    def combine(self, scores: Sequence[float]) -> float:
        return max(scores)


class MinFunction(AggregateFunction):
    """``f(s1, ..., sn) = min(si)``."""

    name = "min"

    def combine(self, scores: Sequence[float]) -> float:
        return min(scores)


_REGISTRY: dict[str, AggregateFunction] = {
    "sum": SumFunction(),
    "+": SumFunction(),
    "product": ProductFunction(),
    "*": ProductFunction(),
    "max": MaxFunction(),
    "min": MinFunction(),
}


def resolve_function(name_or_fn: "str | AggregateFunction") -> AggregateFunction:
    """Resolve a function name (``"sum"``, ``"*"``...) or pass through an
    :class:`AggregateFunction` instance."""
    if isinstance(name_or_fn, AggregateFunction):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn.lower()]
    except KeyError:
        raise QueryError(f"unknown aggregate function: {name_or_fn!r}") from None
