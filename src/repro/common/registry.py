"""Registered-by-name functions: the process-boundary task contract.

A child worker process cannot receive a closure — pickling a lambda that
closes over a live :class:`~repro.store.table.StoreTable` (or anything
else in the parent's heap) is both impossible and, where pickle *would*
succeed, a correctness hazard: the child would compute against a stale
copy of the store.  So everything that crosses the process boundary is a
:class:`FnRef` — the *name* of a function registered at import time plus a
small picklable payload — and the worker resolves the name against its own
freshly-imported module graph.

The registry is deliberately an allowlist: only functions that opted in
via :func:`proc_fn` can be named in a ref, so arbitrary callables can
never be smuggled into a worker.  Registration happens at module import,
which makes resolution deterministic on both sides of the boundary: the
ref records the defining module, and a worker that has not imported it yet
does so on first lookup.

Registered functions must be pure functions of ``(payload, *call args)``
apart from charges to the worker-ambient metrics collector (see
:func:`repro.cluster.procpool.worker_metrics`); the parent folds those
charges back in deterministic task order.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

_REGISTRY: "dict[str, Callable[..., Any]]" = {}
_MODULE_OF: "dict[str, str]" = {}


def proc_fn(name: str) -> "Callable[[Callable[..., Any]], Callable[..., Any]]":
    """Decorator registering a function under ``name`` for process tasks.

    Re-registration with the same module+function is idempotent (modules
    may be re-imported); claiming an existing name from a different
    function is an error — names are a global contract.
    """

    def register(fn: "Callable[..., Any]") -> "Callable[..., Any]":
        existing = _REGISTRY.get(name)
        if existing is not None and (
            existing.__module__ != fn.__module__
            or existing.__qualname__ != fn.__qualname__
        ):
            raise ValueError(
                f"proc_fn name {name!r} already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        _REGISTRY[name] = fn
        _MODULE_OF[name] = fn.__module__
        return fn

    return register


@dataclass(frozen=True)
class FnRef:
    """A registered function plus its picklable bound payload.

    ``module`` is recorded at creation so a worker process that has not
    yet imported the defining module can do so before lookup.
    """

    name: str
    module: str
    payload: Any = None


def fn_ref(name: str, payload: Any = None) -> FnRef:
    """Build a ref to a registered function (validates the name now, on
    the parent side, where the defining module is certainly imported)."""
    if name not in _REGISTRY:
        raise KeyError(f"no proc_fn registered under {name!r}")
    return FnRef(name, _MODULE_OF[name], payload)


def lookup(ref: FnRef) -> "Callable[..., Any]":
    """The registered function behind ``ref``, importing its module first
    if this process has not seen it yet (the worker-side path)."""
    fn = _REGISTRY.get(ref.name)
    if fn is None:
        importlib.import_module(ref.module)
        fn = _REGISTRY.get(ref.name)
        if fn is None:
            raise KeyError(
                f"module {ref.module!r} did not register proc_fn {ref.name!r}"
            )
    return fn


def resolve(ref: FnRef) -> "Callable[..., Any]":
    """``ref`` as a plain callable with the payload bound as first arg —
    how the serial and thread execution paths run the very same function
    the process path ships by name."""
    fn = lookup(ref)
    payload = ref.payload

    def bound(*args: Any, **kwargs: Any) -> Any:
        return fn(payload, *args, **kwargs)

    bound.__name__ = f"resolved:{ref.name}"
    return bound
