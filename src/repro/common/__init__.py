"""Shared primitive types and helpers used across the repro package."""

from repro.common.functions import (
    AggregateFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
    MaxFunction,
    MinFunction,
    resolve_function,
)
from repro.common.serialization import (
    encode_str,
    decode_str,
    encode_float,
    decode_float,
    encode_score_key,
    decode_score_key,
    sizeof,
)
from repro.common.types import JoinTuple, ScoredRow

__all__ = [
    "AggregateFunction",
    "ProductFunction",
    "SumFunction",
    "WeightedSumFunction",
    "MaxFunction",
    "MinFunction",
    "resolve_function",
    "encode_str",
    "decode_str",
    "encode_float",
    "decode_float",
    "encode_score_key",
    "decode_score_key",
    "sizeof",
    "JoinTuple",
    "ScoredRow",
]
