"""N-way join result tuples.

§3 notes that "extending the algorithms to multi-way joins is
straightforward"; this module provides the n-ary analogue of
:class:`~repro.common.types.JoinTuple` used by the multi-way operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.functions import AggregateFunction
from repro.common.types import ScoredRow


@dataclass(frozen=True, slots=True)
class MultiJoinTuple:
    """One tuple of an n-way top-k join result."""

    keys: tuple[str, ...]
    join_value: str
    score: float
    scores: tuple[float, ...]

    def sort_key(self) -> tuple:
        """Descending score, then deterministic key order."""
        return (-self.score, self.keys)

    @property
    def arity(self) -> int:
        return len(self.keys)


def combine_rows(
    rows: Sequence[ScoredRow], function: AggregateFunction
) -> MultiJoinTuple:
    """Build the join tuple of one row per relation (equal join values)."""
    join_value = rows[0].join_value
    if any(row.join_value != join_value for row in rows[1:]):
        raise ValueError("combine_rows requires matching join values")
    scores = tuple(row.score for row in rows)
    return MultiJoinTuple(
        keys=tuple(row.row_key for row in rows),
        join_value=join_value,
        score=function.combine(scores),
        scores=scores,
    )


def top_k_multi(tuples: "list[MultiJoinTuple]", k: int) -> list[MultiJoinTuple]:
    """Deterministic top-``k`` selection."""
    return sorted(tuples, key=MultiJoinTuple.sort_key)[:k]
