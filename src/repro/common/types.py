"""Core value types shared by the indexing and query-processing layers.

The paper's data model (§1, §3) is a scored relation: each row has a row key,
a join-attribute value, and a score in [0, 1] (any totally ordered score
domain works; we keep floats).  :class:`ScoredRow` captures exactly that
triple plus an optional payload of extra attributes (the "useless to most
queries" columns of §1 — they matter because baseline algorithms ship them).

:class:`JoinTuple` is one tuple of a rank-join result: the pair of
contributing row keys, the join value, the aggregate score, and the
individual scores it was computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True, slots=True)
class ScoredRow:
    """A row of an input relation, as seen by the rank-join algorithms.

    Attributes:
        row_key: unique row identifier within its relation (e.g. ``r1_10``).
        join_value: the equi-join attribute value.
        score: the scoring attribute; the paper assumes ``[0, 1]`` for
            presentation but only a total order is required.
        payload: remaining attributes of the row.  Baselines (Hive) ship the
            whole row; index-based algorithms only ship key/join/score, which
            is where their bandwidth advantage comes from.
    """

    row_key: str
    join_value: str
    score: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def projected(self) -> "ScoredRow":
        """Return a copy stripped of the payload (an early projection)."""
        if not self.payload:
            return self
        return ScoredRow(self.row_key, self.join_value, self.score)


@dataclass(frozen=True, slots=True)
class JoinTuple:
    """One tuple of a top-k join result set.

    Ordered comparisons sort by aggregate ``score`` (then deterministically by
    the row-key pair so result sets are reproducible across runs).
    """

    left_key: str
    right_key: str
    join_value: str
    score: float
    left_score: float
    right_score: float

    def sort_key(self) -> tuple[float, str, str]:
        """Key for descending-score, ascending-rowkey deterministic order."""
        return (-self.score, self.left_key, self.right_key)

    def as_pair(self) -> tuple[str, str]:
        return (self.left_key, self.right_key)


def top_k_sorted(tuples: list[JoinTuple], k: int) -> list[JoinTuple]:
    """Return the top-``k`` join tuples in deterministic descending order."""
    return sorted(tuples, key=JoinTuple.sort_key)[:k]
