"""The paper's two evaluation queries (§7.1).

Q1 joins Part and Lineitem on PartKey, scoring by the *product* of prices;
Q2 joins Orders and Lineitem on OrderKey, scoring by their *sum*.  Both are
provided as bound :class:`~repro.query.spec.RankJoinQuery` objects and as
SQL text for the parser path.
"""

from __future__ import annotations

from repro.query.spec import RankJoinQuery
from repro.tpch.loader import (
    lineitem_by_order_binding,
    lineitem_by_part_binding,
    orders_binding,
    part_binding,
)

Q1_SQL = (
    "SELECT * FROM part P, lineitem L "
    "WHERE P.partkey = L.partkey "
    "ORDER BY P.retailprice * L.extendedprice "
    "STOP AFTER {k}"
)

Q2_SQL = (
    "SELECT * FROM orders O, lineitem L "
    "WHERE O.orderkey = L.orderkey "
    "ORDER BY O.totalprice + L.extendedprice "
    "STOP AFTER {k}"
)


def q1(k: int) -> RankJoinQuery:
    """Q1: ``Part ⋈ Lineitem`` on partkey, product scoring, top-``k``."""
    return RankJoinQuery.of(part_binding(), lineitem_by_part_binding(), "product", k)


def q2(k: int) -> RankJoinQuery:
    """Q2: ``Orders ⋈ Lineitem`` on orderkey, sum scoring, top-``k``."""
    return RankJoinQuery.of(orders_binding(), lineitem_by_order_binding(), "sum", k)
