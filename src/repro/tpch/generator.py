"""Deterministic TPC-H-like data generation.

``micro_scale = 1`` yields roughly the TPC-H table-count ratios at 1/1000
of scale factor 1: ≈200 parts, ≈1500 orders, ≈6000 lineitems.  The paper's
scale factors 10 and 500 map onto ``micro_scale`` values chosen by the
benchmark profiles; ratios and distributions, not absolute sizes, carry the
results.

Score distributions (normalized to ``(0, 1]``):

* ``part.retailprice``  — near-uniform: many high-ranking tuples (Q1).
* ``lineitem.extendedprice`` — mildly skewed low (``u^1.5``).
* ``orders.totalprice`` — strongly skewed low (``u^3``): few high-ranking
  tuples, so Q2 must descend much deeper (§7.2's Q1/Q2 contrast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.tpch import schema

Record = dict[str, Any]

#: base table cardinalities at micro_scale == 1
PARTS_PER_UNIT = 200
ORDERS_PER_UNIT = 1500
MEAN_LINES_PER_ORDER = 4  # uniform 1..7, mean 4 => ~6000 lineitems/unit


def _comment(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(schema.COMMENT_WORDS) for _ in range(words))


def _date(rng: random.Random) -> str:
    year = rng.randint(1992, 1998)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


@dataclass
class TPCHData:
    """Generated tables plus the key sequences needed by refresh sets."""

    micro_scale: float
    seed: int
    parts: list[Record] = field(default_factory=list)
    orders: list[Record] = field(default_factory=list)
    lineitems: list[Record] = field(default_factory=list)
    next_order_seq: int = 0
    next_line_seq: int = 0

    @property
    def table_counts(self) -> dict[str, int]:
        return {
            "part": len(self.parts),
            "orders": len(self.orders),
            "lineitem": len(self.lineitems),
        }


def _make_part(rng: random.Random, sequence: int) -> Record:
    return {
        "partkey": f"P{sequence:07d}",
        "name": _comment(rng, 3),
        "mfgr": rng.choice(schema.MFGRS),
        "brand": rng.choice(schema.BRANDS),
        "type": rng.choice(schema.TYPES),
        "size": rng.randint(1, 50),
        "container": rng.choice(schema.CONTAINERS),
        # near-uniform scores: Q1's side has many high-ranking tuples
        "retailprice": round(rng.uniform(0.02, 1.0), 6),
        "comment": _comment(rng, 5),
    }


def _make_order(rng: random.Random, sequence: int) -> Record:
    return {
        "orderkey": f"O{sequence:08d}",
        "custkey": f"C{rng.randint(0, 99999):06d}",
        "orderstatus": rng.choice("OFP"),
        # strongly skewed low: few high-ranking tuples for Q2
        "totalprice": round(max(1e-6, rng.random() ** 3), 6),
        "orderdate": _date(rng),
        "orderpriority": rng.choice(schema.ORDER_PRIORITIES),
        "clerk": f"Clerk#{rng.randint(0, 999):05d}",
        "shippriority": 0,
        "comment": _comment(rng, 6),
    }


def _make_lineitem(
    rng: random.Random,
    sequence: int,
    orderkey: str,
    linenumber: int,
    partkeys: "list[str]",
) -> Record:
    return {
        "rowkey": f"L{sequence:09d}",
        "orderkey": orderkey,
        "partkey": rng.choice(partkeys),
        "suppkey": f"S{rng.randint(0, 9999):05d}",
        "linenumber": linenumber,
        "quantity": rng.randint(1, 50),
        # mildly skewed low
        "extendedprice": round(max(1e-6, rng.random() ** 1.5), 6),
        "discount": round(rng.uniform(0.0, 0.1), 2),
        "tax": round(rng.uniform(0.0, 0.08), 2),
        "returnflag": rng.choice("ARN"),
        "linestatus": rng.choice("OF"),
        "shipdate": _date(rng),
        "commitdate": _date(rng),
        "receiptdate": _date(rng),
        "shipinstruct": rng.choice(schema.SHIP_INSTRUCTIONS),
        "shipmode": rng.choice(schema.SHIP_MODES),
        "comment": _comment(rng, 4),
    }


def generate(micro_scale: float = 1.0, seed: int = 1) -> TPCHData:
    """Generate the three tables deterministically.

    Args:
        micro_scale: dataset size multiplier (1.0 ≈ 200/1500/6000 rows).
        seed: RNG seed; identical arguments produce identical data.
    """
    if micro_scale <= 0:
        raise ValueError(f"micro_scale must be positive: {micro_scale}")
    rng = random.Random(seed)
    data = TPCHData(micro_scale=micro_scale, seed=seed)

    part_count = max(2, round(PARTS_PER_UNIT * micro_scale))
    order_count = max(2, round(ORDERS_PER_UNIT * micro_scale))

    data.parts = [_make_part(rng, i) for i in range(part_count)]
    partkeys = [part["partkey"] for part in data.parts]

    line_seq = 0
    for order_seq in range(order_count):
        order = _make_order(rng, order_seq)
        data.orders.append(order)
        for linenumber in range(1, rng.randint(1, 7) + 1):
            data.lineitems.append(
                _make_lineitem(rng, line_seq, order["orderkey"], linenumber, partkeys)
            )
            line_seq += 1
    data.next_order_seq = order_count
    data.next_line_seq = line_seq
    return data
