"""TPC-H-like workload: generator, loader, evaluation queries, refresh sets.

The paper evaluates on TPC-H "Lineitem", "Orders" and "Part" tables at scale
factors 10–500 (§7.1).  We generate miniature, deterministic tables with the
same schema roles and — importantly — the same *score distribution contrast*
between the two evaluation queries: Q1's per-row scores are close to uniform
(many high-ranking tuples; the top-k join converges shallow), while Q2's are
skewed low (few high-ranking tuples; algorithms must "reach deeper into each
index", §7.2).
"""

from repro.tpch.generator import TPCHData, generate
from repro.tpch.loader import LINEITEM, ORDERS, PART, load_tpch
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2
from repro.tpch.updates import RefreshSet, generate_refresh_sets

__all__ = [
    "TPCHData",
    "generate",
    "LINEITEM",
    "ORDERS",
    "PART",
    "load_tpch",
    "Q1_SQL",
    "Q2_SQL",
    "q1",
    "q2",
    "RefreshSet",
    "generate_refresh_sets",
]
