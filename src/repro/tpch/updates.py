"""TPC-H-style refresh (update) sets.

§7.2's online-update experiment applies sets of "≈ s×600 insertions and
≈ s×150 deletions" (new orders with their lineitems; deletions of existing
orders with their lineitems), then measures query time.  A
:class:`RefreshSet` carries both halves; applying one is the job of the
maintenance layer (for IJLMR/ISL) and the BFHM update machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.tpch.generator import Record, TPCHData, _make_lineitem, _make_order

#: refresh-set sizing per micro_scale unit, after the paper's s×600 / s×150
INSERTS_PER_UNIT = 600
DELETES_PER_UNIT = 150


@dataclass
class RefreshSet:
    """One application of the TPC-H refresh functions (RF1 + RF2)."""

    sequence: int
    insert_orders: list[Record] = field(default_factory=list)
    insert_lineitems: list[Record] = field(default_factory=list)
    #: row keys of orders to delete
    delete_orders: list[str] = field(default_factory=list)
    #: row keys of lineitems to delete (children of deleted orders)
    delete_lineitems: list[str] = field(default_factory=list)

    @property
    def insert_count(self) -> int:
        return len(self.insert_orders) + len(self.insert_lineitems)

    @property
    def delete_count(self) -> int:
        return len(self.delete_orders) + len(self.delete_lineitems)


def generate_refresh_sets(
    data: TPCHData, count: int, seed: "int | None" = None
) -> list[RefreshSet]:
    """Generate ``count`` refresh sets against (and mutating the bookkeeping
    of) ``data``.

    Insertions extend the order/lineitem key sequences; deletions target
    orders still present (earliest first, like TPC-H's RF2), cascading to
    their lineitems.
    """
    rng = random.Random(data.seed + 7919 if seed is None else seed)
    partkeys = [part["partkey"] for part in data.parts]
    live_orders = {order["orderkey"] for order in data.orders}
    lineitems_by_order: dict[str, list[str]] = {}
    for item in data.lineitems:
        lineitems_by_order.setdefault(item["orderkey"], []).append(item["rowkey"])

    target_inserts = max(2, round(INSERTS_PER_UNIT * data.micro_scale))
    target_deletes = max(1, round(DELETES_PER_UNIT * data.micro_scale))

    sets: list[RefreshSet] = []
    for sequence in range(count):
        refresh = RefreshSet(sequence)

        # RF1: new orders, each with 1..7 lineitems, until the target size
        while refresh.insert_count < target_inserts:
            order = _make_order(rng, data.next_order_seq)
            data.next_order_seq += 1
            refresh.insert_orders.append(order)
            for linenumber in range(1, rng.randint(1, 7) + 1):
                refresh.insert_lineitems.append(
                    _make_lineitem(
                        rng,
                        data.next_line_seq,
                        order["orderkey"],
                        linenumber,
                        partkeys,
                    )
                )
                data.next_line_seq += 1

        # RF2: delete the oldest live orders (and their lineitems) until
        # the target mutation count is reached
        selected = 0
        for orderkey in sorted(live_orders):
            order_cost = 1 + len(lineitems_by_order.get(orderkey, ()))
            if selected and selected + order_cost > target_deletes:
                break
            live_orders.discard(orderkey)
            refresh.delete_orders.append(orderkey)
            refresh.delete_lineitems.extend(lineitems_by_order.pop(orderkey, ()))
            selected += order_cost
            if selected >= target_deletes:
                break

        # newly inserted orders become deletable by later sets
        for order in refresh.insert_orders:
            live_orders.add(order["orderkey"])
        for item in refresh.insert_lineitems:
            lineitems_by_order.setdefault(item["orderkey"], []).append(item["rowkey"])

        sets.append(refresh)
    return sets
