"""Loading generated TPC-H tables into the NoSQL store.

Each relation becomes one table with a single ``d`` column family, one
qualifier per column; string columns are UTF-8, numeric score columns are
8-byte floats (so :class:`~repro.store.filters.ScoreThresholdFilter` can
evaluate them server-side), and other numerics are stringified.

Tables are pre-split so data spreads across the simulated workers — the
locality MapReduce depends on.
"""

from __future__ import annotations

from typing import Any

from repro.common.serialization import encode_float, encode_str
from repro.relational.binding import RelationBinding
from repro.store.cell import Cell
from repro.store.client import Put, Store
from repro.tpch.generator import Record, TPCHData

PART = "part"
ORDERS = "orders"
LINEITEM = "lineitem"
FAMILY = "d"

#: columns stored as 8-byte floats (scores)
FLOAT_COLUMNS = {"retailprice", "totalprice", "extendedprice", "discount", "tax"}


def _encode_column(name: str, value: Any) -> bytes:
    if name in FLOAT_COLUMNS:
        return encode_float(float(value))
    return encode_str(str(value))


def record_to_put(row_key: str, record: Record, timestamp: "int | None" = None) -> Put:
    """Build the Put writing one generated record."""
    put = Put(row_key, timestamp=timestamp)
    for name, value in record.items():
        if name == "rowkey":
            continue
        put.add(FAMILY, name, _encode_column(name, value))
    return put


def _split_keys(row_keys: "list[str]", pieces: int) -> list[str]:
    """Evenly spaced split points over sorted row keys."""
    if pieces <= 1 or len(row_keys) < 2 * pieces:
        return []
    ordered = sorted(row_keys)
    step = len(ordered) // pieces
    return [ordered[i * step] for i in range(1, pieces)]


def load_tpch(store: Store, data: TPCHData, regions_per_table: "int | None" = None) -> None:
    """Create and populate part/orders/lineitem, pre-split across workers.

    Loading is administrative (bulk import), so it bypasses metered RPCs;
    query-time metrics stay clean.
    """
    workers = len(store.ctx.cluster.workers)
    pieces = regions_per_table or max(2, workers)

    datasets: list[tuple[str, list[Record], Any]] = [
        (PART, data.parts, lambda r: r["partkey"]),
        (ORDERS, data.orders, lambda r: r["orderkey"]),
        (LINEITEM, data.lineitems, lambda r: r["rowkey"]),
    ]
    for name, records, key_fn in datasets:
        row_keys = [key_fn(record) for record in records]
        table = store.create_table(
            name, {FAMILY}, split_keys=_split_keys(row_keys, pieces)
        )
        backing = store.backing(name)
        cells: list[Cell] = []
        for record, row_key in zip(records, row_keys):
            put = record_to_put(row_key, record, timestamp=store.ctx.next_timestamp())
            for family, qualifier, value in put.cells:
                cells.append(Cell(row_key, family, qualifier, value, put.timestamp))
        backing.apply_batch(cells)
        backing.flush_all()


def part_binding() -> RelationBinding:
    """Part as a rank-join input for Q1."""
    return RelationBinding(PART, join_column="partkey",
                           score_column="retailprice", family=FAMILY, alias="P")


def lineitem_by_part_binding() -> RelationBinding:
    """Lineitem joined on partkey (Q1)."""
    return RelationBinding(LINEITEM, join_column="partkey",
                           score_column="extendedprice", family=FAMILY, alias="L")


def orders_binding() -> RelationBinding:
    """Orders as a rank-join input for Q2."""
    return RelationBinding(ORDERS, join_column="orderkey",
                           score_column="totalprice", family=FAMILY, alias="O")


def lineitem_by_order_binding() -> RelationBinding:
    """Lineitem joined on orderkey (Q2)."""
    return RelationBinding(LINEITEM, join_column="orderkey",
                           score_column="extendedprice", family=FAMILY, alias="L")
