"""Column schemas of the generated TPC-H-like tables.

Beyond the join and score columns, every table carries its realistic
complement of "payload" columns.  These matter for the experiments: Hive
ships whole rows through its join job while Pig projects early (§3.1), and
the index-based algorithms ship none of them — reproducing the bandwidth
ordering requires rows that are genuinely wider than (key, join, score).
"""

from __future__ import annotations

#: part table columns (score column: retailprice, normalized to (0, 1])
PART_COLUMNS = (
    "partkey",
    "name",
    "mfgr",
    "brand",
    "type",
    "size",
    "container",
    "retailprice",
    "comment",
)

#: orders table columns (score column: totalprice, normalized to (0, 1])
ORDERS_COLUMNS = (
    "orderkey",
    "custkey",
    "orderstatus",
    "totalprice",
    "orderdate",
    "orderpriority",
    "clerk",
    "shippriority",
    "comment",
)

#: lineitem table columns (score column: extendedprice, normalized)
LINEITEM_COLUMNS = (
    "orderkey",
    "partkey",
    "suppkey",
    "linenumber",
    "quantity",
    "extendedprice",
    "discount",
    "tax",
    "returnflag",
    "linestatus",
    "shipdate",
    "commitdate",
    "receiptdate",
    "shipinstruct",
    "shipmode",
    "comment",
)

#: TPC-H-flavoured vocabulary for payload columns
MFGRS = ("Manufacturer#1", "Manufacturer#2", "Manufacturer#3",
         "Manufacturer#4", "Manufacturer#5")
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
TYPES = ("STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS",
         "ECONOMY BURNISHED STEEL", "PROMO BRUSHED NICKEL", "LARGE PLATED STEEL")
CONTAINERS = ("SM CASE", "SM BOX", "MED BAG", "MED PKG", "LG CASE",
              "LG DRUM", "JUMBO JAR", "WRAP PACK")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
COMMENT_WORDS = (
    "furiously", "quickly", "carefully", "blithely", "slyly", "regular",
    "express", "special", "pending", "final", "ironic", "even", "bold",
    "packages", "deposits", "accounts", "requests", "instructions", "theodolites",
    "foxes", "pinto", "beans", "asymptotes", "dependencies", "platelets",
)
