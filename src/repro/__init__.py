"""repro — a reproduction of "Rank Join Queries in NoSQL Databases"
(Ntarmos, Patlakas, Triantafillou; PVLDB 7(7), 2014).

The package provides the paper's three rank-join algorithms (IJLMR, ISL,
BFHM), the baselines it compares against (Hive-style, Pig-style, DRJN),
and every substrate they need: an HBase-like NoSQL store, a simulated
HDFS + MapReduce engine, a cluster cost model producing the paper's three
metrics (time, bandwidth, dollar cost), a TPC-H-like workload generator,
and online index maintenance.

Quickstart::

    from repro import Platform, RankJoinEngine, EC2_PROFILE
    from repro.tpch import generate, load_tpch, q1

    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=0.5))
    engine = RankJoinEngine(platform)
    result = engine.execute(q1(k=10), algorithm="bfhm")
    for t in result.tuples:
        print(t.join_value, t.score)
    print(result.metrics.sim_time_s, result.metrics.network_bytes)
"""

from repro.baselines import DRJNRankJoin, HiveRankJoin, PigRankJoin
from repro.cluster import EC2_PROFILE, LC_PROFILE, CostModel
from repro.common.functions import (
    AggregateFunction,
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
)
from repro.common.multiway import MultiJoinTuple
from repro.common.types import JoinTuple, ScoredRow
from repro.core import BFHMRankJoin, HRJNOperator, IJLMRRankJoin, ISLRankJoin
from repro.core.bfhm import TerminationPolicy, WriteBackPolicy
from repro.core.bfhm.multi import BFHMCascadeRankJoin
from repro.core.hrjn_multi import MultiWayHRJN, MultiWayHRJNRankJoin
from repro.core.isl_multi import MultiRankJoinQuery, MultiWayISLRankJoin
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.query.parser import parse_rank_join
from repro.query.planner import CostEstimate, QueryPlan, QueryPlanner
from repro.query.results import MultiRankJoinResult, RankJoinResult
from repro.query.spec import RankJoinQuery
from repro.query.statistics import StatisticsCatalog, TableStatistics
from repro.relational.binding import RelationBinding

__version__ = "1.0.0"

__all__ = [
    "DRJNRankJoin",
    "HiveRankJoin",
    "PigRankJoin",
    "EC2_PROFILE",
    "LC_PROFILE",
    "CostModel",
    "AggregateFunction",
    "MaxFunction",
    "MinFunction",
    "ProductFunction",
    "SumFunction",
    "WeightedSumFunction",
    "JoinTuple",
    "MultiJoinTuple",
    "ScoredRow",
    "BFHMRankJoin",
    "BFHMCascadeRankJoin",
    "HRJNOperator",
    "MultiWayHRJN",
    "MultiWayHRJNRankJoin",
    "MultiRankJoinQuery",
    "MultiRankJoinResult",
    "MultiWayISLRankJoin",
    "IJLMRRankJoin",
    "ISLRankJoin",
    "TerminationPolicy",
    "WriteBackPolicy",
    "Platform",
    "RankJoinEngine",
    "parse_rank_join",
    "CostEstimate",
    "QueryPlan",
    "QueryPlanner",
    "RankJoinResult",
    "RankJoinQuery",
    "StatisticsCatalog",
    "TableStatistics",
    "RelationBinding",
    "__version__",
]
