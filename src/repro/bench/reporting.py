"""ASCII rendering of the regenerated figure series.

The paper's figures are log-scale line plots over k; we print the same
series as tables (rows: k, columns: algorithms) so every panel's numbers
are inspectable in CI output and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import SeriesPoint


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3e}"
    return f"{value:,.3f}".rstrip("0").rstrip(".")


def format_table(
    title: str,
    row_labels: "list[str]",
    column_labels: "list[str]",
    cells: "list[list[str]]",
) -> str:
    """A plain fixed-width table."""
    header = ["", *column_labels]
    rows = [[label, *row] for label, row in zip(row_labels, cells)]
    widths = [
        max(len(str(line[i])) for line in [header, *rows])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: "dict[str, list[SeriesPoint]]",
    metric: "Callable[[SeriesPoint], float]",
) -> str:
    """One figure panel: k rows × algorithm columns of one metric."""
    algorithms = list(series)
    ks = [point.k for point in series[algorithms[0]]]
    cells = []
    for i, _k in enumerate(ks):
        cells.append(
            [_format_value(metric(series[name][i])) for name in algorithms]
        )
    return format_table(title, [f"k={k}" for k in ks], algorithms, cells)


def format_recall(series: "dict[str, list[SeriesPoint]]") -> str:
    """Recall summary (the paper's 100%-recall claim for BFHM)."""
    pieces = []
    for name, points in series.items():
        worst = min(point.recall for point in points)
        pieces.append(f"{name}: min recall {worst:.3f}")
    return "; ".join(pieces)
