"""Shared machinery for the figure-regeneration benchmarks.

One :class:`ExperimentSetup` corresponds to one evaluation environment of
§7.1 (an EC2-like or LC-like platform with TPC-H data loaded and all
indices built); :func:`run_series` then sweeps k for a set of algorithms,
yielding the three per-query metrics of every Fig. 7/8 panel plus recall
against the naive ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.common.types import JoinTuple
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.query.spec import RankJoinQuery
from repro.relational.binding import load_relation
from repro.relational.naive import naive_rank_join
from repro.tpch.generator import TPCHData, generate
from repro.tpch.loader import load_tpch


@dataclass
class ExperimentSetup:
    """A loaded platform + engine + the data that went in."""

    platform: Platform
    engine: RankJoinEngine
    data: TPCHData

    def ground_truth(self, query: RankJoinQuery, k: int) -> list[JoinTuple]:
        left = load_relation(self.platform.store, query.left)
        right = load_relation(self.platform.store, query.right)
        return naive_rank_join(left, right, query.function, k)


@dataclass
class SeriesPoint:
    """One (algorithm, k) measurement — a point of a Fig. 7/8 series."""

    algorithm: str
    k: int
    time_s: float
    network_bytes: int
    kv_reads: int
    dollars: float
    recall: float
    details: dict[str, float] = field(default_factory=dict)


def build_setup(
    cost_model: CostModel,
    micro_scale: float,
    seed: int = 1,
    prebuild: "list[str] | None" = None,
    prebuild_query: "RankJoinQuery | None" = None,
    num_servers: int = 1,
    balancer=None,
    parallelism: str = "thread",
    process_workers: "int | None" = None,
    **algorithm_kwargs,
) -> ExperimentSetup:
    """Create a platform, load TPC-H data, optionally pre-build indices.

    ``num_servers`` > 1 stands the platform up on a multi-region-server
    topology (scatter/gather fan-out; see :mod:`repro.cluster.topology`);
    ``balancer``, ``parallelism``, and ``process_workers`` pass straight
    through to :class:`~repro.platform.Platform` (process-pool wall-clock
    backend; simulated metrics are identical under every setting).
    """
    platform = Platform(
        cost_model,
        num_servers=num_servers,
        balancer=balancer,
        parallelism=parallelism,
        process_workers=process_workers,
    )
    data = generate(micro_scale=micro_scale, seed=seed)
    load_tpch(platform.store, data)
    engine = RankJoinEngine(platform, **algorithm_kwargs)
    if prebuild and prebuild_query is not None:
        for name in prebuild:
            engine.algorithm(name).prepare(prebuild_query)
    return ExperimentSetup(platform, engine, data)


def run_point(
    setup: ExperimentSetup,
    query: RankJoinQuery,
    algorithm: str,
    truth: "list[JoinTuple] | None" = None,
) -> SeriesPoint:
    """Execute one query with one algorithm and package its metrics."""
    if truth is None:
        truth = setup.ground_truth(query, query.k)
    result = setup.engine.execute(query, algorithm=algorithm)
    return SeriesPoint(
        algorithm=result.algorithm,
        k=query.k,
        time_s=result.metrics.sim_time_s,
        network_bytes=result.metrics.network_bytes,
        kv_reads=result.metrics.kv_reads,
        dollars=result.metrics.dollars,
        recall=result.recall_against(truth),
        details=result.details,
    )


def run_series(
    setup: ExperimentSetup,
    query_factory,
    ks: "list[int]",
    algorithms: "list[str]",
) -> dict[str, list[SeriesPoint]]:
    """Sweep k per algorithm — the data behind one Fig. 7/8 panel."""
    series: dict[str, list[SeriesPoint]] = {name: [] for name in algorithms}
    for k in ks:
        query = query_factory(k)
        truth = setup.ground_truth(query, k)
        for name in algorithms:
            series[name].append(run_point(setup, query, name, truth))
    return series
