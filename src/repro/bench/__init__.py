"""Experiment harness regenerating the paper's tables and figures."""

from repro.bench.harness import (
    ExperimentSetup,
    SeriesPoint,
    build_setup,
    run_series,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "ExperimentSetup",
    "SeriesPoint",
    "build_setup",
    "run_series",
    "format_series",
    "format_table",
]
