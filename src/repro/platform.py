"""The Platform: one simulated deployment bundling store, HDFS and MapReduce.

Everything the paper's stack needs — an HBase-like store over a cluster, a
simulated HDFS, and a MapReduce runner — wired to a single cost model and
metrics collector.  Algorithms and benchmarks receive a Platform and charge
all their work to it.
"""

from __future__ import annotations

from repro.cluster.costmodel import CostModel, EC2_PROFILE
from repro.cluster.simulation import SimContext
from repro.cluster.topology import RegionBalancer
from repro.mapreduce.hdfs import SimHDFS
from repro.mapreduce.runtime import JobRunner
from repro.store.client import Store


class Platform:
    """A complete simulated deployment.

    ``num_servers`` groups the cluster's workers into that many region
    servers (see :mod:`repro.cluster.topology`); above 1 the store's
    batched reads, scans, and the hot algorithm paths scatter per server
    and pay max-over-server-queues simulated time instead of the serial
    sum.  The default single server preserves the seed cost model
    bit-for-bit.

    ``parallelism`` picks the *wall-clock* execution backend for fan-out
    sections: ``"thread"`` (default) runs them on the shared thread pool,
    ``"process"`` runs registered picklable tasks — index-build map/reduce
    waves, process-capable scatter rounds — in spawn-based worker
    processes (:mod:`repro.cluster.procpool`) for real CPU parallelism.
    Simulated metrics are bit-identical under every setting; only real
    elapsed time changes.  ``process_workers`` pins the process-wide pool
    size (None keeps the current/default size); ``balancer`` overrides
    the worker->region-server assignment strategy.
    """

    def __init__(
        self,
        cost_model: CostModel = EC2_PROFILE,
        num_servers: int = 1,
        balancer: "RegionBalancer | None" = None,
        parallelism: str = "thread",
        process_workers: "int | None" = None,
    ) -> None:
        if process_workers is not None:
            from repro.cluster.procpool import shared_process_pool

            shared_process_pool().configure(process_workers)
        self.ctx = SimContext.with_profile(
            cost_model,
            num_servers=num_servers,
            balancer=balancer,
            parallelism=parallelism,
        )
        self.store = Store(self.ctx)
        self.hdfs = SimHDFS(self.ctx)
        self.runner = JobRunner(self.ctx, self.store, self.hdfs)

    @property
    def metrics(self):
        return self.ctx.metrics

    @property
    def cost_model(self) -> CostModel:
        return self.ctx.cost_model

    def reset_metrics(self) -> None:
        """Zero the meters (data and indices stay loaded)."""
        self.ctx.metrics.reset()
