"""Concurrent query serving: plan cache, admission control, scheduling.

The serving layer turns the single-caller :class:`~repro.query.engine.RankJoinEngine`
into a multi-client deployment: :class:`QueryServer` admits many
concurrent queries, shares one plan cache and statistics catalog across
its worker threads, and keeps simulated per-query costs bit-identical to
solo execution (see :mod:`repro.serving.server` for the scheduling
rules).
"""

from repro.serving.metrics import ThreadLocalMetricsRouter, install_router
from repro.serving.plan_cache import CachedPlan, PlanCache
from repro.serving.server import (
    EXCLUSIVE_MULTIWAY,
    EXCLUSIVE_TWO_WAY,
    QueryServer,
    ServedQuery,
)

__all__ = [
    "CachedPlan",
    "EXCLUSIVE_MULTIWAY",
    "EXCLUSIVE_TWO_WAY",
    "PlanCache",
    "QueryServer",
    "ServedQuery",
    "ThreadLocalMetricsRouter",
    "install_router",
]
