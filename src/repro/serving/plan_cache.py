"""A shared, thread-safe cache of planner decisions.

Rank-join serving workloads are *shape-stable*: millions of queries reuse
a handful of (relations, score function, k) shapes.  Pricing a shape is
pure — a plan is a function of the query and the statistics it was priced
against — so the planner's replay work can be paid once per shape and
shared by every worker thread, as long as the cache can tell when the
underlying statistics moved.

Entries are keyed by the canonical query shape and validated against the
:class:`~repro.query.statistics.StatisticsCatalog`'s per-table versions
(plus its global epoch): any maintenance mutation or index build/drop
bumps the versions of the tables it touched through the existing
interceptor/statistics hooks, which lazily invalidates exactly the cached
plans that priced those tables.  Eviction is LRU under a fixed capacity.

This module is deliberately free of query-layer imports (the planner
imports nothing from here either — the cache is *injected* into
:class:`~repro.query.planner.QueryPlanner`), so it can sit in ``serving/``
without creating an import cycle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Protocol, Sequence

#: default number of cached plans (a plan is a few KB of estimates)
DEFAULT_CAPACITY = 128


class CatalogProtocol(Protocol):
    """What the cache needs from a statistics catalog (duck-typed so the
    serving layer never imports the query layer): per-table monotonic
    versions plus a global epoch.  ``applied_watermark`` is probed with
    ``getattr`` and therefore deliberately absent here."""

    epoch: int

    def table_version(self, name: str) -> int:
        """Monotonic invalidation counter of base table ``name``."""
        ...


@dataclass(frozen=True)
class CachedPlan:
    """One cached planner decision plus the versions it was priced at."""

    plan: Any
    epoch: int
    #: (table name, statistics version at planning time) per input table
    table_versions: "tuple[tuple[str, int], ...]"
    #: (table name, async-maintenance applied-sequence watermark at
    #: planning time) — all zeros without a pipeline.  A drained batch
    #: moves the watermark, so plans priced against a lagging index are
    #: re-priced once the drain catches up (normally redundant with the
    #: table-version bump the drain also performs, but load-bearing for
    #: pipelines wired without a statistics catalog).
    watermarks: "tuple[tuple[str, int], ...]" = ()


class PlanCache:
    """LRU of ``canonical query shape -> QueryPlan`` with lazy version
    validation against a statistics catalog.

    The ``catalog`` is duck-typed: it must expose ``table_version(name)``
    and an ``epoch`` attribute (see
    :class:`~repro.query.statistics.StatisticsCatalog`).  ``capacity=0``
    disables caching (every lookup misses) — used as the "replan every
    query" baseline in the serving benchmark.
    """

    def __init__(self, catalog: CatalogProtocol, capacity: int = DEFAULT_CAPACITY) -> None:
        self.catalog = catalog
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CachedPlan]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock

    # -- version bookkeeping -------------------------------------------------

    def versions_for(self, tables: Sequence[str]) -> "tuple[tuple[str, int], ...]":
        """Snapshot the catalog versions a plan over ``tables`` depends on.

        Call *before* pricing: if maintenance lands mid-planning, the
        stale versions make :meth:`store` refuse to cache the plan.
        """
        return tuple((table, self.catalog.table_version(table)) for table in tables)

    def watermarks_for(
        self, tables: Sequence[str]
    ) -> "tuple[tuple[str, int], ...]":
        """Snapshot the per-table applied-sequence watermarks (all zeros
        when the catalog has no async-maintenance hookup)."""
        applied = getattr(self.catalog, "applied_watermark", None)
        if applied is None:
            return tuple((table, 0) for table in tables)
        return tuple((table, applied(table)) for table in tables)

    def _current(self, entry: CachedPlan) -> bool:
        if entry.epoch != self.catalog.epoch:
            return False
        if not all(
            self.catalog.table_version(table) == version
            for table, version in entry.table_versions
        ):
            return False
        applied = getattr(self.catalog, "applied_watermark", None)
        if applied is None:
            return True
        return all(
            applied(table) == watermark
            for table, watermark in entry.watermarks
        )

    # -- cache protocol ------------------------------------------------------

    def lookup(self, key: Hashable) -> "Any | None":
        """The cached plan for ``key``, or ``None`` on miss/stale entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if not self._current(entry):
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.plan

    def store(
        self,
        key: Hashable,
        plan: Any,
        versions: "tuple[tuple[str, int], ...]",
        epoch: "int | None" = None,
    ) -> bool:
        """Insert ``plan`` unless the statistics moved since ``versions``
        were snapshotted; returns whether the plan was cached."""
        if self.capacity <= 0:
            return False
        if epoch is None:
            epoch = self.catalog.epoch
        entry = CachedPlan(
            plan=plan,
            epoch=epoch,
            table_versions=versions,
            watermarks=self.watermarks_for([table for table, _ in versions]),
        )
        with self._lock:
            if not self._current(entry):
                return False  # stale before it ever landed
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry (does not touch hit/miss accounting)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> "dict[str, float]":
        """Hit/miss/eviction/invalidation counters plus size and hit rate."""
        # one consistent snapshot: counters and size are read under the
        # same lock acquisition (hit_rate is recomputed inline because the
        # property takes this non-reentrant lock itself)
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "hit_rate": self.hits / total if total else 0.0,
            }
