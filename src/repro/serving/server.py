"""Concurrent query serving: admission control, scheduling, shared caches.

The paper's deployment story (§1, §7) is a shared HBase/Hadoop cluster
answering many clients' rank-join queries at once.  :class:`QueryServer`
reproduces that shape over the simulated platform:

* **admission control** — a bounded in-flight counter sheds queries with
  :class:`~repro.errors.ServerOverloadedError` once ``max_pending`` is
  reached, and per-query deadlines/budgets reject work that waited too
  long or is priced above a cost ceiling *before* it touches the cluster;
* **shared planning state** — all worker threads price queries against one
  :class:`~repro.query.statistics.StatisticsCatalog` and reuse plans from
  one :class:`~repro.serving.plan_cache.PlanCache`, keyed by canonical
  query shape and invalidated by the statistics version counters that
  online maintenance already bumps;
* **deterministic metering** — each served query runs under a fresh
  per-thread :class:`~repro.serving.metrics.ThreadLocalMetricsRouter`
  scope, so its simulated cost is byte-identical to the same query
  executed alone (concurrency must not change the paper's Fig. 7/8
  numbers);
* **read/write scheduling** — algorithms whose execution only *reads* the
  store (ISL, BFHM with offline write-back, the index-free n-way HRJN
  pipeline) run concurrently on a pool of ``workers`` threads, while
  algorithms that mutate shared simulator state (MapReduce jobs writing
  HDFS blocks or temp tables: Hive, Pig, IJLMR, DRJN, the BFHM cascade)
  and any query that must first *build* an index are serialized FIFO on a
  dedicated writer thread behind a write-preferring read/write lock.  The
  FIFO order matters: MapReduce jobs consume the cluster's round-robin
  placement cursor, so exclusive queries must replay in submission order
  to stay bit-identical with a serialized run.

Python's GIL means the thread pool buys no simulated-CPU parallelism; the
throughput win comes from amortizing parsing and planning across queries
(the statement cache and plan cache) and from overlapping coordinator
bookkeeping — exactly the caching a real deployment would do.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as _wait_futures
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.bfhm.updates import WriteBackPolicy
from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    PlanningError,
    ServerClosedError,
    ServerOverloadedError,
    StalenessBoundExceededError,
)
from repro.maintenance.consistency import MutationFailedError
from repro.platform import Platform
from repro.query.engine import AUTO, MULTIWAY_ALIASES, RankJoinEngine
from repro.query.parser import parse_rank_join
from repro.query.planner import OBJECTIVES, QueryPlan
from repro.query.spec import RankJoinQuery
from repro.query.statistics import StatisticsCatalog
from repro.serving.metrics import install_router
from repro.serving.plan_cache import PlanCache

#: two-way algorithms whose query phase runs MapReduce jobs (HDFS block
#: placement, temp tables) and therefore mutates shared simulator state
EXCLUSIVE_TWO_WAY = frozenset({"hive", "pig", "ijlmr", "drjn"})

#: arity >= 3 strategies that build temporary intermediate indexes
EXCLUSIVE_MULTIWAY = frozenset({"bfhm"})

DEFAULT_WORKERS = 4
DEFAULT_MAX_PENDING = 64
DEFAULT_STATEMENT_CACHE = 256

#: bounded-staleness serving policies (see :meth:`QueryServer.attach_maintenance`):
#: ``stale_ok`` serves whatever is applied; ``wait`` drains to the query's
#: submit-time watermark first (read-your-writes); ``bounded`` drains just
#: enough to bring every input table within ``max_lag``; ``shed`` rejects
#: queries whose inputs lag beyond ``max_lag`` (graceful degradation)
STALENESS_POLICIES = ("stale_ok", "wait", "bounded", "shed")


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = int(fraction * len(sorted_values) + 0.999999)
    index = min(len(sorted_values) - 1, max(0, rank - 1))
    return sorted_values[index]


class _ReadWriteLock:
    """Write-preferring readers/writer lock.

    Queries that only read the store share the lock; maintenance and
    exclusive (MapReduce / index-building) queries take it exclusively.
    New readers queue behind a waiting writer so a steady query stream
    cannot starve maintenance.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # guarded-by: _cond
        self._writer_active = False  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then join readers."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the reader group, waking writers when it empties."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is free of readers and writers, then own it."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Release exclusive ownership and wake everyone waiting."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared (query) critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive (maintenance) section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServedQuery:
    """Outcome of one query admitted by :class:`QueryServer`.

    Carries the executed result (or the error that stopped it) together
    with serving-side accounting: queue wait, total latency, whether the
    query ran on the exclusive writer thread, and the plan that routed it.
    """

    index: int
    sql: "str | None"
    query: RankJoinQuery
    algorithm: str
    exclusive: bool
    plan: "QueryPlan | None" = None
    result: object = None
    error: "Exception | None" = None
    waited_s: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the query executed without an error."""
        return self.error is None

    @property
    def metrics(self):
        """The result's simulated-cost snapshot (None on failure)."""
        return getattr(self.result, "metrics", None)


@dataclass
class _Counters:
    """Internal mutable serving counters (guarded by the server's lock)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    deadline_rejects: int = 0
    budget_rejects: int = 0
    staleness_rejects: int = 0
    backpressure_shed: int = 0
    drains_triggered: int = 0
    maintenance_failures: int = 0
    reader_served: int = 0
    exclusive_served: int = 0
    statement_hits: int = 0
    statement_misses: int = 0
    latencies: "list[float]" = field(default_factory=list)


class QueryServer:
    """Concurrent rank-join query serving over one shared platform.

    Usage::

        server = QueryServer(platform, workers=4)
        served = server.execute("SELECT * FROM R, S WHERE R.a = S.a "
                                "ORDER BY R.s + S.s STOP AFTER 10")
        print(served.result.tuples, served.metrics.sim_time_s)
        server.close()

    Every worker thread owns a private :class:`RankJoinEngine` (algorithm
    instances are not thread-safe) but all engines share this server's
    :class:`StatisticsCatalog` and :class:`PlanCache`, so planning work is
    done once per query shape per statistics version.  BFHM engines are
    configured with :class:`WriteBackPolicy.OFFLINE` so their query phase
    never writes repaired blobs back — the serving invariant is that
    reader-pool queries are store-read-only.
    """

    def __init__(
        self,
        platform: Platform,
        workers: int = DEFAULT_WORKERS,
        max_pending: int = DEFAULT_MAX_PENDING,
        plan_cache_capacity: "int | None" = None,
        statement_cache_capacity: int = DEFAULT_STATEMENT_CACHE,
        default_deadline_s: "float | None" = None,
        family: str = "d",
        **engine_kwargs,
    ) -> None:
        self.platform = platform
        self.workers = max(1, int(workers))
        self.max_pending = max(1, int(max_pending))
        self.default_deadline_s = default_deadline_s
        self.family = family

        #: per-query metrics isolation: every served query runs in a fresh
        #: scoped collector so its cost snapshot matches solo execution
        self.router = install_router(platform.ctx)
        #: shared across all worker engines; versions drive cache validity
        self.statistics = StatisticsCatalog(platform)
        if plan_cache_capacity is None:
            self.plan_cache = PlanCache(self.statistics)
        else:
            self.plan_cache = PlanCache(
                self.statistics, capacity=plan_cache_capacity
            )

        merged = {name: dict(value) for name, value in engine_kwargs.items()}
        merged.setdefault("bfhm", {}).setdefault(
            "write_back", WriteBackPolicy.OFFLINE
        )
        self._engine_kwargs = merged

        self._tls = threading.local()
        self._rwlock = _ReadWriteLock()
        self._reader_pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-read"
        )
        # MapReduce queries consume the cluster's round-robin placement
        # cursor; one FIFO thread keeps their order identical to a
        # serialized run (bit-identical simulated costs)
        self._exclusive_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-excl"
        )

        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._pending = 0  # guarded-by: _lock
        self._counters = _Counters()  # guarded-by: _lock

        self._statement_capacity = max(0, int(statement_cache_capacity))
        self._statements: "OrderedDict[tuple[str, str], RankJoinQuery]" = (
            OrderedDict()
        )  # guarded-by: _lock

        # async-maintenance hookup (attach_maintenance)
        self._pipeline = None
        self._staleness_policy = "stale_ok"
        self._max_lag = 0
        self._max_backlog: "int | None" = None

    # -- async maintenance -----------------------------------------------------

    def attach_maintenance(
        self,
        pipeline,
        policy: str = "stale_ok",
        max_lag: int = 0,
        max_backlog: "int | None" = None,
    ) -> None:
        """Wire an async :class:`~repro.maintenance.worker.
        MaintenancePipeline` into admission control and planning.

        ``policy`` picks the bounded-staleness contract
        (:data:`STALENESS_POLICIES`); ``max_lag`` is the per-table pending
        bound the ``bounded``/``shed`` policies enforce; ``max_backlog``
        sheds *new queries* (backpressure) once the pipeline's total
        backlog passes it, pushing load away from a cluster that cannot
        keep its indexes fresh.  The shared statistics catalog also learns
        the pipeline's watermarks, so EXPLAIN reports index staleness and
        cached plans revalidate when drains move the watermark.
        """
        if policy not in STALENESS_POLICIES:
            raise ValueError(
                f"unknown staleness policy {policy!r}; choose from "
                f"{STALENESS_POLICIES}"
            )
        self._pipeline = pipeline
        self._staleness_policy = policy
        self._max_lag = max(0, int(max_lag))
        self._max_backlog = max_backlog
        self.statistics.set_staleness_provider(
            None if pipeline is None else pipeline.staleness
        )

    def _check_staleness_admission(self, query: RankJoinQuery) -> int:
        """Backpressure + shed-policy checks at submit time; returns the
        read-your-writes drain target (0 when no draining is needed)."""
        pipeline = self._pipeline
        if pipeline is None:
            return 0
        if self._max_backlog is not None and pipeline.lag() > self._max_backlog:
            with self._lock:
                self._counters.backpressure_shed += 1
            raise ServerOverloadedError(pipeline.lag(), self._max_backlog)
        policy = self._staleness_policy
        if policy == "shed":
            for binding in query.inputs:
                lag = pipeline.lag(binding.table)
                if lag > self._max_lag:
                    with self._lock:
                        self._counters.staleness_rejects += 1
                    raise StalenessBoundExceededError(
                        binding.table, lag, self._max_lag
                    )
            return 0
        if policy == "wait":
            return pipeline.log.last_sequence
        return 0

    def _drain_for_query(self, query: RankJoinQuery, drain_target: int) -> None:
        """Drain the pipeline far enough for this query's policy, under
        the exclusive (maintenance) lock."""
        pipeline = self._pipeline
        if pipeline is None:
            return
        policy = self._staleness_policy
        if policy == "wait":
            if pipeline.applied_sequence >= drain_target:
                return
            with self._lock:
                self._counters.drains_triggered += 1
            with self.maintenance(*pipeline.tables):
                pipeline.drain_until(drain_target)
        elif policy == "bounded":
            tables = [binding.table for binding in query.inputs]
            if all(pipeline.lag(table) <= self._max_lag for table in tables):
                return
            with self._lock:
                self._counters.drains_triggered += 1
            with self.maintenance(*pipeline.tables):
                while any(
                    pipeline.lag(table) > self._max_lag for table in tables
                ):
                    if pipeline.drain_batch() == 0:
                        break

    # -- engines -------------------------------------------------------------

    def engine(self) -> RankJoinEngine:
        """The calling thread's engine (lazily built, shares the caches)."""
        engine = getattr(self._tls, "engine", None)
        if engine is None:
            engine = RankJoinEngine(
                self.platform,
                statistics_catalog=self.statistics,
                plan_cache=self.plan_cache,
                **self._engine_kwargs,
            )
            self._tls.engine = engine
        return engine

    # -- parsing -------------------------------------------------------------

    def _parse(self, text: str) -> RankJoinQuery:
        """Parse SQL text through the LRU statement cache."""
        if self._statement_capacity <= 0:
            with self._lock:
                self._counters.statement_misses += 1
            return parse_rank_join(text, family=self.family)
        key = (text, self.family)
        with self._lock:
            query = self._statements.get(key)
            if query is not None:
                self._statements.move_to_end(key)
                self._counters.statement_hits += 1
                return query
            self._counters.statement_misses += 1
        query = parse_rank_join(text, family=self.family)
        with self._lock:
            self._statements[key] = query
            self._statements.move_to_end(key)
            while len(self._statements) > self._statement_capacity:
                self._statements.popitem(last=False)
        return query

    def _resolve(self, text_or_query) -> "tuple[str | None, RankJoinQuery]":
        if isinstance(text_or_query, str):
            return text_or_query, self._parse(text_or_query)
        return None, text_or_query

    # -- routing -------------------------------------------------------------

    @staticmethod
    def _estimate_for(plan: QueryPlan, name: str, multiway: bool):
        """The plan's estimate for ``name``, accepting registry keys for
        multi-way display names (``bfhm`` matches ``BFHM-cascade``)."""
        try:
            return plan.estimate(name)
        except PlanningError:
            if multiway:
                for display, key in MULTIWAY_ALIASES.items():
                    if key == name.lower():
                        try:
                            return plan.estimate(display)
                        except PlanningError:
                            continue
            raise

    def _choose(
        self,
        engine: RankJoinEngine,
        query: RankJoinQuery,
        algorithm: str,
        objective: str,
        budget: "float | None",
    ) -> "tuple[str, QueryPlan | None]":
        """Resolve ``auto`` through the (cached) planner; enforce budgets."""
        name = algorithm.lower()
        plan = None
        if name == AUTO:
            try:
                plan = engine.planner.plan(query, objective=objective)
                name = plan.chosen
            except PlanningError:
                plan = None
                name = (
                    engine.MULTIWAY_FALLBACK_ALGORITHM
                    if query.arity > 2
                    else engine.FALLBACK_ALGORITHM
                )
        if budget is not None:
            if plan is None:
                plan = engine.planner.plan(query, objective=objective)
            estimate = self._estimate_for(plan, name, query.arity > 2)
            attribute = (
                "dollars" if objective == "dollars" else OBJECTIVES[objective]
            )
            predicted = float(getattr(estimate, attribute))
            if predicted > float(budget):
                with self._lock:
                    self._counters.budget_rejects += 1
                raise BudgetExceededError(predicted, float(budget), objective)
        return name, plan

    @staticmethod
    def _needs_index_build(instance, query: RankJoinQuery) -> bool:
        """True when executing would first build an index (a write)."""
        probe = getattr(instance, "_index_exists", None)
        if probe is None:
            builder = getattr(instance, "_builder", None)
            probe = getattr(builder, "_index_exists", None)
        if probe is None:
            return False  # index-free strategy (e.g. the n-way HRJN pipeline)
        try:
            return any(not probe(binding) for binding in query.inputs)
        except Exception:
            return True  # cannot prove the indexes exist: serialize it

    def _is_exclusive(
        self, engine: RankJoinEngine, query: RankJoinQuery, name: str
    ) -> bool:
        """Route MapReduce-running or index-building queries to the writer."""
        key = name.lower()
        if query.arity > 2:
            key = MULTIWAY_ALIASES.get(key, key)
            if key in EXCLUSIVE_MULTIWAY:
                return True
            instance = engine.multiway_algorithm(key)
        else:
            if key in EXCLUSIVE_TWO_WAY:
                return True
            instance = engine.algorithm(key)
        return self._needs_index_build(instance, query)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        text_or_query,
        algorithm: str = AUTO,
        objective: str = "time",
        budget: "float | None" = None,
        deadline_s: "float | None" = None,
    ) -> "Future[ServedQuery]":
        """Admit a query (SQL text or bound spec); returns a future.

        Raises :class:`ServerClosedError` after :meth:`close`,
        :class:`ServerOverloadedError` when ``max_pending`` queries are
        already in flight, and :class:`BudgetExceededError` when a budget
        is given and the plan prices the query above it.  Deadline misses
        surface on the returned :class:`ServedQuery` instead (the queue
        wait that causes them happens after admission).
        """
        with self._lock:
            if self._closed:
                raise ServerClosedError("query submitted to a closed server")
            if self._pending >= self.max_pending:
                self._counters.shed += 1
                raise ServerOverloadedError(self._pending, self.max_pending)
            self._pending += 1
            self._counters.submitted += 1
            index = self._counters.submitted
        try:
            sql, query = self._resolve(text_or_query)
            drain_target = self._check_staleness_admission(query)
            engine = self.engine()
            name, plan = self._choose(
                engine, query, algorithm, objective, budget
            )
            exclusive = self._is_exclusive(engine, query, name)
            if deadline_s is None:
                deadline_s = self.default_deadline_s
            pool = self._exclusive_pool if exclusive else self._reader_pool
            future = pool.submit(
                self._serve,
                index,
                sql,
                query,
                name,
                plan,
                exclusive,
                deadline_s,
                time.monotonic(),
                drain_target,
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        return future

    def _check_deadline(
        self, waited: float, deadline_s: "float | None"
    ) -> None:
        """Raise :class:`DeadlineExceededError` once queueing ate the
        query's deadline (checked before any cluster work is metered)."""
        if deadline_s is not None and waited > deadline_s:
            with self._lock:
                self._counters.deadline_rejects += 1
            raise DeadlineExceededError(waited, deadline_s)

    def _serve(
        self,
        index: int,
        sql: "str | None",
        query: RankJoinQuery,
        name: str,
        plan: "QueryPlan | None",
        exclusive: bool,
        deadline_s: "float | None",
        submitted_at: float,
        drain_target: int = 0,
    ) -> ServedQuery:
        waited = time.monotonic() - submitted_at
        served = ServedQuery(
            index=index,
            sql=sql,
            query=query,
            algorithm=name,
            exclusive=exclusive,
            plan=plan,
            waited_s=waited,
        )
        try:
            self._check_deadline(waited, deadline_s)
            # bounded-staleness drains happen before the query's own lock
            # acquisition: the wait/bounded policies catch the indexes up
            # (exclusively) and the drain time counts as queue wait below
            self._drain_for_query(query, drain_target)
            guard = self._rwlock.write if exclusive else self._rwlock.read
            with guard():
                # the read/write lock wait is queue time too: a query that
                # sat out a long maintenance window can still miss its
                # deadline even though a pool thread picked it up at once
                waited = time.monotonic() - submitted_at
                served.waited_s = waited
                self._check_deadline(waited, deadline_s)
                engine = self.engine()
                with self.router.scoped():
                    started = time.perf_counter()
                    served.result = engine.execute(query, algorithm=name)
                    elapsed = time.perf_counter() - started
            served.latency_s = waited + elapsed
            with self._lock:
                self._counters.latencies.append(served.latency_s)
                if exclusive:
                    self._counters.exclusive_served += 1
                else:
                    self._counters.reader_served += 1
        except Exception as error:
            served.error = error
            with self._lock:
                self._counters.failed += 1
        finally:
            with self._lock:
                self._pending -= 1
                self._counters.completed += 1
        return served

    # -- synchronous conveniences -------------------------------------------

    def execute(
        self,
        text_or_query,
        algorithm: str = AUTO,
        objective: str = "time",
        budget: "float | None" = None,
        deadline_s: "float | None" = None,
    ) -> ServedQuery:
        """Submit one query and wait; re-raises its execution error."""
        served = self.submit(
            text_or_query,
            algorithm,
            objective=objective,
            budget=budget,
            deadline_s=deadline_s,
        ).result()
        if served.error is not None:
            raise served.error
        return served

    def execute_many(
        self,
        texts_or_queries,
        algorithm: str = AUTO,
        objective: str = "time",
        deadline_s: "float | None" = None,
    ) -> "list[ServedQuery]":
        """Serve a workload, preserving order; overload applies backpressure
        (submission waits for capacity instead of shedding)."""
        futures: "list[Future[ServedQuery]]" = []
        for item in texts_or_queries:
            while True:
                try:
                    futures.append(
                        self.submit(
                            item,
                            algorithm,
                            objective=objective,
                            deadline_s=deadline_s,
                        )
                    )
                    break
                except ServerOverloadedError:
                    outstanding = [f for f in futures if not f.done()]
                    if not outstanding:
                        raise
                    _wait_futures(outstanding, return_when=FIRST_COMPLETED)
        return [future.result() for future in futures]

    def explain(self, text_or_query, objective: str = "time") -> QueryPlan:
        """Plan a query (through the shared plan cache) without running it."""
        _, query = self._resolve(text_or_query)
        with self._rwlock.read():
            return self.engine().planner.plan(query, objective=objective)

    def prepare(self, text_or_query, algorithms: "list[str] | None" = None):
        """Pre-build indexes for a query shape (exclusive); returns the
        build reports.  Warming indexes before serving keeps the reader
        pool free of index-build serialization."""
        _, query = self._resolve(text_or_query)
        engine = self.engine()
        with self._rwlock.write():
            return engine.prepare(query, algorithms=algorithms)

    # -- maintenance ---------------------------------------------------------

    @contextmanager
    def maintenance(self, *tables: str):
        """Exclusive access for online maintenance::

            with server.maintenance("R") as platform:
                relation.insert_batch(rows)

        Queries drain first (write-preferring lock), none run during the
        block, and the named tables' statistics versions are bumped on
        exit — invalidating every cached plan that priced them.

        A :class:`~repro.maintenance.consistency.MutationFailedError`
        escaping the block is counted (``stats()["maintenance_failures"]``)
        before re-raising, so operators see stuck maintenance instead of
        silent index lag.
        """
        self._rwlock.acquire_write()
        try:
            yield self.platform
        except MutationFailedError:
            with self._lock:
                self._counters.maintenance_failures += 1
            raise
        finally:
            try:
                for table in tables:
                    self.statistics.invalidate(table)
            finally:
                self._rwlock.release_write()

    # -- introspection -------------------------------------------------------

    def latency_percentiles(
        self, points: "tuple[float, ...]" = (0.5, 0.9, 0.99)
    ) -> "dict[str, float]":
        """Nearest-rank latency percentiles (seconds) of served queries."""
        with self._lock:
            values = sorted(self._counters.latencies)
        return {
            f"p{round(point * 100):d}": _percentile(values, point)
            for point in points
        }

    def stats(self) -> "dict[str, object]":
        """Serving counters plus plan/statement-cache accounting."""
        with self._lock:
            counters = self._counters
            snapshot = {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "shed": counters.shed,
                "deadline_rejects": counters.deadline_rejects,
                "budget_rejects": counters.budget_rejects,
                "staleness_rejects": counters.staleness_rejects,
                "backpressure_shed": counters.backpressure_shed,
                "drains_triggered": counters.drains_triggered,
                "maintenance_failures": counters.maintenance_failures,
                "reader_served": counters.reader_served,
                "exclusive_served": counters.exclusive_served,
                "pending": self._pending,
                "statement_hits": counters.statement_hits,
                "statement_misses": counters.statement_misses,
            }
        snapshot["plan_cache"] = self.plan_cache.stats()
        snapshot["latency"] = self.latency_percentiles()
        if self._pipeline is not None:
            # dead-letter / mutation-failure visibility: a stuck pipeline
            # shows up here rather than as silently stale indexes
            snapshot["maintenance"] = self._pipeline.stats()
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admitting queries and shut the pools down.

        ``drain=True`` (default) waits for in-flight queries to finish;
        already-submitted futures complete either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._reader_pool.shutdown(wait=drain)
        self._exclusive_pool.shutdown(wait=drain)

    def __enter__(self) -> "QueryServer":
        """Context-manager entry (the server is usable immediately)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: drain and close."""
        self.close()
