"""Per-thread metric isolation for concurrent query serving.

Every simulated charge in the system lands on ``SimContext.metrics``, and a
query's bill is the *delta* between two snapshots of that collector
(:meth:`repro.core.base.RankJoinAlgorithm.execute`).  With many in-flight
queries on one platform, interleaved charges would corrupt every delta —
so the serving layer swaps the context's collector for a
:class:`ThreadLocalMetricsRouter` that forwards each charge to the active
thread's scoped collector (one fresh collector per served query), falling
back to the original shared collector outside any scope.

Charges are deterministic functions of the store state and the query, so a
query executed inside a scope produces exactly the metrics it would have
produced running alone — the property the concurrency test suite pins.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.cluster.metrics import MetricsCollector


class ThreadLocalMetricsRouter:
    """Duck-typed stand-in for a :class:`MetricsCollector` that routes every
    attribute access to the calling thread's scoped collector (or to the
    shared base collector when no scope is active)."""

    def __init__(self, base: MetricsCollector) -> None:
        self._base = base
        self._local = threading.local()

    @property
    def base(self) -> MetricsCollector:
        """The shared collector charges fall through to outside scopes."""
        return self._base

    @property
    def active(self) -> MetricsCollector:
        """The collector charges from the calling thread currently land on."""
        scoped = getattr(self._local, "collector", None)
        return scoped if scoped is not None else self._base

    def __getattr__(self, name: str):
        # all MetricsCollector methods and fields (advance_time, snapshot,
        # counters, ...) resolve against the thread's active collector
        return getattr(self.active, name)

    def __reduce__(self):
        # a router holds a threading.local — meaningless in another
        # process, and silently pickling it would smuggle a dead collector
        # across the boundary.  Metric deltas cross process boundaries as
        # immutable MetricsSnapshot values, never as live collectors.
        raise TypeError(
            "ThreadLocalMetricsRouter is process-local; ship "
            "MetricsSnapshot deltas across process boundaries instead"
        )

    @contextmanager
    def scoped(self, collector: "MetricsCollector | None" = None):
        """Route this thread's charges to ``collector`` (default: a fresh
        zeroed one) for the duration of the ``with`` block."""
        previous = getattr(self._local, "collector", None)
        if collector is None:
            # inherit the $/read rate so scoped dollar totals stay
            # comparable with shared-collector deltas
            collector = MetricsCollector(
                dollars_per_kv_read=self._base.dollars_per_kv_read
            )
        self._local.collector = collector
        try:
            yield self._local.collector
        finally:
            self._local.collector = previous


def install_router(ctx) -> ThreadLocalMetricsRouter:
    """Idempotently wrap ``ctx.metrics`` in a router and return it."""
    if not isinstance(ctx.metrics, ThreadLocalMetricsRouter):
        ctx.metrics = ThreadLocalMetricsRouter(ctx.metrics)
    return ctx.metrics
