"""N-way HRJN (§3 / §4.2.1 generalized).

The two-way operator generalizes directly: inputs arrive sorted by
descending score; each new tuple from relation ``i`` joins against the
Cartesian product of already-seen matching tuples of every other relation;
the threshold becomes

    S = max over i of  f(ŝ_1, …, s̄_i, …, ŝ_n)

(ŝ = first/top score per input, s̄ = latest/lowest seen), i.e. the best
score any join combination involving an unseen tuple could still reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.common.functions import AggregateFunction
from repro.common.multiway import MultiJoinTuple, combine_rows
from repro.common.types import ScoredRow
from repro.errors import QueryError

SCORE_EPSILON = 1e-12


@dataclass
class _InputState:
    by_join_value: dict[str, list[ScoredRow]] = field(default_factory=dict)
    top_score: "float | None" = None
    last_score: "float | None" = None
    tuples_seen: int = 0

    def observe(self, row: ScoredRow) -> None:
        if self.top_score is None:
            self.top_score = row.score
        elif row.score > self.last_score + SCORE_EPSILON:  # type: ignore[operator]
            raise QueryError(
                f"multi-way HRJN input not sorted: {row.score} after "
                f"{self.last_score}"
            )
        self.last_score = row.score
        self.tuples_seen += 1
        self.by_join_value.setdefault(row.join_value, []).append(row)


class MultiWayHRJN:
    """Incremental n-way HRJN with threshold-based termination."""

    def __init__(self, arity: int, function: AggregateFunction, k: int) -> None:
        if arity < 2:
            raise QueryError(f"arity must be >= 2: {arity}")
        if k <= 0:
            raise QueryError(f"k must be positive: {k}")
        self.arity = arity
        self.function = function
        self.k = k
        self._inputs = [_InputState() for _ in range(arity)]
        self._results: list[MultiJoinTuple] = []

    def add(self, index: int, row: ScoredRow) -> list[MultiJoinTuple]:
        """Feed one tuple from input ``index``; returns produced results."""
        if not 0 <= index < self.arity:
            raise QueryError(f"input index {index} out of range [0, {self.arity})")
        state = self._inputs[index]
        state.observe(row)

        others = []
        for other_index, other in enumerate(self._inputs):
            if other_index == index:
                continue
            matches = other.by_join_value.get(row.join_value)
            if not matches:
                return []  # some relation has no partner (yet)
            others.append((other_index, matches))

        produced: list[MultiJoinTuple] = []
        for combination in product(*(matches for _, matches in others)):
            rows: list[ScoredRow] = [None] * self.arity  # type: ignore[list-item]
            rows[index] = row
            for (other_index, _), match in zip(others, combination):
                rows[other_index] = match
            produced.append(combine_rows(rows, self.function))
        if produced:
            self._results.extend(produced)
            self._results.sort(key=MultiJoinTuple.sort_key)
            del self._results[self.k * 2 + 8 :]
        return produced

    @property
    def results(self) -> list[MultiJoinTuple]:
        return self._results[: self.k]

    def kth_score(self) -> "float | None":
        if len(self._results) < self.k:
            return None
        return self._results[self.k - 1].score

    def threshold(self) -> "float | None":
        """S = max_i f(ŝ_1, …, s̄_i, …, ŝ_n); None until all inputs seen."""
        tops = [state.top_score for state in self._inputs]
        lasts = [state.last_score for state in self._inputs]
        if any(score is None for score in tops):
            return None
        best = None
        for i in range(self.arity):
            scores = list(tops)
            scores[i] = lasts[i]
            candidate = self.function.combine(scores)  # type: ignore[arg-type]
            best = candidate if best is None else max(best, candidate)
        return best

    def terminated(self, exhausted: "tuple[bool, ...] | None" = None) -> bool:
        if exhausted is not None and all(exhausted):
            return True
        kth = self.kth_score()
        if kth is None:
            return False
        threshold = self.threshold()
        if threshold is None:
            return False
        return kth >= threshold - SCORE_EPSILON

    def tuples_seen(self) -> tuple[int, ...]:
        return tuple(state.tuples_seen for state in self._inputs)


class MultiWayHRJNRankJoin:
    """Index-free n-way HRJN pipeline over metered base-table scans.

    The coordinator streams every input relation once (batched scans, the
    same charging as any other coordinator algorithm), sorts each side by
    descending score in memory, then drives the n-way HRJN operator with
    alternating pulls until the generalized threshold fires.  No index is
    required, which makes this the fallback strategy at any arity — the
    n-way analogue of a client-side sort-merge baseline.
    """

    name = "HRJN-nway"

    #: scanner row caching for the base-table streams
    SCAN_CACHING = 200

    def __init__(self, platform) -> None:
        self.platform = platform

    def prepare(self, query) -> list:
        """Index-free: nothing to build."""
        return []

    def build_report(self, binding) -> None:
        return None

    def _load(self, binding) -> list[ScoredRow]:
        from repro.relational.binding import row_to_scored
        from repro.store.client import Scan

        htable = self.platform.store.table(binding.table)
        rows: list[ScoredRow] = []
        scan = Scan(families={binding.family}, caching=self.SCAN_CACHING)
        for row in htable.scan(scan):
            try:
                rows.append(row_to_scored(binding, row))
            except QueryError:
                continue  # rows lacking join/score columns don't join
        return rows

    def execute(self, query):
        from repro.query.results import MultiRankJoinResult

        before = self.platform.metrics.snapshot()
        relations = [self._load(binding) for binding in query.inputs]
        # coordinator-side sort costs CPU proportional to the rows moved
        model = self.platform.ctx.cost_model
        total_rows = sum(len(relation) for relation in relations)
        self.platform.metrics.advance_time(model.cpu_time(total_rows))

        # hrjn_join_multi sorts each input and drives the operator with
        # the same alternation/termination loop the in-memory reference
        # uses — one implementation, two callers
        tuples, seen = hrjn_join_multi(relations, query.function, query.k)

        after = self.platform.metrics.snapshot()
        return MultiRankJoinResult(
            algorithm=self.name,
            k=query.k,
            tuples=tuples,
            metrics=after - before,
            details={
                "rows_scanned": float(total_rows),
                **{f"tuples_seen_{i}": count for i, count in enumerate(seen)},
            },
        )


def hrjn_join_multi(
    relations: "list[list[ScoredRow]]",
    function: AggregateFunction,
    k: int,
) -> tuple[list[MultiJoinTuple], tuple[int, ...]]:
    """Run n-way HRJN to completion over in-memory inputs."""
    operator = MultiWayHRJN(len(relations), function, k)
    ordered = [
        sorted(relation, key=lambda r: (-r.score, r.row_key))
        for relation in relations
    ]
    positions = [0] * len(relations)

    def exhausted() -> tuple[bool, ...]:
        return tuple(
            positions[i] >= len(ordered[i]) for i in range(len(ordered))
        )

    index = 0
    while not operator.terminated(exhausted()):
        done = exhausted()
        if all(done):
            break
        while done[index]:
            index = (index + 1) % len(ordered)
        operator.add(index, ordered[index][positions[index]])
        positions[index] += 1
        index = (index + 1) % len(ordered)
    return operator.results, operator.tuples_seen()
