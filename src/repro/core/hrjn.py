"""The HRJN rank-join operator (Ilyas, Aref, Elmagarmid — VLDB 2003; §4.2.1).

HRJN consumes two inputs sorted by descending score.  It hash-joins every
newly retrieved tuple against the tuples already seen from the other input,
keeps a top-k buffer, and maintains the threshold

    S = max( f(s̄_L, ŝ_R), f(ŝ_L, s̄_R) )

where ``ŝ`` is the first (largest) and ``s̄`` the latest (smallest) score
seen per input.  No unseen join combination can beat ``S``, so the operator
terminates when the current k-th result's score reaches it.

The operator is incremental by design: ISL drives it with batched scans of
the ISL index, and it can equally run standalone over in-memory sorted
lists (the centralized setting of the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.functions import AggregateFunction
from repro.common.types import JoinTuple, ScoredRow
from repro.errors import QueryError

#: numeric slack when comparing scores against the threshold
SCORE_EPSILON = 1e-12

LEFT = 0
RIGHT = 1


@dataclass
class _SideState:
    """Everything HRJN remembers about one input."""

    by_join_value: dict[str, list[ScoredRow]] = field(default_factory=dict)
    top_score: "float | None" = None
    last_score: "float | None" = None
    tuples_seen: int = 0

    def observe(self, row: ScoredRow) -> None:
        if self.top_score is None:
            self.top_score = row.score
        elif row.score > self.last_score + SCORE_EPSILON:  # type: ignore[operator]
            raise QueryError(
                f"HRJN input not sorted: score {row.score} after "
                f"{self.last_score}"
            )
        self.last_score = row.score
        self.tuples_seen += 1
        self.by_join_value.setdefault(row.join_value, []).append(row)


class HRJNOperator:
    """Incremental two-way HRJN with threshold-based termination."""

    def __init__(self, function: AggregateFunction, k: int) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive: {k}")
        self.function = function
        self.k = k
        self._sides = (_SideState(), _SideState())
        self._results: list[JoinTuple] = []

    # -- feeding ------------------------------------------------------------

    def add(self, side: int, row: ScoredRow) -> list[JoinTuple]:
        """Feed one tuple from ``side``; returns join tuples it produced."""
        if side not in (LEFT, RIGHT):
            raise QueryError(f"side must be {LEFT} or {RIGHT}: {side}")
        mine = self._sides[side]
        other = self._sides[1 - side]
        mine.observe(row)

        produced: list[JoinTuple] = []
        for match in other.by_join_value.get(row.join_value, ()):
            left, right = (row, match) if side == LEFT else (match, row)
            produced.append(
                JoinTuple(
                    left_key=left.row_key,
                    right_key=right.row_key,
                    join_value=row.join_value,
                    score=self.function(left.score, right.score),
                    left_score=left.score,
                    right_score=right.score,
                )
            )
        if produced:
            self._results.extend(produced)
            self._results.sort(key=JoinTuple.sort_key)
            # keep a small buffer beyond k so ties are not lost
            del self._results[self.k * 2 + 8 :]
        return produced

    # -- inspection -----------------------------------------------------------

    @property
    def results(self) -> list[JoinTuple]:
        """Current top results (sorted, possibly fewer than k)."""
        return self._results[: self.k]

    def kth_score(self) -> "float | None":
        if len(self._results) < self.k:
            return None
        return self._results[self.k - 1].score

    def threshold(self) -> "float | None":
        """Best score any unseen join combination could still reach, or
        ``None`` until both inputs have produced at least one tuple."""
        left, right = self._sides
        if left.top_score is None or right.top_score is None:
            return None
        return max(
            self.function(left.last_score, right.top_score),  # type: ignore[arg-type]
            self.function(left.top_score, right.last_score),  # type: ignore[arg-type]
        )

    def terminated(self, exhausted: "tuple[bool, bool]" = (False, False)) -> bool:
        """True once the k-th result provably cannot be displaced.

        ``exhausted`` marks inputs with no tuples left; two exhausted
        inputs always terminate (the full join has been seen).
        """
        if all(exhausted):
            return True
        kth = self.kth_score()
        if kth is None:
            return False
        threshold = self.threshold()
        if threshold is None:
            return False
        # an exhausted side can no longer lower its contribution, but the
        # standard threshold is still a valid (if loose) upper bound
        return kth >= threshold - SCORE_EPSILON

    def tuples_seen(self) -> tuple[int, int]:
        return (self._sides[LEFT].tuples_seen, self._sides[RIGHT].tuples_seen)


def hrjn_join(
    left: "list[ScoredRow]",
    right: "list[ScoredRow]",
    function: AggregateFunction,
    k: int,
) -> tuple[list[JoinTuple], tuple[int, int]]:
    """Run HRJN to completion over in-memory inputs (sorted internally).

    Returns the top-k tuples and how many tuples each input contributed
    before termination (the depth metric).
    """
    operator = HRJNOperator(function, k)
    ordered = (
        sorted(left, key=lambda r: (-r.score, r.row_key)),
        sorted(right, key=lambda r: (-r.score, r.row_key)),
    )
    positions = [0, 0]

    def exhausted() -> tuple[bool, bool]:
        return (
            positions[LEFT] >= len(ordered[LEFT]),
            positions[RIGHT] >= len(ordered[RIGHT]),
        )

    side = LEFT
    while not operator.terminated(exhausted()):
        done = exhausted()
        if all(done):
            break
        if done[side]:
            side = 1 - side
        operator.add(side, ordered[side][positions[side]])
        positions[side] += 1
        side = 1 - side
    return operator.results, operator.tuples_seen()
