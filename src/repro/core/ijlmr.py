"""Inverse Join List MapReduce rank join — IJLMR (§4.1).

The index is an inverted list keyed by *join value*: one index row per
distinct join value, holding ``{row key, score}`` entries of every input
tuple with that value (Fig. 2), one column family per indexed relation in a
shared index table.  It is built by a map-only MapReduce job (Alg. 1).

Query processing (Alg. 2) is a single MapReduce job: each mapper scans its
region of the index (both column families — co-located by design), forms
the per-join-value Cartesian products, keeps an in-memory local top-k, and
emits it when input is exhausted; a single reducer merges the local lists
into the global top-k.  Only the local top-k lists cross the network — but
the mappers still scan the whole index, which is why IJLMR's dollar cost
stays near Hive's (§4.1.2).
"""

from __future__ import annotations

from repro.common.registry import fn_ref, proc_fn
from repro.common.serialization import decode_float, decode_str
from repro.common.types import JoinTuple
from repro.core.base import IndexBuildReport, RankJoinAlgorithm, _ExecutionDetails
from repro.core.indexes import (
    IJLMR_TABLE,
    ensure_index_table,
    family_built,
    sample_split_keys,
)
from repro.mapreduce.job import CollectOutput, Job, TableInput, TableOutput, TaskContext
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding, load_relation
from repro.store.cell import RowResult
from repro.store.client import Put


@proc_fn("ijlmr.build_map")
def _build_map(payload: dict, row_key: str, row: RowResult, task: TaskContext) -> None:
    """Invert one base-relation row on its join value (Algorithm 1 mapper)."""
    join_raw = row.value(payload["family"], payload["join_column"])
    score_raw = row.value(payload["family"], payload["score_column"])
    if join_raw is None or score_raw is None:
        task.bump("skipped_rows")
        return
    put = Put(decode_str(join_raw))
    put.add(payload["signature"], row_key, score_raw)
    task.emit(put.row, put)
    task.bump("indexed_rows")


class IJLMRRankJoin(RankJoinAlgorithm):
    """The IJLMR index + single-job MapReduce rank join."""

    name = "IJLMR"

    # -- index build (Algorithm 1) ------------------------------------------

    def _index_exists(self, binding: RelationBinding) -> bool:
        # the IJLMR query path needs no in-memory state, so adopting a
        # store-present family is just a matter of not rebuilding it
        return family_built(self.platform, IJLMR_TABLE, binding.signature)

    def _build_index(self, binding: RelationBinding) -> IndexBuildReport:
        platform = self.platform
        signature = binding.signature

        # pre-split the index table from a sample of join values so the
        # bulk build distributes across workers
        sample = [row.join_value for row in load_relation(platform.store, binding)]
        splits = sample_split_keys(sample, len(platform.ctx.cluster.workers))
        ensure_index_table(platform, IJLMR_TABLE, signature, splits)

        # the query job (Algorithm 2) stays closure-based — its scoring
        # function isn't picklable — but the build mapper is registered,
        # so index construction is process-capable
        job = Job(
            name=f"ijlmr-index-{signature}",
            input_source=TableInput.of(binding.table, {binding.family}),
            map_fn=fn_ref(
                "ijlmr.build_map",
                {
                    "family": binding.family,
                    "join_column": binding.join_column,
                    "score_column": binding.score_column,
                    "signature": signature,
                },
            ),
            output=TableOutput(IJLMR_TABLE),
        )

        def build() -> int:
            self.platform.runner.run(job)
            return self._family_bytes(signature)

        return self._metered_build(self.name, signature, build)

    def _family_bytes(self, signature: str) -> int:
        table = self.platform.store.backing(IJLMR_TABLE)
        return sum(
            cell.serialized_size()
            for row in table.all_rows(families={signature})  # lint: disable=RL301 (index-size accounting for the build report; the build job itself is metered)
            for cell in row
        )

    # -- query processing (Algorithm 2) --------------------------------------

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        left_family = query.left.signature
        right_family = query.right.signature
        function = query.function
        k = query.k

        def map_fn(join_value: str, row: RowResult, task: TaskContext) -> None:
            results: list[JoinTuple] = task.state.setdefault("topk", [])
            left_cells = row.family_cells(left_family)
            right_cells = row.family_cells(right_family)
            if not left_cells or not right_cells:
                return
            for lcell in left_cells:
                lscore = decode_float(lcell.value)
                for rcell in right_cells:
                    rscore = decode_float(rcell.value)
                    results.append(
                        JoinTuple(
                            left_key=lcell.qualifier,
                            right_key=rcell.qualifier,
                            join_value=join_value,
                            score=function(lscore, rscore),
                            left_score=lscore,
                            right_score=rscore,
                        )
                    )
                    task.bump("join_pairs")
            results.sort(key=JoinTuple.sort_key)
            del results[k:]

        def map_finish(task: TaskContext) -> None:
            for result in task.state.get("topk", ()):  # local top-k only
                task.emit("topk", _encode_tuple(result))

        def reduce_fn(_key: str, values: list, task: TaskContext) -> None:
            merged = sorted(
                (_decode_tuple(value) for value in values), key=JoinTuple.sort_key
            )
            for result in merged[:k]:
                task.emit("final", _encode_tuple(result))

        job = Job(
            name=f"ijlmr-query-{left_family}-{right_family}",
            input_source=TableInput.of(IJLMR_TABLE, {left_family, right_family}),
            map_fn=map_fn,
            map_finish_fn=map_finish,
            reduce_fn=reduce_fn,
            num_reducers=1,
            output=CollectOutput(),
        )
        result = self.platform.runner.run(job)
        details.set("map_tasks", result.map_tasks)
        details.set("join_pairs", result.counters.get("join_pairs", 0.0))
        return [_decode_tuple(value) for _, value in result.collected]


def _encode_tuple(result: JoinTuple) -> list:
    """Serialize a join tuple for shuffle-size accounting."""
    return [
        result.left_key,
        result.right_key,
        result.join_value,
        result.score,
        result.left_score,
        result.right_score,
    ]


def _decode_tuple(record: list) -> JoinTuple:
    return JoinTuple(
        left_key=record[0],
        right_key=record[1],
        join_value=record[2],
        score=record[3],
        left_score=record[4],
        right_score=record[5],
    )
