"""The paper's contributed rank-join algorithms.

* :mod:`repro.core.hrjn` — the centralized HRJN operator (Ilyas et al.,
  VLDB 2003) that ISL adapts;
* :mod:`repro.core.ijlmr` — Inverse Join List MapReduce rank join (§4.1);
* :mod:`repro.core.isl` — Inverse Score List rank join (§4.2);
* :mod:`repro.core.bfhm` — the Bloom Filter Histogram Matrix rank join
  (§5), with its update machinery (§6).
"""

from repro.core.base import IndexBuildReport, RankJoinAlgorithm
from repro.core.bfhm import BFHMRankJoin
from repro.core.hrjn import HRJNOperator
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin

__all__ = [
    "IndexBuildReport",
    "RankJoinAlgorithm",
    "BFHMRankJoin",
    "HRJNOperator",
    "IJLMRRankJoin",
    "ISLRankJoin",
]
