"""Multi-way ISL rank join (§3's n-way extension, coordinator-based).

The same ISL index serves any arity: one column family per relation in the
shared index table, scanned in descending score order.  The coordinator
round-robins batched scans over all n families, feeding the n-way HRJN
operator until its generalized threshold fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import MetricsSnapshot
from repro.common.functions import AggregateFunction, resolve_function
from repro.common.multiway import MultiJoinTuple
from repro.core.hrjn_multi import MultiWayHRJN
from repro.core.isl import DEFAULT_BATCH_FRACTION, ISLRankJoin, _SideCursor
from repro.errors import QueryError
from repro.platform import Platform
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding


@dataclass(frozen=True)
class MultiRankJoinQuery:
    """An n-way top-k equi-join over a single shared join attribute."""

    inputs: tuple[RelationBinding, ...]
    function: AggregateFunction
    k: int

    def __post_init__(self) -> None:
        if len(self.inputs) < 2:
            raise QueryError(
                f"multi-way query needs >= 2 relations, got {len(self.inputs)}"
            )
        if self.k <= 0:
            raise QueryError(f"k must be positive: {self.k}")

    @staticmethod
    def of(
        inputs: "list[RelationBinding]",
        function: "str | AggregateFunction",
        k: int,
    ) -> "MultiRankJoinQuery":
        return MultiRankJoinQuery(tuple(inputs), resolve_function(function), k)

    def pairwise(self, left_index: int = 0, right_index: int = 1) -> RankJoinQuery:
        """A two-way projection (used to reuse the 2-way index builder)."""
        if not isinstance(self.function, AggregateFunction):  # pragma: no cover
            raise QueryError("function must be an AggregateFunction")
        return RankJoinQuery(
            self.inputs[left_index], self.inputs[right_index], self.function,
            self.k,
        )


@dataclass
class MultiRankJoinResult:
    """N-way result with its measured costs."""

    algorithm: str
    k: int
    tuples: list[MultiJoinTuple]
    metrics: MetricsSnapshot
    details: dict[str, float] = field(default_factory=dict)

    def scores(self) -> list[float]:
        return [t.score for t in self.tuples]

    def recall_against(self, truth: "list[MultiJoinTuple]") -> float:
        if not truth:
            return 1.0
        want = sorted((t.score for t in truth), reverse=True)
        got = sorted((t.score for t in self.tuples), reverse=True)
        matched = i = j = 0
        while i < len(want) and j < len(got):
            if abs(want[i] - got[j]) <= 1e-9:
                matched += 1
                i += 1
                j += 1
            elif got[j] > want[i]:
                j += 1
            else:
                i += 1
        return matched / len(want)


class MultiWayISLRankJoin:
    """ISL generalized to n relations."""

    name = "ISL-nway"

    def __init__(
        self,
        platform: Platform,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
        batch_rows: "int | None" = None,
    ) -> None:
        self.platform = platform
        # delegate index builds (and batch sizing) to the 2-way machinery
        self._builder = ISLRankJoin(platform, batch_fraction, batch_rows)

    def prepare(self, query: MultiRankJoinQuery) -> None:
        """Build the ISL index family of every input relation."""
        for index in range(0, len(query.inputs) - 1):
            self._builder.prepare(query.pairwise(index, index + 1))

    def execute(self, query: MultiRankJoinQuery) -> MultiRankJoinResult:
        self.prepare(query)
        before = self.platform.metrics.snapshot()

        arity = len(query.inputs)
        operator = MultiWayHRJN(arity, query.function, query.k)
        cursors = [
            _SideCursor(
                self.platform,
                binding.signature,
                self._builder._batch_rows_for(binding.signature),
            )
            for binding in query.inputs
        ]

        index = 0
        batches = 0
        while True:
            exhausted = tuple(cursor.exhausted for cursor in cursors)
            if operator.terminated(exhausted):
                break
            if all(exhausted):
                break
            while cursors[index].exhausted:
                index = (index + 1) % arity
            batch = cursors[index].next_batch()
            batches += 1
            done = False
            for position, row in enumerate(batch):
                operator.add(index, row)
                drained = position == len(batch) - 1
                exhausted = tuple(
                    cursor.exhausted and (i != index or drained)
                    for i, cursor in enumerate(cursors)
                )
                if operator.terminated(exhausted):
                    done = True
                    break
            if done:
                break
            index = (index + 1) % arity

        after = self.platform.metrics.snapshot()
        seen = operator.tuples_seen()
        return MultiRankJoinResult(
            algorithm=self.name,
            k=query.k,
            tuples=operator.results,
            metrics=after - before,
            details={
                "batches": batches,
                **{f"tuples_seen_{i}": count for i, count in enumerate(seen)},
            },
        )
