"""Multi-way ISL rank join (§3's n-way extension, coordinator-based).

The same ISL index serves any arity: one column family per relation in the
shared index table, scanned in descending score order.  The coordinator
round-robins batched scans over all n families, feeding the n-way HRJN
operator until its generalized threshold fires.

Queries arrive as the engine-wide n-ary
:class:`~repro.query.spec.RankJoinQuery`; ``MultiRankJoinQuery`` remains
as a compatibility alias from before the spec unification.
"""

from __future__ import annotations

from repro.core.hrjn_multi import MultiWayHRJN
from repro.core.isl import DEFAULT_BATCH_FRACTION, ISLRankJoin, _SideCursor
from repro.platform import Platform
from repro.query.results import MultiRankJoinResult
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding

#: the unified n-ary spec (kept importable under the historical name)
MultiRankJoinQuery = RankJoinQuery


class MultiWayISLRankJoin:
    """ISL generalized to n relations."""

    name = "ISL-nway"

    def __init__(
        self,
        platform: Platform,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
        batch_rows: "int | None" = None,
    ) -> None:
        self.platform = platform
        # delegate index builds (and batch sizing) to the 2-way machinery
        self._builder = ISLRankJoin(platform, batch_fraction, batch_rows)

    def prepare(self, query: RankJoinQuery) -> list:
        """Build the ISL index family of every input relation."""
        reports = []
        for index in range(0, len(query.inputs) - 1):
            reports.extend(self._builder.prepare(query.pairwise(index, index + 1)))
        return reports

    def build_report(self, binding: RelationBinding):
        return self._builder.build_report(binding)

    def execute(self, query: RankJoinQuery) -> MultiRankJoinResult:
        self.prepare(query)
        before = self.platform.metrics.snapshot()

        arity = len(query.inputs)
        operator = MultiWayHRJN(arity, query.function, query.k)
        cursors = [
            _SideCursor(
                self.platform,
                binding.signature,
                self._builder._batch_rows_for(binding.signature),
            )
            for binding in query.inputs
        ]

        if self.platform.ctx.topology.parallel:
            batches = self._drain_scatter(operator, cursors, arity)
        else:
            batches = self._drain_serial(operator, cursors, arity)

        after = self.platform.metrics.snapshot()
        seen = operator.tuples_seen()
        return self._result(query, operator, batches, after - before, seen)

    def _drain_serial(self, operator, cursors, arity: int) -> int:
        """Seed behaviour: strict round-robin over the n index families."""
        index = 0
        batches = 0
        while True:
            exhausted = tuple(cursor.exhausted for cursor in cursors)
            if operator.terminated(exhausted):
                break
            if all(exhausted):
                break
            while cursors[index].exhausted:
                index = (index + 1) % arity
            batch = cursors[index].next_batch()
            batches += 1
            done = False
            for position, row in enumerate(batch):
                operator.add(index, row)
                drained = position == len(batch) - 1
                exhausted = tuple(
                    cursor.exhausted and (i != index or drained)
                    for i, cursor in enumerate(cursors)
                )
                if operator.terminated(exhausted):
                    done = True
                    break
            if done:
                break
            index = (index + 1) % arity
        return batches

    def _drain_scatter(self, operator, cursors, arity: int) -> int:
        """Multi-server: every round fetches the next batch of *all*
        non-exhausted sides as one scatter/gather — n cursors usually sit
        on regions of several servers, so the round costs the slowest
        server's queue instead of n serial fetches (same trade as the
        2-way :meth:`ISLRankJoin._run_scatter`)."""
        from repro.cluster.executor import ScatterTask, scatter_gather

        ctx = self.platform.ctx
        topology = ctx.topology
        batches = 0
        done = False
        while not done:
            exhausted = tuple(cursor.exhausted for cursor in cursors)
            if operator.terminated(exhausted) or all(exhausted):
                break
            active = [i for i in range(arity) if not cursors[i].exhausted]
            tasks = [
                ScatterTask(
                    cursors[i].server_hint(topology), cursors[i].next_batch
                )
                for i in active
            ]
            fetched = scatter_gather(ctx, tasks, label="isl")
            batches += len(active)
            remaining = {i: len(batch) for i, batch in zip(active, fetched)}
            for i, batch in zip(active, fetched):
                for row in batch:
                    operator.add(i, row)
                    remaining[i] -= 1
                    exhausted = tuple(
                        cursor.exhausted and remaining.get(side, 0) == 0
                        for side, cursor in enumerate(cursors)
                    )
                    if operator.terminated(exhausted):
                        done = True
                        break
                if done:
                    break
        return batches

    def _result(self, query, operator, batches, metrics, seen):
        return MultiRankJoinResult(
            algorithm=self.name,
            k=query.k,
            tuples=operator.results,
            metrics=metrics,
            details={
                "batches": batches,
                **{f"tuples_seen_{i}": count for i, count in enumerate(seen)},
            },
        )
