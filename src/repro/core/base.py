"""Common machinery of all rank-join algorithms.

Every algorithm — the paper's three contributions and the baselines —
implements the same contract: optionally build per-relation indices
(metered separately, as in Fig. 9), then execute queries whose costs are
reported as metric deltas (Figs. 7–8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cluster.metrics import MetricsSnapshot
from repro.common.types import JoinTuple
from repro.platform import Platform
from repro.query.results import RankJoinResult
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding


@dataclass
class IndexBuildReport:
    """Cost and footprint of building one relation's index."""

    index_name: str
    signature: str
    metrics: MetricsSnapshot
    index_bytes: int
    #: peak reducer memory observed during the build (0 for map-only jobs)
    reducer_peak_bytes: int = 0

    @property
    def build_time_s(self) -> float:
        return self.metrics.sim_time_s


@dataclass
class _ExecutionDetails:
    """Mutable scratch the concrete algorithms fill during a run."""

    values: dict[str, float] = field(default_factory=dict)

    def set(self, name: str, value: float) -> None:
        self.values[name] = value

    def bump(self, name: str, amount: float = 1.0) -> None:
        self.values[name] = self.values.get(name, 0.0) + amount


class RankJoinAlgorithm(ABC):
    """Base class: metering plus the prepare/execute lifecycle."""

    #: short name used in reports and figures
    name: str = "abstract"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._build_reports: dict[str, IndexBuildReport] = {}
        #: signatures whose index this instance *adopted* from the store
        #: (built earlier by another instance — e.g. another serving
        #: worker's engine) rather than building itself
        self._external_indexes: set[str] = set()

    # -- index lifecycle ----------------------------------------------------

    def prepare(self, query: RankJoinQuery) -> list[IndexBuildReport]:
        """Build whatever this algorithm needs for ``query`` (idempotent).

        An index already present in the store — built by a different
        instance over the same platform — is adopted instead of rebuilt,
        so per-worker engines in the serving layer never duplicate build
        work (or its metered cost).  Returns build reports for indices
        actually built by this call.
        """
        reports = []
        for binding in query.inputs:
            if binding.signature in self._build_reports:
                continue
            if binding.signature in self._external_indexes:
                continue
            if self._index_exists(binding):
                self._adopt_index(binding)
                self._external_indexes.add(binding.signature)
                continue
            report = self._build_index(binding)
            if report is not None:
                self._build_reports[binding.signature] = report
                reports.append(report)
        return reports

    def _build_index(self, binding: RelationBinding) -> "IndexBuildReport | None":
        """Build one relation's index; ``None`` for index-free algorithms."""
        return None

    def _index_exists(self, binding: RelationBinding) -> bool:
        """True iff the store already holds this algorithm's index for
        ``binding`` (unmetered probe; index-free algorithms say False)."""
        return False

    def _adopt_index(self, binding: RelationBinding) -> None:
        """Rehydrate any in-memory state a store-present index implies
        (e.g. ISL batch sizing, BFHM meta registration) without touching
        the meter."""

    def build_report(self, binding: RelationBinding) -> "IndexBuildReport | None":
        return self._build_reports.get(binding.signature)

    # -- execution -----------------------------------------------------------

    def execute(self, query: RankJoinQuery) -> RankJoinResult:
        """Run the query, reporting only this execution's costs."""
        if query.arity != 2:
            from repro.errors import QueryError

            raise QueryError(
                f"{self.name} is a two-way algorithm; route arity-"
                f"{query.arity} queries through the engine's multi-way "
                "dispatch (RankJoinEngine.execute) instead"
            )
        self.prepare(query)
        before = self.platform.metrics.snapshot()
        details = _ExecutionDetails()
        tuples = self._run(query, details)
        after = self.platform.metrics.snapshot()
        tuples = sorted(tuples, key=JoinTuple.sort_key)[: query.k]
        return RankJoinResult(
            algorithm=self.name,
            k=query.k,
            tuples=tuples,
            metrics=after - before,
            details=dict(details.values),
        )

    @abstractmethod
    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        """Produce (at least) the top-k join tuples."""

    # -- metered build helper ---------------------------------------------------

    def _metered_build(self, index_name: str, signature: str, build) -> IndexBuildReport:
        """Run ``build()`` (returning index bytes) under the meter."""
        metrics = self.platform.metrics
        peak_before = metrics.counters.get("reducer_peak_bytes", 0.0)
        metrics.set_counter("reducer_peak_bytes", 0.0)
        before = metrics.snapshot()
        index_bytes = build()
        after = metrics.snapshot()
        peak_during = metrics.counters.get("reducer_peak_bytes", 0.0)
        metrics.set_counter("reducer_peak_bytes", max(peak_before, peak_during))
        return IndexBuildReport(
            index_name=index_name,
            signature=signature,
            metrics=after - before,
            index_bytes=index_bytes,
            reducer_peak_bytes=int(peak_during),
        )
