"""Shared helpers for index tables.

All three indices live in "one big table" per index kind, with one column
family per indexed relation signature (§4.1.1), so that index regions for
the same row-key ranges across relations land on the same node.  Index
tables are pre-split from a sample of their future row keys so bulk builds
spread across the cluster, like production HBase bulk loads.
"""

from __future__ import annotations

from repro.platform import Platform
from repro.store.table import StoreTable

IJLMR_TABLE = "ijlmr_idx"
ISL_TABLE = "isl_idx"
BFHM_TABLE = "bfhm_idx"
DRJN_TABLE = "drjn_idx"


def sample_split_keys(row_keys: "list[str]", pieces: int) -> list[str]:
    """Evenly spaced split points over the sorted key sample."""
    if pieces <= 1:
        return []
    ordered = sorted(set(row_keys))
    if len(ordered) < 2 * pieces:
        return []
    step = len(ordered) // pieces
    return [ordered[i * step] for i in range(1, pieces)]


def ensure_index_table(
    platform: Platform,
    table_name: str,
    family: str,
    split_keys: "list[str] | None" = None,
) -> StoreTable:
    """Create the index table (pre-split) or add the new family to it."""
    store = platform.store
    if not store.has_table(table_name):
        store.create_table(table_name, {family}, split_keys=split_keys)
    else:
        store.backing(table_name).add_family(family)
    return store.backing(table_name)


def family_built(platform: Platform, table_name: str, family: str) -> bool:
    """True iff the index table already holds data for ``family``."""
    if not platform.store.has_table(table_name):
        return False
    table = platform.store.backing(table_name)
    if family not in table.families:
        return False
    for row in table.all_rows(families={family}):  # lint: disable=RL301 (existence probe during adoption/registration; not part of any query's cost)
        if not row.empty:
            return True
    return False
