"""BFHM — the Bloom Filter Histogram Matrix rank join (§5, §6).

* :mod:`repro.core.bfhm.bucket` — the bucket data structure and its wire
  codecs (blob rows, reverse-mapping rows, meta row);
* :mod:`repro.core.bfhm.index` — the MapReduce index build (Alg. 5);
* :mod:`repro.core.bfhm.estimation` — phase 1: bucket fetching, bucket
  joins (Alg. 7), and the termination test (Alg. 6);
* :mod:`repro.core.bfhm.algorithm` — the full query driver: phase 2
  (reverse mapping), and the §5.3 recall-repair loop guaranteeing 100%
  recall;
* :mod:`repro.core.bfhm.updates` — §6 update machinery: insertion and
  tombstone records, replay, and eager/lazy/offline blob write-back.
"""

from repro.core.bfhm.algorithm import BFHMRankJoin, TerminationPolicy
from repro.core.bfhm.bucket import BFHMBucketData
from repro.core.bfhm.index import BFHMIndexBuilder
from repro.core.bfhm.updates import WriteBackPolicy

__all__ = [
    "BFHMRankJoin",
    "TerminationPolicy",
    "BFHMBucketData",
    "BFHMIndexBuilder",
    "WriteBackPolicy",
]
