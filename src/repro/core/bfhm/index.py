"""BFHM index construction (Algorithm 5).

Mappers partition tuples into histogram buckets by score; each reducer
handles one bucket: it inserts every tuple's join value into the bucket's
hybrid single-hash counting filter, emits one reverse-mapping entry per
tuple (keyed ``bucket|bitPos``), tracks the actual min/max scores, and
finally emits the Golomb-compressed bucket blob row.

Filter sizing follows §7.1: "All Bloom filters were configured to contain
the most heavily populated of the buckets with a false positive probability
of 5%" — a cheap counting pre-pass finds the heaviest bucket, then
``m = -n_max / ln(1 - 0.05)`` bits (single-hash formula).
"""

from __future__ import annotations

from repro.common.serialization import (
    decode_float,
    decode_str,
    encode_float,
    encode_str,
)
from repro.core.bfhm.bucket import (
    META_ROW,
    Q_BLOB,
    Q_BUCKETS,
    Q_COUNT,
    Q_M_BITS,
    Q_MAX,
    Q_MIN,
    Q_NUM_BUCKETS,
    BFHMMeta,
    blob_row_key,
    decode_bucket_list,
    encode_blob,
    encode_bucket_list,
    encode_reverse_value,
    reverse_row_key,
)
from repro.common.registry import fn_ref, proc_fn
from repro.core.indexes import BFHM_TABLE, ensure_index_table
from repro.errors import IndexNotBuiltError
from repro.mapreduce.job import Job, TableInput, TableOutput, TaskContext
from repro.platform import Platform
from repro.relational.binding import RelationBinding, load_relation
from repro.sketches.bloom import single_hash_bit_count
from repro.sketches.histogram import score_to_bucket
from repro.sketches.hybrid import HybridBloomFilter
from repro.store.client import Get, Put

#: §7.1 filter configuration
DEFAULT_FP_RATE = 0.05
DEFAULT_NUM_BUCKETS = 100


# -- build task functions (registered: the build job is process-capable) -----


@proc_fn("bfhm.build_map")
def _build_map(payload: dict, row_key: str, row, task: TaskContext) -> None:
    """Bucket one base-relation row by score (Algorithm 5 map side)."""
    join_raw = row.value(payload["family"], payload["join_column"])
    score_raw = row.value(payload["family"], payload["score_column"])
    if join_raw is None or score_raw is None:
        task.bump("skipped_rows")
        return
    score = decode_float(score_raw)
    bucket = score_to_bucket(score, payload["num_buckets"])
    task.emit(bucket, [row_key, decode_str(join_raw), score])


@proc_fn("bfhm.build_reduce")
def _build_reduce(payload: dict, bucket: int, values: list, task: TaskContext) -> None:
    """Build one bucket: filter, reverse-mapping rows, compressed blob."""
    signature = payload["signature"]
    bucket_filter = HybridBloomFilter(payload["m_bits"])
    min_score = float("inf")
    max_score = float("-inf")
    for row_key, join_value, score in values:
        bit_position = bucket_filter.insert(join_value)
        min_score = min(min_score, score)
        max_score = max(max_score, score)
        reverse_put = Put(reverse_row_key(bucket, bit_position))
        reverse_put.add(
            signature, row_key, encode_reverse_value(join_value, score)
        )
        task.emit(reverse_put.row, reverse_put)
    blob_put = Put(blob_row_key(bucket))
    blob_put.add(signature, Q_BLOB, encode_blob(bucket_filter.to_blob()))
    blob_put.add(signature, Q_MIN, encode_float(min_score))
    blob_put.add(signature, Q_MAX, encode_float(max_score))
    blob_put.add(signature, Q_COUNT, encode_str(str(len(values))))
    task.emit(blob_put.row, blob_put)
    task.bump("buckets_built")


class BFHMIndexBuilder:
    """Builds and introspects one relation's BFHM."""

    def __init__(
        self,
        platform: Platform,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        fp_rate: float = DEFAULT_FP_RATE,
        m_bits: "int | None" = None,
    ) -> None:
        self.platform = platform
        self.num_buckets = num_buckets
        self.fp_rate = fp_rate
        #: deployment-wide filter size; bucket joins AND two filters, so all
        #: relations must share one m (fixed after the first plan)
        self.m_bits = m_bits

    # -- sizing pre-pass ----------------------------------------------------

    def _heaviest_bucket(self, binding: RelationBinding) -> int:
        counts: dict[int, int] = {}
        for row in load_relation(self.platform.store, binding):
            bucket = score_to_bucket(row.score, self.num_buckets)
            counts[bucket] = counts.get(bucket, 0) + 1
        return max(counts.values(), default=1)

    def plan_for(self, bindings: "tuple[RelationBinding, ...]") -> int:
        """Fix the common filter size from the heaviest bucket across all
        ``bindings`` at the target FP rate (§7.1's configuration).  A no-op
        once the size is fixed."""
        if self.m_bits is None:
            heaviest = max(self._heaviest_bucket(b) for b in bindings)
            self.m_bits = single_hash_bit_count(heaviest, self.fp_rate)
        return self.m_bits

    def _plan_filter_bits(self, binding: RelationBinding) -> int:
        """Filter size for a build: the planned common size, or (single
        relation usage) one sized to this relation alone."""
        return self.plan_for((binding,))

    # -- the build job (Algorithm 5) ------------------------------------------

    def index_family(self, signature: str) -> str:
        """Column family of this builder's BFHM for ``signature`` (encodes
        the bucket-count configuration; see :class:`BFHMMeta`)."""
        return f"{signature}__b{self.num_buckets}"

    def build(self, binding: RelationBinding) -> int:
        """Build the BFHM for ``binding``; returns the index's byte size."""
        platform = self.platform
        signature = self.index_family(binding.signature)
        num_buckets = self.num_buckets
        m_bits = self._plan_filter_bits(binding)

        # pre-split on bucket-prefixed keys so blob + reverse rows spread
        splits = [
            blob_row_key(b) for b in range(0, num_buckets,
                                           max(1, num_buckets // max(1, len(platform.ctx.cluster.workers))))
        ][1:]
        ensure_index_table(platform, BFHM_TABLE, signature, splits)

        job = Job(
            name=f"bfhm-index-{signature}",
            input_source=TableInput.of(binding.table, {binding.family}),
            map_fn=fn_ref(
                "bfhm.build_map",
                {
                    "family": binding.family,
                    "join_column": binding.join_column,
                    "score_column": binding.score_column,
                    "num_buckets": num_buckets,
                },
            ),
            reduce_fn=fn_ref(
                "bfhm.build_reduce",
                {"signature": signature, "m_bits": m_bits},
            ),
            num_reducers=max(1, len(platform.ctx.cluster.workers)),
            # bucket-number keys keep one bucket per reduce group
            partition_fn=lambda key, n: key % n,
            output=TableOutput(BFHM_TABLE),
        )
        platform.runner.run(job)
        self._write_meta(binding, m_bits)
        return self.index_bytes(signature)

    def _write_meta(self, binding: RelationBinding, m_bits: int) -> None:
        """Write the meta row listing non-empty buckets (metered put)."""
        signature = self.index_family(binding.signature)
        table = self.platform.store.backing(BFHM_TABLE)
        buckets = sorted(
            int(row.row[1:])
            for row in table.all_rows(families={signature})  # lint: disable=RL301 (build-side bucket enumeration; the MapReduce build already charged these writes)
            if row.row.startswith("B") and row.value(signature, Q_BLOB) is not None
        )
        htable = self.platform.store.table(BFHM_TABLE)
        meta_put = Put(META_ROW)
        meta_put.add(signature, Q_NUM_BUCKETS, encode_str(str(self.num_buckets)))
        meta_put.add(signature, Q_M_BITS, encode_str(str(m_bits)))
        meta_put.add(signature, Q_BUCKETS, encode_bucket_list(buckets))
        htable.put(meta_put)
        htable.flush()

    # -- introspection --------------------------------------------------------

    def index_bytes(self, signature: str) -> int:
        table = self.platform.store.backing(BFHM_TABLE)
        return sum(
            cell.serialized_size()
            for row in table.all_rows(families={signature})  # lint: disable=RL301 (index-size accounting for the build report; the build job itself is metered)
            for cell in row
        )

    def read_meta(self, platform: Platform, signature: str) -> BFHMMeta:
        """Metered read of the meta row (start of every query).

        Accepts either a relation signature or an already-resolved index
        family name.
        """
        family = (
            signature if "__b" in signature else self.index_family(signature)
        )
        htable = platform.store.table(BFHM_TABLE)
        row = htable.get(Get(META_ROW, families={family}))
        num_buckets_raw = row.value(family, Q_NUM_BUCKETS)
        m_bits_raw = row.value(family, Q_M_BITS)
        buckets_raw = row.value(family, Q_BUCKETS)
        if num_buckets_raw is None or buckets_raw is None or m_bits_raw is None:
            raise IndexNotBuiltError(f"BFHM:{family}")
        return BFHMMeta(
            num_buckets=int(decode_str(num_buckets_raw)),
            m_bits=int(decode_str(m_bits_raw)),
            buckets=tuple(decode_bucket_list(buckets_raw)),
            family=family,
        )

    def read_meta_unmetered(self, signature: str) -> "BFHMMeta | None":
        """The meta row via the backing table — no cost charged.

        Used when *adopting* a store-present index built by another
        instance: rehydrating in-memory registration must not bill anyone.
        Returns ``None`` when the index (or its meta row) is absent.
        """
        family = (
            signature if "__b" in signature else self.index_family(signature)
        )
        store = self.platform.store
        if not store.has_table(BFHM_TABLE):
            return None
        table = store.backing(BFHM_TABLE)
        if family not in table.families:
            return None
        row = table.read_row(META_ROW, families={family})  # lint: disable=RL301 (adoption rehydrates in-memory registration; billing it would double-charge the original builder)
        num_buckets_raw = row.value(family, Q_NUM_BUCKETS)
        m_bits_raw = row.value(family, Q_M_BITS)
        buckets_raw = row.value(family, Q_BUCKETS)
        if num_buckets_raw is None or buckets_raw is None or m_bits_raw is None:
            return None
        return BFHMMeta(
            num_buckets=int(decode_str(num_buckets_raw)),
            m_bits=int(decode_str(m_bits_raw)),
            buckets=tuple(decode_bucket_list(buckets_raw)),
            family=family,
        )
