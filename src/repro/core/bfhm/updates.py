"""BFHM online updates (§6).

Reverse mappings are maintained directly (insert: a new qualifier in the
``bucket|bitPos`` row; delete: the store's vanilla delete).  Blob updates
are deferred through **insertion** and **tombstone records**: extra
qualifiers in the bucket row carrying the tuple's rowkey, join value and
score, stamped with the original mutation timestamp.  Whoever fetches the
bucket row replays the records in timestamp order over the stored blob and
obtains the up-to-date filter; the reconstructed blob can be written back

* **eagerly** — at the start of query processing (worst case for query
  latency; the §7.2 update experiment's configuration),
* **lazily** — after query results are returned,
* **offline** — by a periodic sweeper thread,

optionally only when at least ``writeback_threshold`` records have piled
up.  Row-level atomicity plus timestamp ordering make the replay lossless.
"""

from __future__ import annotations

import enum

from repro.common.serialization import decode_float, decode_str, encode_float, encode_str
from repro.core.bfhm.blobcache import decode_cached
from repro.core.bfhm.bucket import (
    META_ROW,
    Q_BLOB,
    Q_BUCKETS,
    Q_COUNT,
    Q_MAX,
    Q_MIN,
    BFHMBucketData,
    BFHMMeta,
    blob_row_key,
    decode_bucket_list,
    encode_blob,
    encode_bucket_list,
    encode_reverse_value,
    reverse_row_key,
)
from repro.core.indexes import BFHM_TABLE
from repro.errors import IndexError_
from repro.platform import Platform
from repro.sketches.histogram import score_to_bucket
from repro.sketches.hybrid import HybridBloomFilter
from repro.store.cell import RowResult
from repro.store.client import Delete, Get, Put

#: update-record qualifier prefix: u<timestamp>|<op>|<rowkey>
_RECORD_PREFIX = "u"
_OP_INSERT = "i"
_OP_DELETE = "d"


class WriteBackPolicy(enum.Enum):
    """When reconstructed blobs are persisted (§6)."""

    EAGER = "eager"
    LAZY = "lazy"
    OFFLINE = "offline"


def record_qualifier(timestamp: int, op: str, row_key: str) -> str:
    """Qualifier of one §6 update record riding in a blob row."""
    return f"{_RECORD_PREFIX}{timestamp:012d}|{op}|{row_key}"


def parse_record_qualifier(qualifier: str) -> "tuple[int, str, str] | None":
    """``(timestamp, op, row_key)`` of an update record, or None."""
    if not qualifier.startswith(_RECORD_PREFIX):
        return None
    pieces = qualifier[1:].split("|", 2)
    if len(pieces) != 3 or pieces[1] not in (_OP_INSERT, _OP_DELETE):
        return None
    try:
        return (int(pieces[0]), pieces[1], pieces[2])
    except ValueError:
        return None


class BFHMUpdateManager:
    """Applies online mutations and replays them at read time."""

    def __init__(
        self,
        platform: Platform,
        policy: WriteBackPolicy = WriteBackPolicy.EAGER,
        writeback_threshold: int = 1,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.writeback_threshold = max(1, writeback_threshold)
        self._metas: dict[str, BFHMMeta] = {}
        #: (signature, bucket) -> reconstructed data awaiting lazy write-back
        self._pending: dict[tuple[str, int], BFHMBucketData] = {}
        self.replays = 0
        self.writebacks = 0

    # -- meta handling ---------------------------------------------------------

    def register_meta(self, signature: str, meta: BFHMMeta) -> None:
        """Register under both the relation signature and the index family
        so mutation interceptors (which know signatures) and bucket readers
        (which know families) both resolve."""
        self._metas[signature] = meta
        if meta.family:
            self._metas[meta.family] = meta

    def meta(self, signature: str) -> BFHMMeta:
        try:
            return self._metas[signature]
        except KeyError:
            raise IndexError_(
                f"BFHM meta for {signature!r} not registered with the "
                "update manager"
            ) from None

    def forget(self, signature_prefix: str) -> None:
        """Drop registered metas and pending write-backs whose signature
        (or index family) starts with ``signature_prefix`` — the eviction
        hook for short-lived relations like cascade intermediates."""
        for key in [k for k in self._metas if k.startswith(signature_prefix)]:
            del self._metas[key]
        for key in [
            k for k in self._pending if k[0].startswith(signature_prefix)
        ]:
            del self._pending[key]

    def _extend_meta_buckets(self, signature: str, buckets: "set[int]") -> None:
        """Record newly non-empty buckets in the meta row (one put for the
        whole set, however many buckets an insert batch lit up)."""
        meta = self.meta(signature)
        new = buckets - set(meta.buckets)
        if not new:
            return
        merged = tuple(sorted((*meta.buckets, *new)))
        updated = BFHMMeta(meta.num_buckets, meta.m_bits, merged, meta.family)
        self.register_meta(signature, updated)
        htable = self.platform.store.table(BFHM_TABLE)
        put = Put(META_ROW)
        put.add(meta.family, Q_BUCKETS, encode_bucket_list(list(merged)))
        htable.put(put)

    # -- mutation path (intercepted by the maintenance layer) --------------------

    def apply_insert(
        self, signature: str, row_key: str, join_value: str, score: float,
        timestamp: "int | None" = None,
    ) -> int:
        """Insert one tuple: reverse mapping + insertion record.

        Returns the bucket the tuple landed in.
        """
        return self.apply_insert_batch(
            signature, [(row_key, join_value, score)], timestamp
        )[0]

    def apply_insert_batch(
        self,
        signature: str,
        items: "list[tuple[str, str, float]]",
        timestamp: "int | None" = None,
    ) -> list[int]:
        """Insert many ``(row key, join value, score)`` tuples sharing one
        mutation timestamp.

        Reverse-mapping puts coalesce per ``bucket|bitPos`` row and §6
        insertion records coalesce per bucket row, so the whole batch is
        one ``put_batch`` (one RPC per region touched) plus at most one
        meta-row update — instead of two puts and a meta check per tuple.
        Returns the bucket of each tuple, in input order.
        """
        if not items:
            return []
        meta = self.meta(signature)
        timestamp = (
            timestamp if timestamp is not None else self.platform.ctx.next_timestamp()
        )
        probe = HybridBloomFilter(meta.m_bits)
        reverse_puts: "dict[str, Put]" = {}
        record_puts: "dict[str, Put]" = {}
        buckets: list[int] = []
        for row_key, join_value, score in items:
            bucket = score_to_bucket(score, meta.num_buckets)
            buckets.append(bucket)
            value = encode_reverse_value(join_value, score)
            reverse_key = reverse_row_key(bucket, probe.position(join_value))
            reverse_put = reverse_puts.get(reverse_key)
            if reverse_put is None:
                reverse_put = reverse_puts[reverse_key] = Put(
                    reverse_key, timestamp=timestamp
                )
            reverse_put.add(meta.family, row_key, value)
            blob_key = blob_row_key(bucket)
            record_put = record_puts.get(blob_key)
            if record_put is None:
                record_put = record_puts[blob_key] = Put(
                    blob_key, timestamp=timestamp
                )
            record_put.add(
                meta.family,
                record_qualifier(timestamp, _OP_INSERT, row_key),
                value,
            )
        htable = self.platform.store.table(BFHM_TABLE)
        htable.put_batch([*reverse_puts.values(), *record_puts.values()])
        self._extend_meta_buckets(signature, set(buckets))
        return buckets

    def apply_delete(
        self, signature: str, row_key: str, join_value: str, score: float,
        timestamp: "int | None" = None,
    ) -> int:
        """Delete one tuple: drop its reverse mapping, add a tombstone
        record for the blob replay."""
        return self.apply_delete_batch(
            signature, [(row_key, join_value, score)], timestamp
        )[0]

    def apply_delete_batch(
        self,
        signature: str,
        items: "list[tuple[str, str, float]]",
        timestamp: "int | None" = None,
    ) -> list[int]:
        """Delete many ``(row key, join value, score)`` tuples sharing one
        mutation timestamp: batched reverse-mapping tombstones plus §6
        deletion records coalesced per bucket row.  Returns each tuple's
        bucket, in input order."""
        if not items:
            return []
        meta = self.meta(signature)
        timestamp = (
            timestamp if timestamp is not None else self.platform.ctx.next_timestamp()
        )
        probe = HybridBloomFilter(meta.m_bits)
        deletes: list[Delete] = []
        record_puts: "dict[str, Put]" = {}
        buckets: list[int] = []
        for row_key, join_value, score in items:
            bucket = score_to_bucket(score, meta.num_buckets)
            buckets.append(bucket)
            deletes.append(
                Delete(
                    reverse_row_key(bucket, probe.position(join_value)),
                    family=meta.family,
                    qualifier=row_key,
                    timestamp=timestamp,
                )
            )
            blob_key = blob_row_key(bucket)
            record_put = record_puts.get(blob_key)
            if record_put is None:
                record_put = record_puts[blob_key] = Put(
                    blob_key, timestamp=timestamp
                )
            record_put.add(
                meta.family,
                record_qualifier(timestamp, _OP_DELETE, row_key),
                encode_reverse_value(join_value, score),
            )
        htable = self.platform.store.table(BFHM_TABLE)
        htable.delete_batch(deletes)
        htable.put_batch(list(record_puts.values()))
        return buckets

    # -- read-time replay -----------------------------------------------------------

    def decode_with_replay(
        self, signature: str, bucket: int, row: RowResult
    ) -> BFHMBucketData:
        """Decode a bucket row, replaying any pending update records."""
        records: list[tuple[int, str, str, bytes]] = []
        for cell in row.family_cells(signature):
            parsed = parse_record_qualifier(cell.qualifier)
            if parsed is not None:
                records.append((*parsed, cell.value))

        blob_raw = row.value(signature, Q_BLOB)
        min_raw = row.value(signature, Q_MIN)
        max_raw = row.value(signature, Q_MAX)
        count_raw = row.value(signature, Q_COUNT)

        if blob_raw is not None:
            # cached decode hands back a fresh copy, so the record replay
            # below can mutate the filter without poisoning the cache
            bucket_filter = decode_cached(blob_raw)
            min_score = decode_float(min_raw) if min_raw is not None else float("inf")
            max_score = decode_float(max_raw) if max_raw is not None else float("-inf")
            count = int(decode_str(count_raw)) if count_raw is not None else 0
        else:
            if not records:
                raise IndexError_(
                    f"BFHM bucket row B{bucket:05d} missing for {signature}"
                )
            bucket_filter = HybridBloomFilter(self.meta(signature).m_bits)
            min_score = float("inf")
            max_score = float("-inf")
            count = 0

        if not records:
            return BFHMBucketData(bucket, min_score, max_score, count, bucket_filter)

        # replay in mutation-timestamp order (§6: "replay all row mutations
        # in timestamp order and reconstruct the up-to-date blob")
        self.replays += 1
        latest_timestamp = 0
        for timestamp, op, _row_key, value in sorted(records):
            score = decode_float(value[:8])
            join_value = value[8:].decode("utf-8")
            latest_timestamp = max(latest_timestamp, timestamp)
            if op == _OP_INSERT:
                bucket_filter.insert(join_value)
                count += 1
                min_score = min(min_score, score)
                max_score = max(max_score, score)
            else:
                bucket_filter.remove(join_value)
                count -= 1
                # min/max stay as conservative (possibly loose) bounds

        data = BFHMBucketData(bucket, min_score, max_score, count, bucket_filter)
        if len(records) >= self.writeback_threshold:
            if self.policy is WriteBackPolicy.EAGER:
                self._write_back(signature, data, records, latest_timestamp)
            elif self.policy is WriteBackPolicy.LAZY:
                self._pending[(signature, bucket)] = data
        return data

    # -- write-back ---------------------------------------------------------------------

    def _write_back(
        self,
        signature: str,
        data: BFHMBucketData,
        records: "list[tuple[int, str, str, bytes]]",
        latest_timestamp: int,
    ) -> None:
        """Persist the reconstructed blob and purge replayed records, all
        stamped with the latest replayed mutation's timestamp (§6)."""
        htable = self.platform.store.table(BFHM_TABLE)
        row_key = blob_row_key(data.bucket)
        put = Put(row_key, timestamp=self.platform.ctx.next_timestamp())
        put.add(signature, Q_BLOB, encode_blob(data.filter.to_blob()))
        put.add(signature, Q_MIN, encode_float(data.min_score))
        put.add(signature, Q_MAX, encode_float(data.max_score))
        put.add(signature, Q_COUNT, encode_str(str(data.count)))
        htable.put(put)
        for timestamp, op, record_row_key, _value in records:
            if timestamp <= latest_timestamp:
                htable.delete(
                    Delete(row_key, family=signature,
                           qualifier=record_qualifier(timestamp, op, record_row_key))
                )
        self.writebacks += 1

    def flush_pending(self) -> int:
        """Lazy write-back: persist every reconstructed blob queued during
        the last query.  Returns how many were written."""
        flushed = 0
        for (signature, bucket), data in sorted(self._pending.items()):
            htable = self.platform.store.table(BFHM_TABLE)
            row = htable.get(_bucket_get(signature, bucket))
            records = [
                (*parsed, cell.value)
                for cell in row.family_cells(signature)
                if (parsed := parse_record_qualifier(cell.qualifier)) is not None
            ]
            if records:
                self._write_back(
                    signature, data, records, max(r[0] for r in records)
                )
                flushed += 1
        self._pending.clear()
        return flushed

    def offline_sweep(self, signature: str) -> int:
        """Offline write-back: probe every bucket row for pending records
        (the §6 "thread periodically probing bucket rows")."""
        meta = self.meta(signature)
        family = meta.family
        htable = self.platform.store.table(BFHM_TABLE)
        swept = 0
        for bucket in meta.buckets:
            row = htable.get(_bucket_get(family, bucket))
            records = [
                (*parsed, cell.value)
                for cell in row.family_cells(family)
                if (parsed := parse_record_qualifier(cell.qualifier)) is not None
            ]
            if not records:
                continue
            data = self.decode_with_replay(family, bucket, row)
            self._write_back(family, data, records, max(r[0] for r in records))
            swept += 1
        return swept


def _bucket_get(signature: str, bucket: int) -> Get:
    return Get(blob_row_key(bucket), families={signature})
