"""BFHM query phase 1: result-set estimation (Algorithms 6 and 7).

The coordinator fetches BFHM bucket rows for the two relations alternately,
in decreasing score order.  Every newly fetched bucket is "joined" against
all previously fetched buckets of the other relation: bitwise-AND of the
filters, α-compensated cardinality from the counter products, and min/max
join scores from the buckets' actual min/max run through the aggregate
function.  Estimation stops when the termination test says no unexamined
bucket combination can beat the k-th estimated result.

Two termination policies are provided (the paper's running example mixes
bounds; see DESIGN.md):

* ``CONSERVATIVE`` (default) — the gate is the k-th tuple of the estimate
  expanded in descending *min-score* order; nothing reachable above that
  guaranteed floor remains, so phase 1 alone can never drop a result.
* ``AGGRESSIVE`` — the paper's narrative bound (descending *max-score*
  order); terminates earlier, relying on the §5.3 recall-repair loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.functions import AggregateFunction
from repro.common.serialization import decode_float, decode_str
from repro.core.bfhm.blobcache import decode_cached
from repro.core.bfhm.bucket import (
    Q_BLOB,
    Q_COUNT,
    Q_MAX,
    Q_MIN,
    BFHMBucketData,
    BFHMMeta,
    blob_row_key,
)
from repro.core.bfhm.updates import BFHMUpdateManager
from repro.core.indexes import BFHM_TABLE
from repro.errors import IndexError_
from repro.platform import Platform
from repro.store.client import Get

SCORE_EPSILON = 1e-12

class TerminationPolicy(enum.Enum):
    """Which bound of the k-th estimated result gates phase-1 termination."""

    CONSERVATIVE = "conservative"
    AGGRESSIVE = "aggressive"


@dataclass
class EstimatedResult:
    """One bucket-pair join estimate (a row of Fig. 6(c))."""

    left_bucket: int
    right_bucket: int
    common_positions: list[int]
    cardinality: float
    min_score: float
    max_score: float


@dataclass
class _FetchedBucket:
    data: BFHMBucketData

    @property
    def bucket(self) -> int:
        return self.data.bucket


class BFHMEstimator:
    """Resumable phase-1 state: fetched buckets + estimated results."""

    def __init__(
        self,
        platform: Platform,
        signatures: tuple[str, str],
        metas: tuple[BFHMMeta, BFHMMeta],
        function: AggregateFunction,
        policy: TerminationPolicy = TerminationPolicy.CONSERVATIVE,
        update_manager: "BFHMUpdateManager | None" = None,
    ) -> None:
        self.platform = platform
        self.signatures = signatures
        self.metas = metas
        self.function = function
        self.policy = policy
        self.update_manager = update_manager
        self.fetched: tuple[list[_FetchedBucket], list[_FetchedBucket]] = ([], [])
        self._next_index = [0, 0]
        self.results: list[EstimatedResult] = []
        self.total_cardinality = 0.0
        self.buckets_fetched = 0

    # -- bucket fetching ------------------------------------------------------

    def side_exhausted(self, side: int) -> bool:
        return self._next_index[side] >= len(self.metas[side].buckets)

    def next_bucket_number(self, side: int) -> "int | None":
        if self.side_exhausted(side):
            return None
        return self.metas[side].buckets[self._next_index[side]]

    def _fetch_bucket(self, side: int) -> "_FetchedBucket | None":
        bucket_number = self.next_bucket_number(side)
        if bucket_number is None:
            return None
        self._next_index[side] += 1
        row = self._get_blob_row(side, bucket_number)
        return self._ingest_bucket(side, bucket_number, row)

    def _get_blob_row(self, side: int, bucket_number: int):
        """The metered point get of one bucket's blob row (the part of a
        fetch that runs inside a scatter task on multi-server topologies)."""
        signature = self.signatures[side]
        htable = self.platform.store.table(BFHM_TABLE)
        return htable.get(Get(blob_row_key(bucket_number), families={signature}))

    def _ingest_bucket(
        self, side: int, bucket_number: int, row
    ) -> _FetchedBucket:
        """Decode a fetched blob row (charging coordinator CPU) and fold
        it into the estimator state — always on the coordinator thread."""
        signature = self.signatures[side]
        if self.update_manager is not None:
            data = self.update_manager.decode_with_replay(
                signature, bucket_number, row
            )
        else:
            data = decode_plain_bucket_row(signature, bucket_number, row)
        # Golomb-decoding the blob costs coordinator CPU proportional to
        # the bucket's population (§5.1's compression/processing trade-off)
        model = self.platform.ctx.cost_model
        self.platform.metrics.advance_time(
            model.cpu_time(max(0, data.count)) * model.blob_decode_cpu_factor
        )
        self.buckets_fetched += 1
        fetched = _FetchedBucket(data)
        self.fetched[side].append(fetched)
        return fetched

    # -- bucket joins (Algorithm 7) ---------------------------------------------

    def _bucket_join(
        self, left: BFHMBucketData, right: BFHMBucketData
    ) -> "EstimatedResult | None":
        common = left.filter.intersect_positions(right.filter)
        if not common:
            return None
        cardinality = left.filter.join_cardinality(right.filter)
        return EstimatedResult(
            left_bucket=left.bucket,
            right_bucket=right.bucket,
            common_positions=common,
            cardinality=cardinality,
            min_score=self.function(left.min_score, right.min_score),
            max_score=self.function(left.max_score, right.max_score),
        )

    def _join_new_bucket(self, side: int, fetched: _FetchedBucket) -> list[EstimatedResult]:
        produced = []
        for other in self.fetched[1 - side]:
            if side == 0:
                estimate = self._bucket_join(fetched.data, other.data)
            else:
                estimate = self._bucket_join(other.data, fetched.data)
            if estimate is None:
                continue
            produced.append(estimate)
            self.results.append(estimate)
            self.total_cardinality += max(1.0, estimate.cardinality)
        return produced

    def advance(self, side: int) -> bool:
        """Fetch + join one bucket from ``side``; False if exhausted."""
        fetched = self._fetch_bucket(side)
        if fetched is None:
            return False
        self._join_new_bucket(side, fetched)
        return True

    def advance_round(self, sides: "list[int]") -> bool:
        """Fetch the next bucket of every side in ``sides`` as one
        scatter/gather round, then join them in side order.

        Both sides' bucket rows share the row key ``blob_row_key(n)``
        (one family per relation), so fetches at the same depth usually
        co-locate on one server and degrade gracefully to a serial round;
        the overlap shows up when the sides' bucket lists diverge.  Blob
        decoding (coordinator CPU) stays on the calling thread either
        way.  Returns False when no side had a bucket left.
        """
        from repro.cluster.executor import ScatterTask, scatter_gather

        ctx = self.platform.ctx
        topology = ctx.topology
        table = self.platform.store.backing(BFHM_TABLE)
        plan: "list[tuple[int, int]]" = []
        for side in sides:
            bucket_number = self.next_bucket_number(side)
            if bucket_number is None:
                continue
            self._next_index[side] += 1
            plan.append((side, bucket_number))
        if not plan:
            return False
        tasks = []
        for side, bucket_number in plan:
            region = table.region_for(blob_row_key(bucket_number))
            tasks.append(
                ScatterTask(
                    topology.server_for(region),
                    lambda s=side, b=bucket_number: self._get_blob_row(s, b),
                )
            )
        rows = scatter_gather(ctx, tasks, label="bfhm_bucket")
        for (side, bucket_number), row in zip(plan, rows):
            fetched = self._ingest_bucket(side, bucket_number, row)
            self._join_new_bucket(side, fetched)
        return True

    # -- termination (Algorithm 6) -------------------------------------------------

    def kth_bound(self, k: int, policy: "TerminationPolicy | None" = None) -> "float | None":
        """The k-th estimated result's gating score, or None if fewer than
        ``k`` estimated tuples exist."""
        policy = policy or self.policy
        if policy is TerminationPolicy.CONSERVATIVE:
            ordered = sorted(self.results, key=lambda r: -r.min_score)
            attribute = "min_score"
        else:
            ordered = sorted(self.results, key=lambda r: -r.max_score)
            attribute = "max_score"
        accumulated = 0
        for result in ordered:
            accumulated += max(1, round(result.cardinality))
            if accumulated >= k:
                return getattr(result, attribute)
        return None

    def unexamined_best(self, side: int) -> "float | None":
        """Best join score any combination involving ``side``'s next
        unfetched bucket could reach (bucket *boundaries*, as in the
        paper's worked example), or None if the side is exhausted."""
        next_bucket = self.next_bucket_number(side)
        if next_bucket is None:
            return None
        other_meta = self.metas[1 - side]
        if not other_meta.buckets:
            return None
        my_upper = self.metas[side].upper_boundary(next_bucket)
        other_upper = other_meta.upper_boundary(other_meta.buckets[0])
        if side == 0:
            return self.function(my_upper, other_upper)
        return self.function(other_upper, my_upper)

    def should_terminate(self, k: int) -> bool:
        """The Alg. 6 BFHMTerminationTest."""
        if self.total_cardinality < k:
            return False
        bound = self.kth_bound(k)
        if bound is None:
            return False
        for side in (0, 1):
            best = self.unexamined_best(side)
            if best is not None and best > bound + SCORE_EPSILON:
                return False
        return True

    def run_until(self, k: int) -> None:
        """Alternate bucket fetches until the termination test fires or
        both relations are exhausted."""
        side = 0
        while not self.should_terminate(k):
            if self.side_exhausted(0) and self.side_exhausted(1):
                break
            if self.side_exhausted(side):
                side = 1 - side
            self.advance(side)
            side = 1 - side

    def run_until_scatter(self, k: int) -> None:
        """:meth:`run_until` for multi-server topologies: each round
        fetches one bucket of *every* non-exhausted side concurrently
        instead of strictly alternating.  May fetch up to one bucket more
        than serial alternation before the termination test fires — the
        fan-out bandwidth-for-latency trade."""
        while not self.should_terminate(k):
            sides = [side for side in (0, 1) if not self.side_exhausted(side)]
            if not sides:
                break
            if not self.advance_round(sides):
                break

    def force_fetch(self, side: int) -> bool:
        """Recall-repair hook: unconditionally pull one more bucket."""
        return self.advance(side)

    def force_fetch_round(self, sides: "list[int]") -> bool:
        """Recall-repair hook, scatter form: pull one more bucket from
        every side in ``sides`` as one parallel round."""
        return self.advance_round(sides)


def decode_plain_bucket_row(signature: str, bucket: int, row) -> BFHMBucketData:
    """Decode a blob row that carries no pending update records."""
    blob_raw = row.value(signature, Q_BLOB)
    min_raw = row.value(signature, Q_MIN)
    max_raw = row.value(signature, Q_MAX)
    count_raw = row.value(signature, Q_COUNT)
    if blob_raw is None or min_raw is None or max_raw is None:
        raise IndexError_(f"BFHM bucket row B{bucket:05d} missing for {signature}")
    return BFHMBucketData(
        bucket=bucket,
        min_score=decode_float(min_raw),
        max_score=decode_float(max_raw),
        count=int(decode_str(count_raw)) if count_raw is not None else 0,
        filter=decode_cached(blob_raw),
    )
