"""BFHM bucket structures and wire codecs (§5.1, Figs. 4–5).

Storage layout, per indexed relation (one column family per relation
signature in the shared ``bfhm_idx`` table):

* **meta row** (key ``meta``) — ``num_buckets``, ``m_bits``, and the list
  of non-empty bucket numbers;
* **blob rows** (key ``B<bucket>``) — the Golomb-compressed hybrid filter
  ("blob"), the actual min and max scores of tuples recorded in the bucket,
  and the tuple count; update records (§6) ride in this row as extra
  qualifiers;
* **reverse-mapping rows** (key ``R<bucket>|<bitpos>``) — one qualifier per
  indexed tuple hashing to that bit position, valued ``(score, join value)``
  so phase 2 can materialize candidate tuples with single point reads.

Bucket numbering: bucket 0 is the highest score range, so ascending row
keys scan buckets in descending score order (the same trick as ISL keys).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.types import ScoredRow
from repro.errors import IndexError_
from repro.sketches.histogram import bucket_bounds
from repro.sketches.hybrid import HybridBlob, HybridBloomFilter

META_ROW = "meta"
Q_BLOB = "blob"
Q_MIN = "min"
Q_MAX = "max"
Q_COUNT = "count"
Q_NUM_BUCKETS = "num_buckets"
Q_M_BITS = "m_bits"
Q_BUCKETS = "buckets"

_BLOB_HEADER = struct.Struct(">IIIIIII")
_F64 = struct.Struct(">d")


def blob_row_key(bucket: int) -> str:
    """Row key of a bucket's blob row (``B``-prefixed, zero-padded)."""
    return f"B{bucket:05d}"


def reverse_row_key(bucket: int, bit_position: int) -> str:
    """Row key of one reverse-mapping row (bucket + filter bit position)."""
    return f"R{bucket:05d}|{bit_position:09d}"


def encode_blob(blob: HybridBlob) -> bytes:
    """Serialize a hybrid-filter blob to its stored byte form."""
    header = _BLOB_HEADER.pack(
        blob.bit_count,
        blob.entry_count,
        blob.item_count,
        blob.positions_bits,
        blob.positions_parameter,
        blob.counters_bits,
        blob.counters_parameter,
    )
    return (
        header
        + struct.pack(">I", len(blob.positions_payload))
        + blob.positions_payload
        + struct.pack(">I", len(blob.counters_payload))
        + blob.counters_payload
    )


def decode_blob(data: bytes) -> HybridBlob:
    """Inverse of :func:`encode_blob`."""
    if len(data) < _BLOB_HEADER.size + 8:
        raise IndexError_(f"truncated BFHM blob: {len(data)} bytes")
    fields = _BLOB_HEADER.unpack_from(data, 0)
    offset = _BLOB_HEADER.size
    (pos_len,) = struct.unpack_from(">I", data, offset)
    offset += 4
    positions_payload = data[offset : offset + pos_len]
    offset += pos_len
    (count_len,) = struct.unpack_from(">I", data, offset)
    offset += 4
    counters_payload = data[offset : offset + count_len]
    return HybridBlob(
        bit_count=fields[0],
        entry_count=fields[1],
        item_count=fields[2],
        positions_payload=positions_payload,
        positions_bits=fields[3],
        positions_parameter=fields[4],
        counters_payload=counters_payload,
        counters_bits=fields[5],
        counters_parameter=fields[6],
    )


def encode_reverse_value(join_value: str, score: float) -> bytes:
    """Value of one reverse-mapping entry: ``{rowkey: join value, score}``."""
    return _F64.pack(score) + join_value.encode("utf-8")


def decode_reverse_value(row_key: str, data: bytes) -> ScoredRow:
    """Inverse of :func:`encode_reverse_value` (qualifier is the row key)."""
    score = _F64.unpack_from(data, 0)[0]
    join_value = data[8:].decode("utf-8")
    return ScoredRow(row_key=row_key, join_value=join_value, score=score)


def encode_bucket_list(buckets: "list[int]") -> bytes:
    """Serialize the meta row's non-empty bucket list."""
    return ",".join(str(b) for b in buckets).encode("utf-8")


def decode_bucket_list(data: bytes) -> list[int]:
    """Inverse of :func:`encode_bucket_list`."""
    text = data.decode("utf-8")
    return [int(piece) for piece in text.split(",") if piece]


@dataclass
class BFHMBucketData:
    """One decoded bucket as the coordinator sees it."""

    bucket: int
    min_score: float
    max_score: float
    count: int
    filter: HybridBloomFilter

    @property
    def empty(self) -> bool:
        return self.count == 0

    def blob_bytes(self) -> bytes:
        return encode_blob(self.filter.to_blob())


@dataclass(frozen=True)
class BFHMMeta:
    """Decoded meta row of one relation's BFHM.

    ``family`` is the index column family holding this BFHM.  It encodes
    the bucket-count configuration (``<signature>__b<numBuckets>``) so that
    differently-configured BFHMs over the same relation — the parameter
    sweeps of §7.1 — coexist in the index table without clobbering each
    other.
    """

    num_buckets: int
    m_bits: int
    buckets: tuple[int, ...]  # non-empty bucket numbers, ascending
    family: str = ""

    def upper_boundary(self, bucket: int) -> float:
        """Upper score boundary of a bucket (used for termination bounds —
        the paper's example uses boundaries, not actual maxima, for
        not-yet-fetched buckets)."""
        return bucket_bounds(bucket, self.num_buckets)[1]
