"""Left-deep BFHM cascade: n-way rank joins from the binary two-phase
algorithm (§3's multi-way extension applied to §5).

The cascade runs the binary BFHM rank join pairwise along a left-deep
chain::

    ((R1 ⋈ R2) ⋈ R3) ⋈ ... ⋈ Rn

Each intermediate stage materializes its top-k′ join results as a
temporary relation (normalized partial score + shared join value), builds
a BFHM over it with the deployment-common filter size, and feeds it to the
next binary stage.  Because a pair outside an intermediate top-k′ can
still reach the final top-k through a high-scoring later partner, a §5.3
style repair loop re-runs truncated stages with doubled k′ until no pruned
partial result — completed with the maximum attainable scores of the
remaining relations — could beat the k-th final score.  Binary BFHM
guarantees 100% recall per stage, so the loop's fixpoint guarantees 100%
recall end to end.

Partial scores are stored normalized into the index's [0, 1] score domain;
each stage's binary aggregate de-normalizes on the fly (see
:func:`stage_functions`), so the final stage emits true n-way scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.functions import (
    AggregateFunction,
    MaxFunction,
    MinFunction,
    ProductFunction,
    SumFunction,
    WeightedSumFunction,
)
from repro.common.multiway import MultiJoinTuple
from repro.common.serialization import encode_float, encode_str
from repro.common.types import JoinTuple
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.estimation import SCORE_EPSILON, TerminationPolicy
from repro.core.bfhm.index import DEFAULT_FP_RATE, DEFAULT_NUM_BUCKETS
from repro.core.bfhm.updates import WriteBackPolicy
from repro.errors import QueryError
from repro.platform import Platform
from repro.query.results import MultiRankJoinResult
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.store.client import Put

#: column family / qualifiers of materialized intermediate relations
TEMP_FAMILY = "d"
TEMP_JOIN_COLUMN = "j"
TEMP_SCORE_COLUMN = "s"

#: separator between component row keys inside an intermediate row key
KEY_SEPARATOR = "|"


def _escape_key(key: str) -> str:
    """Escape a base row key for embedding in a composed intermediate key
    (a base key containing the separator must not collide with the
    composition of two other keys)."""
    return key.replace("\\", "\\\\").replace(KEY_SEPARATOR, "\\" + KEY_SEPARATOR)


def _compose_key(left_composed: str, right_key: str) -> str:
    """Row key of an intermediate tuple: the (already composed or escaped)
    left key joined with the escaped right component."""
    return f"{left_composed}{KEY_SEPARATOR}{_escape_key(right_key)}"

#: hard stop for the cascade repair loop (each round at least doubles a
#: truncated stage's k′, so real workloads converge in a handful)
MAX_CASCADE_ROUNDS = 24


def stage_functions(
    function: AggregateFunction, arity: int
) -> "list[tuple[AggregateFunction, float]]":
    """Per-stage binary aggregates of a left-deep cascade.

    Returns ``arity - 1`` pairs ``(binary_fn, upper)``: ``binary_fn``
    combines a *normalized* left partial score and the next relation's
    score into the true partial score over the first ``j + 2`` relations,
    and ``upper`` is that partial's maximum attainable value — the divisor
    normalizing it back into [0, 1] when the stage feeds another.
    """
    if arity < 2:
        raise QueryError(f"cascade needs >= 2 relations, got {arity}")
    stages: "list[tuple[AggregateFunction, float]]" = []
    if isinstance(function, WeightedSumFunction):
        weights = function.weights
        if len(weights) != arity:
            raise QueryError(
                f"weighted sum has {len(weights)} weights for arity {arity}"
            )
        upper = weights[0]
        for index, nxt in enumerate(weights[1:]):
            # stage 0 consumes the raw base score (weight w0); later stages
            # de-normalize the stored partial by the previous upper bound
            left = weights[0] if index == 0 else upper
            stages.append((WeightedSumFunction([left, nxt]), upper + nxt))
            upper += nxt
    elif isinstance(function, SumFunction):
        upper = 1.0
        for _ in range(arity - 1):
            stages.append((WeightedSumFunction([upper, 1.0]), upper + 1.0))
            upper += 1.0
    elif isinstance(function, ProductFunction):
        stages = [(ProductFunction(), 1.0)] * (arity - 1)
    elif isinstance(function, (MaxFunction, MinFunction)):
        stages = [(function, 1.0)] * (arity - 1)
    else:
        raise QueryError(
            f"cannot decompose {function!r} into binary cascade stages; "
            "the BFHM cascade needs sum/product/weighted-sum/max/min"
        )
    return stages


@dataclass
class CascadeStageRecord:
    """Introspection record of one executed cascade stage."""

    stage: int
    left_name: str
    right_name: str
    k: int
    produced: int
    truncated: bool
    #: lowest kept true partial score (the stage's pruning frontier)
    frontier: "float | None"
    details: dict[str, float] = field(default_factory=dict)


@dataclass
class _StageOutput:
    """One stage's materialized state, cached across repair rounds."""

    tuples: list[JoinTuple]
    #: intermediate row key -> (component keys, component scores)
    expansion: "dict[str, tuple[tuple[str, ...], tuple[float, ...]]]"
    #: binding of the materialized relation (None for the final stage)
    binding: "RelationBinding | None"
    truncated: bool
    frontier: "float | None"
    record: CascadeStageRecord


class BFHMCascadeRankJoin:
    """N-way BFHM rank join via a left-deep binary cascade."""

    name = "BFHM-cascade"

    #: process-wide counter making temp table names unique
    _temp_seq = 0

    def __init__(
        self,
        platform: Platform,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        fp_rate: float = DEFAULT_FP_RATE,
        policy: TerminationPolicy = TerminationPolicy.CONSERVATIVE,
        write_back: WriteBackPolicy = WriteBackPolicy.EAGER,
    ) -> None:
        self.platform = platform
        self._binary = BFHMRankJoin(
            platform, num_buckets, fp_rate, policy=policy, write_back=write_back
        )
        #: per-stage records of the most recent run, in execution order
        #: (repair rounds append re-executed stages)
        self.last_stage_records: list[CascadeStageRecord] = []

    # -- index lifecycle ----------------------------------------------------

    def prepare(self, query: RankJoinQuery) -> list:
        """Fix the deployment-common filter size over *all* base inputs,
        then build each base relation's BFHM."""
        self._binary.builder.plan_for(query.inputs)
        reports = []
        for index in range(len(query.inputs) - 1):
            reports.extend(self._binary.prepare(query.pairwise(index, index + 1)))
        return reports

    def build_report(self, binding: RelationBinding):
        return self._binary.build_report(binding)

    # -- execution -----------------------------------------------------------

    def execute(self, query: RankJoinQuery) -> MultiRankJoinResult:
        self.prepare(query)
        before = self.platform.metrics.snapshot()
        temp_tables: list[str] = []
        try:
            tuples, details = self._run_cascade(query, temp_tables)
        finally:
            # temp tables and their index state must go even when a stage
            # raises — leaked intermediates would be visible to every later
            # query on the shared platform
            self._cleanup(temp_tables)
        after = self.platform.metrics.snapshot()
        return MultiRankJoinResult(
            algorithm=self.name,
            k=query.k,
            tuples=tuples[: query.k],
            metrics=after - before,
            details=details,
        )

    def _run_cascade(
        self, query: RankJoinQuery, temp_tables: "list[str]"
    ) -> "tuple[list[MultiJoinTuple], dict[str, float]]":
        arity = query.arity
        stages = stage_functions(query.function, arity)
        # every stage starts at the query's k; the repair loop grows
        # truncated intermediate stages (never the final one)
        stage_ks = [query.k] * (arity - 1)
        outputs: "list[_StageOutput | None]" = [None] * (arity - 1)
        self.last_stage_records = []
        rounds = 0

        while True:
            start = next(
                (i for i, output in enumerate(outputs) if output is None), None
            )
            if start is not None:
                self._run_stages(
                    query, stages, stage_ks, outputs, start, temp_tables
                )
            final = outputs[-1]
            assert final is not None
            violated = self._recall_violations(query, stages, outputs)
            if not violated or rounds >= MAX_CASCADE_ROUNDS:
                break
            rounds += 1
            for stage in violated:
                stage_ks[stage] += max(query.k, stage_ks[stage])
            for stage in range(min(violated), arity - 1):
                outputs[stage] = None  # downstream stages must re-run

        tuples = self._expand_final(query, outputs)
        details: dict[str, float] = {"cascade_rounds": float(rounds)}
        for record in self.last_stage_records:
            prefix = f"stage{record.stage}"
            details[f"{prefix}_produced"] = float(record.produced)
            for key in ("buckets_fetched", "reverse_rows_fetched",
                        "repair_rounds"):
                if key in record.details:
                    details[f"{prefix}_{key}"] = record.details[key]
        return tuples, details

    def _run_stages(
        self,
        query: RankJoinQuery,
        stages: "list[tuple[AggregateFunction, float]]",
        stage_ks: "list[int]",
        outputs: "list[_StageOutput | None]",
        start: int,
        temp_tables: "list[str]",
    ) -> None:
        """Execute stages ``start .. arity-2``, materializing intermediates."""
        for stage in range(start, len(stages)):
            if stage == 0:
                left_binding = query.inputs[0]
                expansion_in = None
            else:
                previous = outputs[stage - 1]
                assert previous is not None and previous.binding is not None
                left_binding = previous.binding
                expansion_in = previous.expansion
            right_binding = query.inputs[stage + 1]
            function, upper = stages[stage]
            stage_k = stage_ks[stage]
            stage_query = RankJoinQuery(
                inputs=(left_binding, right_binding), function=function,
                k=stage_k,
            )
            result = self._binary.execute(stage_query)
            produced = result.tuples
            truncated = len(produced) >= stage_k
            frontier = produced[-1].score if produced else None

            expansion: "dict[str, tuple[tuple[str, ...], tuple[float, ...]]]" = {}
            rows: "list[tuple[str, str, float]]" = []
            for t in produced:
                if expansion_in is None:
                    composed = _compose_key(_escape_key(t.left_key), t.right_key)
                    keys = (t.left_key, t.right_key)
                    scores = (t.left_score, t.right_score)
                else:
                    base_keys, base_scores = expansion_in[t.left_key]
                    composed = _compose_key(t.left_key, t.right_key)
                    keys = (*base_keys, t.right_key)
                    scores = (*base_scores, t.right_score)
                expansion[composed] = (keys, scores)
                rows.append((composed, t.join_value, t.score))

            is_final = stage == len(stages) - 1
            binding = None
            if not is_final and produced:
                binding = self._materialize(rows, upper, temp_tables)
            record = CascadeStageRecord(
                stage=stage,
                left_name=left_binding.display_name,
                right_name=right_binding.display_name,
                k=stage_k,
                produced=len(produced),
                truncated=truncated,
                frontier=frontier,
                details=dict(result.details),
            )
            self.last_stage_records.append(record)
            outputs[stage] = _StageOutput(
                tuples=produced,
                expansion=expansion,
                binding=binding,
                truncated=truncated,
                frontier=frontier,
                record=record,
            )
            if not is_final and not produced:
                # an empty intermediate empties every later stage too
                for later in range(stage + 1, len(stages)):
                    outputs[later] = _StageOutput(
                        tuples=[], expansion={}, binding=None,
                        truncated=False, frontier=None,
                        record=CascadeStageRecord(
                            stage=later, left_name="(empty)",
                            right_name=query.inputs[later + 1].display_name,
                            k=stage_ks[later], produced=0, truncated=False,
                            frontier=None,
                        ),
                    )
                return

    def _materialize(
        self,
        rows: "list[tuple[str, str, float]]",
        upper: float,
        temp_tables: "list[str]",
    ) -> RelationBinding:
        """Write one stage's ``(row key, join value, true partial score)``
        rows as a temporary relation (metered puts), scores normalized into
        the index's [0, 1] domain, and bind it for the next binary stage."""
        BFHMCascadeRankJoin._temp_seq += 1
        table_name = f"bfhm_cascade_tmp_{BFHMCascadeRankJoin._temp_seq}"
        norm = upper if upper > 0 else 1.0
        rows = [
            (row_key, join_value, min(1.0, score / norm))
            for row_key, join_value, score in rows
        ]

        workers = len(self.platform.ctx.cluster.workers)
        ordered_keys = sorted(key for key, _, _ in rows)
        step = max(1, len(ordered_keys) // max(1, workers))
        splits = (
            [ordered_keys[i] for i in range(step, len(ordered_keys), step)]
            if len(ordered_keys) >= 2 * workers
            else []
        )
        self.platform.store.create_table(
            table_name, {TEMP_FAMILY}, split_keys=splits or None
        )
        temp_tables.append(table_name)
        htable = self.platform.store.table(table_name)
        puts = []
        for row_key, join_value, score in rows:
            put = Put(row_key)
            put.add(TEMP_FAMILY, TEMP_JOIN_COLUMN, encode_str(join_value))
            put.add(TEMP_FAMILY, TEMP_SCORE_COLUMN, encode_float(score))
            puts.append(put)
        htable.put_batch(puts)
        htable.flush()
        return RelationBinding(
            table=table_name,
            join_column=TEMP_JOIN_COLUMN,
            score_column=TEMP_SCORE_COLUMN,
            family=TEMP_FAMILY,
            alias=f"tmp{len(temp_tables)}",
        )

    # -- recall repair -------------------------------------------------------

    def _input_top_bound(self, binding: RelationBinding) -> float:
        """Upper bound on a base relation's best score, read off its BFHM
        meta row (the first non-empty bucket's upper boundary)."""
        meta = self._binary.update_manager.meta(binding.signature)
        if not meta.buckets:
            return 0.0
        return meta.upper_boundary(meta.buckets[0])

    def _recall_violations(
        self,
        query: RankJoinQuery,
        stages: "list[tuple[AggregateFunction, float]]",
        outputs: "list[_StageOutput | None]",
    ) -> "list[int]":
        """Truncated intermediate stages whose pruned tuples could still
        reach the final top-k (the cascade analogue of §5.3's test)."""
        final = outputs[-1]
        assert final is not None
        kth = (
            final.tuples[query.k - 1].score
            if len(final.tuples) >= query.k
            else None
        )
        violated = []
        for stage in range(len(stages) - 1):
            output = outputs[stage]
            assert output is not None
            if not output.truncated or output.frontier is None:
                continue
            # complete the pruning frontier with the best attainable score
            # of every remaining relation
            partial = output.frontier
            for later in range(stage + 1, len(stages)):
                function, _ = stages[later]
                _, upper_prev = stages[later - 1]
                normalized = partial / (upper_prev if upper_prev > 0 else 1.0)
                partial = function(
                    min(1.0, normalized),
                    self._input_top_bound(query.inputs[later + 1]),
                )
            if kth is None or partial >= kth - SCORE_EPSILON:
                violated.append(stage)
        return violated

    # -- finalization --------------------------------------------------------

    def _expand_final(
        self, query: RankJoinQuery, outputs: "list[_StageOutput | None]"
    ) -> list[MultiJoinTuple]:
        final = outputs[-1]
        assert final is not None
        single_stage = len(outputs) == 1
        tuples = []
        for t in final.tuples:
            # the final stage's left key is either a raw base key (arity 2)
            # or an already-composed intermediate row key
            left = _escape_key(t.left_key) if single_stage else t.left_key
            keys, scores = final.expansion[_compose_key(left, t.right_key)]
            tuples.append(
                MultiJoinTuple(
                    keys=keys,
                    join_value=t.join_value,
                    score=t.score,
                    scores=scores,
                )
            )
        return sorted(tuples, key=MultiJoinTuple.sort_key)[: query.k]

    def _cleanup(self, temp_tables: "list[str]") -> None:
        """Drop materialized intermediates and forget their index state.

        Besides the temp tables themselves, every per-stage index build
        registered build reports and BFHM metas under the temp signature;
        left behind, they would grow without bound across queries (temp
        names are globally unique by construction)."""
        for table_name in temp_tables:
            if self.platform.store.has_table(table_name):
                self.platform.store.drop_table(table_name)
        # the temp relations' BFHM data (blob/reverse/meta rows) lives as
        # per-signature column families in the shared index table — drop
        # them too, or the store grows with every cascade query
        from repro.core.indexes import BFHM_TABLE

        if self.platform.store.has_table(BFHM_TABLE):
            backing = self.platform.store.backing(BFHM_TABLE)
            for family in [
                f for f in backing.families
                if f.startswith("bfhm_cascade_tmp_")
            ]:
                backing.drop_family(family)
        self._binary.forget("bfhm_cascade_tmp_")
