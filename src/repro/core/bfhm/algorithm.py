"""The complete BFHM rank-join driver (§5.2, §5.3).

Phase 1 (estimation) is delegated to
:class:`~repro.core.bfhm.estimation.BFHMEstimator`.  Phase 2 purges
estimated results that cannot reach the k-th estimated score, fetches the
reverse-mapping rows of the surviving bucket pairs' common bit positions,
joins the actual tuples (equality on the true join values — this is where
Bloom false positives die), and assembles the exact result set.

The §5.3 recall-repair loop then guarantees 100% recall:

* if ``k`` or more actual results exist but some unfetched bucket could
  still beat the k-th actual score, those buckets are fetched and phase 2
  repeats;
* if only ``k' < k`` results were produced, estimation resumes looking for
  the top-``k + (k - k')`` and phase 2 repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import JoinTuple, ScoredRow
from repro.core.base import IndexBuildReport, RankJoinAlgorithm, _ExecutionDetails
from repro.core.bfhm.bucket import decode_reverse_value, reverse_row_key
from repro.core.bfhm.estimation import (
    SCORE_EPSILON,
    BFHMEstimator,
    EstimatedResult,
    TerminationPolicy,
)
from repro.core.bfhm.index import (
    DEFAULT_FP_RATE,
    DEFAULT_NUM_BUCKETS,
    BFHMIndexBuilder,
)
from repro.core.bfhm.updates import BFHMUpdateManager, WriteBackPolicy
from repro.core.indexes import BFHM_TABLE
from repro.platform import Platform
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.store.client import Get


class _ReverseMappingCache:
    """Coordinator-side cache of fetched reverse-mapping rows.

    Fetches are batched through multi-gets and never repeated across
    recall-repair iterations.
    """

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._cache: dict[tuple[str, int, int], list[ScoredRow]] = {}
        self.rows_fetched = 0

    def fetch(
        self, signature: str, wanted: "list[tuple[int, int]]"
    ) -> dict[tuple[int, int], list[ScoredRow]]:
        """Tuples recorded under each ``(bucket, bit position)``."""
        missing = [
            (bucket, position)
            for bucket, position in wanted
            if (signature, bucket, position) not in self._cache
        ]
        if missing:
            htable = self.platform.store.table(BFHM_TABLE)
            gets = [
                Get(reverse_row_key(bucket, position), families={signature})
                for bucket, position in missing
            ]
            rows = htable.multi_get(gets)
            # count real traffic only: a missing reverse row (pruned by
            # updates, or a bit position the other relation set) comes back
            # as an empty RowResult and carries no tuples
            self.rows_fetched += sum(1 for row in rows if not row.empty)
            for (bucket, position), row in zip(missing, rows):
                tuples = [
                    decode_reverse_value(cell.qualifier, cell.value)
                    for cell in row.family_cells(signature)
                ]
                self._cache[(signature, bucket, position)] = tuples
        return {
            (bucket, position): self._cache[(signature, bucket, position)]
            for bucket, position in wanted
        }


@dataclass
class RepairRoundRecord:
    """Introspection record of one repair-cascade round.

    Round 0 is the initial phase 1 + phase 2 pass; every further record is
    one iteration of the §5.3 recall-repair loop.  The planner's symbolic
    replay (:func:`repro.query.planner._simulate_bfhm`) produces the same
    shape, so estimated and executed cascades are directly comparable.
    """

    round: int
    #: blob rows fetched during this round (phase-1 + forced fetches)
    buckets_fetched: int
    #: new (non-empty) reverse-mapping rows fetched during this round
    reverse_rows: int
    #: exact results materialized at the end of the round
    actual_results: int
    #: estimated pairs re-admitted past the purge bound during this round
    readmitted_pairs: int
    #: the §5.2 purge bound phase 2 started from (None = nothing purged)
    purge_bound: "float | None" = None


@dataclass
class _Phase2Outcome:
    """What one full phase-2 pass (purge + re-admission loop) did."""

    actual: list[JoinTuple] = field(default_factory=list)
    purge_bound: "float | None" = None
    readmitted_pairs: int = 0


class BFHMRankJoin(RankJoinAlgorithm):
    """BFHM index + two-phase statistical rank join with 100% recall."""

    name = "BFHM"

    def __init__(
        self,
        platform: Platform,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        fp_rate: float = DEFAULT_FP_RATE,
        policy: TerminationPolicy = TerminationPolicy.CONSERVATIVE,
        write_back: WriteBackPolicy = WriteBackPolicy.EAGER,
        writeback_threshold: int = 1,
    ) -> None:
        super().__init__(platform)
        self.builder = BFHMIndexBuilder(platform, num_buckets, fp_rate)
        self.policy = policy
        self.update_manager = BFHMUpdateManager(
            platform, write_back, writeback_threshold
        )
        #: per-round introspection of the most recent run (see
        #: :class:`RepairRoundRecord`); round 0 is the initial pass
        self.last_repair_trace: list[RepairRoundRecord] = []

    # -- index lifecycle --------------------------------------------------------

    def prepare(self, query: RankJoinQuery) -> list[IndexBuildReport]:
        """Fix the common filter size over both relations before building
        either index (bucket joins AND the two filters bit-for-bit).

        If the store already holds a BFHM for either input (built by
        another instance), its meta fixes the filter size — the size the
        stored filters were actually built with wins over a recomputation
        from possibly-updated base data.
        """
        if self.builder.m_bits is None:
            for binding in query.inputs:
                meta = self.builder.read_meta_unmetered(binding.signature)
                if meta is not None:
                    self.builder.m_bits = meta.m_bits
                    break
        self.builder.plan_for((query.left, query.right))
        return super().prepare(query)

    def _build_index(self, binding: RelationBinding) -> IndexBuildReport:
        signature = binding.signature

        def build() -> int:
            index_bytes = self.builder.build(binding)
            meta = self.builder.read_meta(self.platform, signature)
            self.update_manager.register_meta(signature, meta)
            return index_bytes

        return self._metered_build(self.name, signature, build)

    def _index_exists(self, binding: RelationBinding) -> bool:
        """A store-present BFHM under *this* builder's bucket configuration
        (the family name encodes ``num_buckets``, so differently configured
        instances never adopt each other's indexes)."""
        return (
            self.builder.read_meta_unmetered(binding.signature) is not None
        )

    def _adopt_index(self, binding: RelationBinding) -> None:
        """Rehydrate meta registration (and the shared filter size) from
        the store so queries run exactly as if this instance had built."""
        signature = binding.signature
        meta = self.builder.read_meta_unmetered(signature)
        if meta is None:  # pragma: no cover - raced drop between probes
            return
        if self.builder.m_bits is None:
            self.builder.m_bits = meta.m_bits
        self.update_manager.register_meta(signature, meta)

    def forget(self, signature_prefix: str) -> None:
        """Drop all index state registered under signatures starting with
        ``signature_prefix`` (build reports, metas, pending write-backs).

        Used by the cascade to evict its per-query temporary relations;
        keeping the eviction here, next to the registries it clears, means
        a registry restructuring cannot silently orphan it."""
        for key in [
            k for k in self._build_reports if k.startswith(signature_prefix)
        ]:
            del self._build_reports[key]
        for key in [
            k for k in self._external_indexes if k.startswith(signature_prefix)
        ]:
            self._external_indexes.discard(key)
        self.update_manager.forget(signature_prefix)

    # -- query processing -----------------------------------------------------------

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        metas = tuple(
            self.update_manager.meta(signature)
            for signature in (query.left.signature, query.right.signature)
        )
        families = (metas[0].family, metas[1].family)
        estimator = BFHMEstimator(
            self.platform,
            families,
            metas,  # type: ignore[arg-type]
            query.function,
            policy=self.policy,
            update_manager=self.update_manager,
        )
        cache = _ReverseMappingCache(self.platform)
        k = query.k
        trace: list[RepairRoundRecord] = []
        recorded = {"buckets": 0, "rows": 0}

        def record_round(number: int, outcome: _Phase2Outcome) -> None:
            # per-round deltas; cumulative counters live in estimator/cache
            trace.append(
                RepairRoundRecord(
                    round=number,
                    buckets_fetched=estimator.buckets_fetched - recorded["buckets"],
                    reverse_rows=cache.rows_fetched - recorded["rows"],
                    actual_results=len(outcome.actual),
                    readmitted_pairs=outcome.readmitted_pairs,
                    purge_bound=outcome.purge_bound,
                )
            )
            recorded["buckets"] = estimator.buckets_fetched
            recorded["rows"] = cache.rows_fetched

        # on multi-server topologies phase-1/repair bucket fetches pull
        # both sides per round as scatter/gather instead of alternating
        parallel = self.platform.ctx.topology.parallel

        def run_until(target_k: int) -> None:
            if parallel:
                estimator.run_until_scatter(target_k)
            else:
                estimator.run_until(target_k)

        # ---- phase 1: estimation ----
        run_until(k)

        # ---- phase 2 + §5.3 recall repair ----
        outcome = self._phase2(estimator, cache, query)
        record_round(0, outcome)
        actual = outcome.actual
        repair_rounds = 0
        while True:
            if len(actual) >= k:
                kth_score = actual[k - 1].score
                violating = [
                    side
                    for side in (0, 1)
                    if (best := estimator.unexamined_best(side)) is not None
                    and best > kth_score + SCORE_EPSILON
                ]
                if not violating:
                    break
                if parallel and len(violating) > 1:
                    progressed = estimator.force_fetch_round(violating)
                else:
                    progressed = False
                    for side in violating:
                        progressed = estimator.force_fetch(side) or progressed
                if not progressed:
                    break
            else:
                if estimator.side_exhausted(0) and estimator.side_exhausted(1):
                    break
                fetched_before = estimator.buckets_fetched
                run_until(k + (k - len(actual)))
                if estimator.buckets_fetched == fetched_before:
                    # estimation thinks it is done; force progress anyway —
                    # on BOTH sides (`or` would short-circuit and starve
                    # side 1 while side 0 still has buckets, burning extra
                    # repair rounds on one-sided exhaustion)
                    if parallel:
                        progressed = estimator.force_fetch_round([0, 1])
                    else:
                        progressed = estimator.force_fetch(0)
                        progressed = estimator.force_fetch(1) or progressed
                    if not progressed:
                        break
            repair_rounds += 1
            outcome = self._phase2(estimator, cache, query)
            record_round(repair_rounds, outcome)
            actual = outcome.actual

        if self.update_manager.policy is WriteBackPolicy.LAZY:
            # lazy write-back happens after the result set is final
            self.update_manager.flush_pending()

        self.last_repair_trace = trace
        details.set("buckets_fetched", estimator.buckets_fetched)
        details.set("estimated_results", len(estimator.results))
        details.set("reverse_rows_fetched", cache.rows_fetched)
        details.set("repair_rounds", repair_rounds)
        details.set(
            "readmitted_pairs", sum(entry.readmitted_pairs for entry in trace)
        )
        if trace[0].purge_bound is not None:
            details.set("purge_bound", trace[0].purge_bound)
        return actual[:k]

    # -- phase 2 -----------------------------------------------------------------------

    def _phase2(
        self,
        estimator: BFHMEstimator,
        cache: _ReverseMappingCache,
        query: RankJoinQuery,
    ) -> _Phase2Outcome:
        """Purge, reverse-map, and compute the exact candidate results.

        The initial purge follows §5.2 ("purges all estimated results whose
        maximum score is below that of the (estimated) k'th tuple", taken at
        its lowest possible value per §5.3).  Because cardinality estimates
        can overcount, the purge bound may overshoot the true k-th score, so
        excluded pairs are re-admitted — and their reverse mappings fetched
        — whenever their maximum score could still beat the k-th *actual*
        result.  The loop is monotone over a finite pair set, so it
        converges; on convergence no excluded pair can contribute.
        """
        k = query.k
        bound = estimator.kth_bound(k, TerminationPolicy.CONSERVATIVE)
        if bound is None:
            included = set(range(len(estimator.results)))
        else:
            included = {
                index
                for index, result in enumerate(estimator.results)
                if result.max_score >= bound - SCORE_EPSILON
            }
        outcome = _Phase2Outcome(purge_bound=bound)

        actual = self._materialize(estimator, cache, query, included)
        while True:
            excluded = set(range(len(estimator.results))) - included
            if not excluded:
                break
            if len(actual) >= k:
                kth_score = actual[k - 1].score
                extra = {
                    index
                    for index in excluded
                    if estimator.results[index].max_score >= kth_score - SCORE_EPSILON
                }
            else:
                extra = excluded  # not enough results: nothing may be purged
            if not extra:
                break
            included |= extra
            outcome.readmitted_pairs += len(extra)
            actual = self._materialize(estimator, cache, query, included)
        outcome.actual = actual
        return outcome

    def _materialize(
        self,
        estimator: BFHMEstimator,
        cache: _ReverseMappingCache,
        query: RankJoinQuery,
        included: "set[int]",
    ) -> list[JoinTuple]:
        """Fetch reverse mappings for the included pairs and join exactly."""
        kept = [estimator.results[index] for index in sorted(included)]
        left_wanted: list[tuple[int, int]] = []
        right_wanted: list[tuple[int, int]] = []
        for result in kept:
            for position in result.common_positions:
                left_wanted.append((result.left_bucket, position))
                right_wanted.append((result.right_bucket, position))
        left_rows = cache.fetch(estimator.signatures[0], _dedupe(left_wanted))
        right_rows = cache.fetch(estimator.signatures[1], _dedupe(right_wanted))

        tuples: dict[tuple[str, str], JoinTuple] = {}
        for result in kept:
            self._join_pair(result, left_rows, right_rows, query, tuples)
        return sorted(tuples.values(), key=JoinTuple.sort_key)

    def _join_pair(
        self,
        result: EstimatedResult,
        left_rows: dict[tuple[int, int], list[ScoredRow]],
        right_rows: dict[tuple[int, int], list[ScoredRow]],
        query: RankJoinQuery,
        out: dict[tuple[str, str], JoinTuple],
    ) -> None:
        for position in result.common_positions:
            lefts = left_rows.get((result.left_bucket, position), ())
            rights = right_rows.get((result.right_bucket, position), ())
            for left in lefts:
                for right in rights:
                    if left.join_value != right.join_value:
                        continue  # Bloom false positive eliminated here
                    key = (left.row_key, right.row_key)
                    if key in out:
                        continue
                    out[key] = JoinTuple(
                        left_key=left.row_key,
                        right_key=right.row_key,
                        join_value=left.join_value,
                        score=query.function(left.score, right.score),
                        left_score=left.score,
                        right_score=right.score,
                    )


def _dedupe(pairs: "list[tuple[int, int]]") -> list[tuple[int, int]]:
    return sorted(set(pairs))
