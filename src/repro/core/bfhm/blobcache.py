"""Process-wide cache of Golomb-decoded BFHM blobs.

Golomb-decoding a bucket blob costs coordinator CPU proportional to the
bucket's population (§5.1's compression/processing trade-off).  The same
blob bytes are decoded again and again — across §5.3 repair rounds, across
queries in a session, across cascade stages, and in the §6 update replay —
so the decoded ``{bit position: counter}`` table is memoized here, keyed by
the raw blob bytes.

Keying by the bytes makes invalidation automatic: any update that changes a
bucket (record replay write-back, rebuild) produces different blob bytes
and therefore a different key.  The cache is pure CPU memoization — the
store fetch of the blob row still happens and the simulated cost model
still charges the decode CPU, so all simulated metrics are unchanged.

Entries hand out *copies* of the counter table (callers mutate their
filters during update replay); copying a dict is an order of magnitude
cheaper than re-running the Golomb decode.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.sketches.hybrid import HybridBloomFilter

#: default number of decoded blobs kept (LRU); a blob decodes to one dict
#: entry per distinct join value in the bucket
DEFAULT_CAPACITY = 1024


class DecodedBlobCache:
    """LRU of ``blob bytes -> (bit_count, item_count, counters)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        # the shared instance is hammered from every serving worker; LRU
        # reordering (move_to_end/popitem) is a structural mutation of the
        # OrderedDict and tears without mutual exclusion
        self._entries: "OrderedDict[bytes, tuple[int, int, dict[int, int]]]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def decode(self, raw: bytes) -> HybridBloomFilter:
        """A fresh :class:`HybridBloomFilter` equal to the decoded form of
        the stored payload ``raw``, Golomb-decoding at most once per
        distinct payload."""
        with self._lock:
            entry = self._entries.get(raw)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(raw)
        if entry is None:
            from repro.core.bfhm.bucket import decode_blob

            # Golomb decode outside the lock: it is the expensive part and
            # is pure, so two threads racing the same payload just insert
            # the same entry twice
            decoded = HybridBloomFilter.from_blob(decode_blob(raw))
            with self._lock:
                self.misses += 1
                self._entries[raw] = (
                    decoded.bit_count,
                    decoded.item_count,
                    dict(decoded.counters),
                )
                self._entries.move_to_end(raw)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            return decoded
        bit_count, item_count, counters = entry
        instance = HybridBloomFilter(bit_count)
        instance.counters = dict(counters)
        instance.item_count = item_count
        return instance

    def clear(self) -> None:
        """Drop every entry (tests and memory-pressure hooks)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: the shared process-wide instance used by the BFHM read paths
blob_cache = DecodedBlobCache()


def decode_cached(raw: bytes) -> HybridBloomFilter:
    """Decode one stored blob payload through the shared cache."""
    return blob_cache.decode(raw)
