"""Inverse Score List rank join — ISL (§4.2).

The ISL index inverts each relation on its *score*: index rows are keyed by
the negated score (HBase scans only ascend — the §4.2.2 "kink"), and hold
``{row key, join value}`` entries (Fig. 3).  Built by a map-only MapReduce
job (Alg. 3), one column family per relation in a shared index table.

Query processing (Alg. 4) is coordinator-based: a single client scans the
two index families alternately, in batches of a configurable size (HBase
scanner caching), feeding tuples into the HRJN operator until its threshold
test fires.  Batching trades bandwidth/dollars for latency: bigger batches
amortize RPC latency but may overshoot the termination point.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.serialization import (
    decode_float,
    decode_score_key,
    decode_str,
    encode_score_key,
)
from repro.common.types import JoinTuple, ScoredRow
from repro.core.base import IndexBuildReport, RankJoinAlgorithm, _ExecutionDetails
from repro.core.hrjn import LEFT, RIGHT, HRJNOperator
from repro.core.indexes import (
    ISL_TABLE,
    ensure_index_table,
    family_built,
    sample_split_keys,
)
from repro.common.registry import fn_ref, proc_fn
from repro.mapreduce.job import Job, TableInput, TableOutput, TaskContext
from repro.platform import Platform
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding, load_relation
from repro.store.cell import RowResult
from repro.store.client import Put, Scan

#: default scanner batch as a fraction of the relation's row count (the
#: paper used 1%/0.1% on EC2 and 1%/0.2% on LC)
DEFAULT_BATCH_FRACTION = 0.01
MIN_BATCH_ROWS = 8


@proc_fn("isl.build_map")
def _build_map(payload: dict, row_key: str, row: RowResult, task: TaskContext) -> None:
    """Invert one base-relation row on its score (Algorithm 3 mapper)."""
    join_raw = row.value(payload["family"], payload["join_column"])
    score_raw = row.value(payload["family"], payload["score_column"])
    if join_raw is None or score_raw is None:
        task.bump("skipped_rows")
        return
    put = Put(encode_score_key(decode_float(score_raw)))
    put.add(payload["signature"], row_key, join_raw)
    task.emit(put.row, put)
    task.bump("indexed_rows")


class _SideCursor:
    """Batched pull of ScoredRows from one ISL index family."""

    def __init__(self, platform: Platform, signature: str, batch_rows: int) -> None:
        htable = platform.store.table(ISL_TABLE)
        self.batch_rows = batch_rows
        self._table = htable.table
        self._rows: Iterator[RowResult] = htable.scan(
            Scan(families={signature}, caching=batch_rows)
        )
        self._signature = signature
        self._pending: list[ScoredRow] = []
        self.exhausted = False
        #: last index row pulled — the scan's position, used to route the
        #: next batch fetch to the region server currently serving it
        self._last_row_key: "str | None" = None

    def next_batch(self) -> list[ScoredRow]:
        """Tuples of the next ``batch_rows`` index rows (possibly more
        tuples than rows — equal scores share an index row)."""
        batch: list[ScoredRow] = []
        rows_taken = 0
        while rows_taken < self.batch_rows:
            try:
                row = next(self._rows)
            except StopIteration:
                self.exhausted = True
                break
            rows_taken += 1
            self._last_row_key = row.row
            for cell in row.family_cells(self._signature):
                batch.append(
                    ScoredRow(
                        row_key=cell.qualifier,
                        join_value=decode_str(cell.value),
                        score=_score_of_key(row.row),
                    )
                )
        return batch

    def server_hint(self, topology) -> int:
        """Region server the cursor's next batch is expected to hit (the
        region holding its current scan position — a batch that crosses a
        region boundary is still charged wherever its rows actually live;
        the hint only drives scatter grouping)."""
        if self._last_row_key is None:
            regions = self._table.regions_in_range(None, None)
            region = regions[0]
        else:
            region = self._table.region_for(self._last_row_key)
        return topology.server_for(region)


def _score_of_key(key: str) -> float:
    return decode_score_key(key)


class ISLRankJoin(RankJoinAlgorithm):
    """The ISL index + coordinator-based HRJN rank join."""

    name = "ISL"

    def __init__(
        self,
        platform: Platform,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
        batch_rows: "int | None" = None,
    ) -> None:
        super().__init__(platform)
        self.batch_fraction = batch_fraction
        self.batch_rows = batch_rows
        self._relation_rows: dict[str, int] = {}

    # -- index build (Algorithm 3) -------------------------------------------

    def _index_exists(self, binding: RelationBinding) -> bool:
        return family_built(self.platform, ISL_TABLE, binding.signature)

    def _adopt_index(self, binding: RelationBinding) -> None:
        """Rehydrate the relation row count a store-present index implies —
        batch sizing (§4.2.3) is a fraction of it, so adopting without it
        would silently fall back to the minimum batch and change the
        query's metered scan pattern."""
        self._relation_rows[binding.signature] = len(
            load_relation(self.platform.store, binding)
        )

    def _build_index(self, binding: RelationBinding) -> IndexBuildReport:
        platform = self.platform
        signature = binding.signature

        rows = load_relation(platform.store, binding)
        self._relation_rows[signature] = len(rows)
        sample = [encode_score_key(row.score) for row in rows]
        splits = sample_split_keys(sample, len(platform.ctx.cluster.workers))
        ensure_index_table(platform, ISL_TABLE, signature, splits)

        job = Job(
            name=f"isl-index-{signature}",
            input_source=TableInput.of(binding.table, {binding.family}),
            map_fn=fn_ref(
                "isl.build_map",
                {
                    "family": binding.family,
                    "join_column": binding.join_column,
                    "score_column": binding.score_column,
                    "signature": signature,
                },
            ),
            output=TableOutput(ISL_TABLE),
        )

        def build() -> int:
            platform.runner.run(job)
            table = platform.store.backing(ISL_TABLE)
            return sum(
                cell.serialized_size()
                for row in table.all_rows(families={signature})  # lint: disable=RL301 (index-size accounting for the build report; the build job itself is metered)
                for cell in row
            )

        return self._metered_build(self.name, signature, build)

    # -- query processing (Algorithm 4) -----------------------------------------

    def _batch_rows_for(self, signature: str) -> int:
        if self.batch_rows is not None:
            return self.batch_rows
        relation_rows = self._relation_rows.get(signature, 0)
        return max(MIN_BATCH_ROWS, int(relation_rows * self.batch_fraction))

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        if self.platform.ctx.topology.parallel:
            return self._run_scatter(query, details)
        operator = HRJNOperator(query.function, query.k)
        cursors = {
            LEFT: _SideCursor(
                self.platform, query.left.signature,
                self._batch_rows_for(query.left.signature),
            ),
            RIGHT: _SideCursor(
                self.platform, query.right.signature,
                self._batch_rows_for(query.right.signature),
            ),
        }

        side = LEFT
        batches = 0
        while True:
            exhausted = (cursors[LEFT].exhausted, cursors[RIGHT].exhausted)
            if operator.terminated(exhausted):
                break
            if all(exhausted):
                break
            if cursors[side].exhausted:
                side = 1 - side
            batch = cursors[side].next_batch()
            batches += 1
            done = False
            for index, row in enumerate(batch):
                operator.add(side, row)
                # the cursor may already report exhaustion while rows of
                # this batch are still unprocessed; a side only counts as
                # exhausted once its final batch is fully consumed
                drained = index == len(batch) - 1
                exhausted = (
                    cursors[LEFT].exhausted and (side != LEFT or drained),
                    cursors[RIGHT].exhausted and (side != RIGHT or drained),
                )
                if operator.terminated(exhausted):
                    done = True
                    break
            if done:
                break
            side = 1 - side

        seen = operator.tuples_seen()
        details.set("batches", batches)
        details.set("tuples_seen_left", seen[LEFT])
        details.set("tuples_seen_right", seen[RIGHT])
        return operator.results

    def _run_scatter(
        self, query: RankJoinQuery, details: _ExecutionDetails
    ) -> list[JoinTuple]:
        """Algorithm 4 on a multi-server topology: instead of strictly
        alternating sides, each round fetches the next batch of *every*
        non-exhausted side as one scatter/gather round — when the two
        cursors sit on regions of different servers, the fetches overlap
        and the round costs the slower of the two, not the sum.  Tuples
        still feed the HRJN operator in side order (LEFT then RIGHT), so
        results are identical; the round may overfetch one batch of the
        other side compared to serial alternation (the classic fan-out
        bandwidth-for-latency trade, same as §4.2.3's batching knob).
        """
        from repro.cluster.executor import ScatterTask, scatter_gather

        ctx = self.platform.ctx
        topology = ctx.topology
        operator = HRJNOperator(query.function, query.k)
        cursors = {
            LEFT: _SideCursor(
                self.platform, query.left.signature,
                self._batch_rows_for(query.left.signature),
            ),
            RIGHT: _SideCursor(
                self.platform, query.right.signature,
                self._batch_rows_for(query.right.signature),
            ),
        }

        batches = 0
        rounds = 0
        done = False
        while not done:
            exhausted = (cursors[LEFT].exhausted, cursors[RIGHT].exhausted)
            if operator.terminated(exhausted) or all(exhausted):
                break
            active = [side for side in (LEFT, RIGHT) if not cursors[side].exhausted]
            tasks = [
                ScatterTask(
                    cursors[side].server_hint(topology),
                    cursors[side].next_batch,
                )
                for side in active
            ]
            fetched = scatter_gather(ctx, tasks, label="isl")
            rounds += 1
            batches += len(active)
            # feed the operator in fixed side order; a side only counts as
            # exhausted once every row of its final batch is consumed
            remaining = {side: len(batch) for side, batch in zip(active, fetched)}
            for side, batch in zip(active, fetched):
                for row in batch:
                    operator.add(side, row)
                    remaining[side] -= 1
                    exhausted = (
                        cursors[LEFT].exhausted and remaining.get(LEFT, 0) == 0,
                        cursors[RIGHT].exhausted and remaining.get(RIGHT, 0) == 0,
                    )
                    if operator.terminated(exhausted):
                        done = True
                        break
                if done:
                    break

        seen = operator.tuples_seen()
        details.set("batches", batches)
        details.set("scatter_rounds", rounds)
        details.set("tuples_seen_left", seen[LEFT])
        details.set("tuples_seen_right", seen[RIGHT])
        return operator.results
