"""Job specifications: inputs, outputs, and the task-facing contexts.

A :class:`Job` wires a map function (and optionally combiner and reducer)
to an input source and an output sink.  Map functions receive a
:class:`TaskContext` for emitting pairs and bumping counters, exactly like
Hadoop's ``Mapper.Context``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.registry import FnRef
from repro.common.serialization import sizeof
from repro.errors import JobConfigurationError
from repro.sketches.hashing import hash_to_range

#: task functions are plain callables (closures welcome — serial/thread
#: execution only) or FnRefs to registered functions, which additionally
#: makes the phase eligible for the process-pool backend
MapFn = "Callable[[Any, Any, TaskContext], None] | FnRef"
ReduceFn = "Callable[[Any, list, TaskContext], None] | FnRef"
PartitionFn = Callable[[Any, int], int]


class TaskContext:
    """Emission buffer + counters handed to map/combine/reduce functions.

    ``state`` is task-local scratch space that survives across records of
    one split — how the IJLMR mappers keep their in-memory top-k list
    (§4.1.2: "mappers store in-memory only the top-k ranking result tuples,
    and emit their final top-k list when their input data is exhausted").
    """

    def __init__(self) -> None:
        self.emitted: list[tuple[Any, Any]] = []
        self.emitted_bytes = 0
        self.counters: dict[str, float] = {}
        self.state: dict[str, Any] = {}

    def emit(self, key: Any, value: Any) -> None:
        """Emit one intermediate or output pair."""
        self.emitted.append((key, value))
        self.emitted_bytes += sizeof(key) + sizeof(value)

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a job counter."""
        self.counters[counter] = self.counters.get(counter, 0.0) + amount


# -- input sources ------------------------------------------------------------


@dataclass(frozen=True)
class TableInput:
    """Scan a store table; one split per region, local to the region's node.

    Map functions receive ``(row_key, RowResult)`` pairs.  Reading charges
    one KV read unit per cell scanned (the dollar-cost driver for the
    full-scan approaches).
    """

    table_name: str
    families: "frozenset[str] | None" = None

    @staticmethod
    def of(table_name: str, families: "set[str] | None" = None) -> "TableInput":
        return TableInput(
            table_name, None if families is None else frozenset(families)
        )


@dataclass(frozen=True)
class HDFSInput:
    """Read an HDFS file; one split per block, local to the block's node.

    Map functions receive ``(record_index, record)`` pairs.
    """

    path: str


@dataclass(frozen=True)
class UnionTableInput:
    """Scan several store tables in one job (Hadoop multi-input joins).

    Map functions receive ``(row_key, (table_name, RowResult))`` pairs so
    they can tag records by source relation.
    """

    table_names: tuple[str, ...]
    families: "frozenset[str] | None" = None

    @staticmethod
    def of(*table_names: str, families: "set[str] | None" = None) -> "UnionTableInput":
        return UnionTableInput(
            tuple(table_names), None if families is None else frozenset(families)
        )


# -- output sinks ----------------------------------------------------------------


@dataclass(frozen=True)
class HDFSOutput:
    """Write emitted pairs to an HDFS file as ``(key, value)`` records."""

    path: str


@dataclass(frozen=True)
class TableOutput:
    """Write emitted pairs to a store table.

    Emitted values must be :class:`repro.store.client.Put` objects (the key
    is ignored); this is how map-only index-build jobs write "directly into
    the NoSQL store" (§4.1.1).

    ``skip_wal`` models HBase's ``Durability.SKIP_WAL``: temporary tables
    (like DRJN's pull output) avoid the write-ahead-log replication
    traffic at the price of durability.
    """

    table_name: str
    skip_wal: bool = False


@dataclass(frozen=True)
class CollectOutput:
    """Ship emitted pairs back to the job driver on the master node
    (used for final top-k lists)."""


# -- the job ---------------------------------------------------------------------


def default_partition(key: Any, num_reducers: int) -> int:
    """Hash partitioning on the key's string form (deterministic)."""
    return hash_to_range(str(key), num_reducers)


@dataclass
class Job:
    """A complete MapReduce job description."""

    name: str
    input_source: "TableInput | HDFSInput | UnionTableInput"
    map_fn: MapFn
    reduce_fn: "ReduceFn | None" = None
    combiner_fn: "ReduceFn | None" = None
    num_reducers: int = 1
    partition_fn: PartitionFn = default_partition
    output: "HDFSOutput | TableOutput | CollectOutput" = field(
        default_factory=CollectOutput
    )
    #: called once per map task after its records are exhausted
    map_finish_fn: "Callable[[TaskContext], None] | FnRef | None" = None

    def __post_init__(self) -> None:
        if self.num_reducers <= 0:
            raise JobConfigurationError(
                f"num_reducers must be positive: {self.num_reducers}"
            )
        if self.reduce_fn is None and self.combiner_fn is not None:
            raise JobConfigurationError(
                "a combiner without a reducer is not meaningful"
            )

    @property
    def map_only(self) -> bool:
        return self.reduce_fn is None

    @property
    def process_safe_map(self) -> bool:
        """Whether the whole map side (map + finish + combiner) is named
        by registered refs and can therefore ship to worker processes."""
        return (
            isinstance(self.map_fn, FnRef)
            and (self.map_finish_fn is None or isinstance(self.map_finish_fn, FnRef))
            and (self.combiner_fn is None or isinstance(self.combiner_fn, FnRef))
        )

    @property
    def process_safe_reduce(self) -> bool:
        """Whether the reduce side can ship to worker processes."""
        return isinstance(self.reduce_fn, FnRef)
